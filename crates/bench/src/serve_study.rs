//! Throughput study: the batched `ttlg-runtime` service vs a naive
//! plan-per-call loop on a mixed-permutation workload.
//!
//! The naive loop is what a caller without the runtime would write:
//! every request plans from scratch (full model sweep) and executes
//! serially. The runtime groups the same workload by plan key, plans
//! each distinct problem exactly once (single-flight, cached), and
//! fans execution out over its worker pool. On a workload with
//! repeated permutations the runtime amortizes away almost all
//! planning, which dominates host-side cost.

use std::sync::Arc;
use std::time::Instant;
use ttlg::{CacheStats, TransposeOptions, Transposer};
use ttlg_runtime::{RuntimeConfig, TransposeRequest, TransposeService};
use ttlg_tensor::rng::StdRng;
use ttlg_tensor::{DenseTensor, Permutation, Shape};

/// Format an `f64` as a JSON number (JSON has no NaN/Inf; non-finite
/// values collapse to 0).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Outcome of one study run.
#[derive(Debug, Clone)]
pub struct ServeStudy {
    /// Total requests replayed through each path.
    pub requests: usize,
    /// Distinct permutations (= distinct plan keys) in the workload.
    pub distinct_perms: usize,
    /// Naive plan-per-call wall-clock, ns.
    pub naive_ns: f64,
    /// Batched runtime wall-clock, ns.
    pub batched_ns: f64,
    /// naive_ns / batched_ns.
    pub speedup: f64,
    /// Plan-cache counters after the batched run.
    pub cache: CacheStats,
    /// The runtime's plain-text metrics report after the batched run.
    pub metrics_report: String,
    /// Per-schema prediction-accuracy table (signed residuals and the
    /// paper's Table II geometric-mean error) from the batched run.
    pub prediction_summary: String,
    /// Prediction samples recorded during the batched run.
    pub prediction_samples: u64,
}

impl ServeStudy {
    /// Requests per second for the naive loop.
    pub fn naive_rps(&self) -> f64 {
        self.requests as f64 / (self.naive_ns * 1e-9)
    }

    /// Requests per second for the batched runtime.
    pub fn batched_rps(&self) -> f64 {
        self.requests as f64 / (self.batched_ns * 1e-9)
    }

    /// Render a small comparison table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("== batched runtime vs plan-per-call ==\n");
        s.push_str(&format!(
            "workload: {} requests over {} distinct permutations\n",
            self.requests, self.distinct_perms
        ));
        s.push_str(&format!(
            "{:<22} {:>14} {:>14}\n",
            "path", "wall-clock ms", "requests/s"
        ));
        s.push_str(&format!(
            "{:<22} {:>14.2} {:>14.0}\n",
            "plan-per-call",
            self.naive_ns * 1e-6,
            self.naive_rps()
        ));
        s.push_str(&format!(
            "{:<22} {:>14.2} {:>14.0}\n",
            "batched runtime",
            self.batched_ns * 1e-6,
            self.batched_rps()
        ));
        s.push_str(&format!(
            "speedup: {:.2}x (cache: {} hits / {} misses)\n",
            self.speedup, self.cache.hits, self.cache.misses
        ));
        if self.prediction_samples > 0 {
            s.push_str(&format!(
                "prediction accuracy ({} samples):\n{}",
                self.prediction_samples, self.prediction_summary
            ));
        }
        s
    }

    /// Serialize as a machine-readable JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str("  \"study\": \"serve\",\n");
        s.push_str(&format!("  \"requests\": {},\n", self.requests));
        s.push_str(&format!("  \"distinct_perms\": {},\n", self.distinct_perms));
        s.push_str(&format!(
            "  \"naive_ms\": {},\n",
            json_f64(self.naive_ns * 1e-6)
        ));
        s.push_str(&format!(
            "  \"batched_ms\": {},\n",
            json_f64(self.batched_ns * 1e-6)
        ));
        s.push_str(&format!("  \"speedup\": {},\n", json_f64(self.speedup)));
        s.push_str(&format!(
            "  \"naive_rps\": {},\n",
            json_f64(self.naive_rps())
        ));
        s.push_str(&format!(
            "  \"batched_rps\": {},\n",
            json_f64(self.batched_rps())
        ));
        s.push_str(&format!("  \"cache_hits\": {},\n", self.cache.hits));
        s.push_str(&format!("  \"cache_misses\": {},\n", self.cache.misses));
        s.push_str(&format!(
            "  \"cache_evictions\": {},\n",
            self.cache.evictions
        ));
        s.push_str(&format!(
            "  \"prediction_samples\": {}\n",
            self.prediction_samples
        ));
        s.push_str("}\n");
        s
    }
}

/// Build the mixed-permutation workload: `rounds` passes over
/// `distinct` permutations of a rank-4 tensor, shuffled so repeats of
/// the same key are interleaved rather than adjacent.
pub fn workload(distinct: usize, rounds: usize) -> Vec<TransposeRequest<f64>> {
    assert!((1..=24).contains(&distinct), "rank-4 has 24 permutations");
    // Small enough that planning (what the runtime amortizes) is a
    // meaningful share of per-request cost; the simulator's execute
    // path scales with volume and would otherwise drown it out.
    let shape = Shape::new(&[6, 5, 4, 3]).unwrap();
    let input = Arc::new(DenseTensor::<f64>::iota(shape));

    // All 24 rank-4 permutations in lexicographic order, then take the
    // first `distinct`.
    let mut perms = Vec::new();
    for a in 0..4usize {
        for b in 0..4usize {
            for c in 0..4usize {
                for d in 0..4usize {
                    let p = [a, b, c, d];
                    let mut seen = [false; 4];
                    p.iter().for_each(|&i| seen[i] = true);
                    if seen.iter().all(|&s| s) {
                        perms.push(Permutation::new(&p).unwrap());
                    }
                }
            }
        }
    }
    perms.truncate(distinct);

    let mut reqs: Vec<TransposeRequest<f64>> = (0..rounds)
        .flat_map(|_| {
            perms
                .iter()
                .map(|p| TransposeRequest::new(Arc::clone(&input), p.clone()))
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(0x5E4E_57D1);
    rng.shuffle(&mut reqs);
    reqs
}

/// Run the study: replay the workload through both paths and compare.
pub fn run(distinct: usize, rounds: usize) -> ServeStudy {
    let reqs = workload(distinct, rounds);

    // Naive: plan from scratch and execute, one request at a time.
    let naive = Transposer::new_k40c();
    let t0 = Instant::now();
    for req in &reqs {
        let plan = naive
            .plan::<f64>(req.input.shape(), &req.perm, &TransposeOptions::default())
            .expect("naive plan");
        let _ = naive.execute(&plan, &req.input).expect("naive execute");
    }
    let naive_ns = t0.elapsed().as_nanos() as f64;

    // Batched: one service, one submit_batch call.
    let service =
        TransposeService::<f64>::with_config(Transposer::new_k40c(), RuntimeConfig::default());
    let t0 = Instant::now();
    let responses = service.submit_batch(&reqs);
    let batched_ns = t0.elapsed().as_nanos() as f64;
    assert!(
        responses.iter().all(|r| r.is_ok()),
        "batched run had failures"
    );

    let cache = service.cache_stats();
    ServeStudy {
        requests: reqs.len(),
        distinct_perms: distinct,
        naive_ns,
        batched_ns,
        speedup: naive_ns / batched_ns,
        cache,
        metrics_report: service.metrics_report(),
        prediction_summary: service.metrics().prediction().render(),
        prediction_samples: service.metrics().prediction().total_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttlg_tensor::reference::transpose_reference;

    #[test]
    fn batched_runtime_beats_plan_per_call() {
        // The acceptance workload: >= 16 distinct permutations,
        // repeated. The cached+parallel path must not lose to the
        // serial plan-per-call loop. Wall-clock under a loaded test
        // harness is noisy, so allow one retry before declaring a loss.
        let mut study = run(16, 4);
        if study.speedup < 1.0 {
            study = run(16, 4);
        }
        assert_eq!(study.requests, 64);
        assert!(
            study.speedup >= 1.0,
            "batched runtime slower than plan-per-call: {:.3}x",
            study.speedup
        );
        // One plan per distinct problem; repeats inside the batch share
        // the planned Arc directly, without re-touching the cache.
        assert_eq!(study.cache.misses, 16);
        assert!(study.metrics_report.contains("requests"));
        // Duplicates inside the batch coalesce onto one execution per
        // unique problem, so only the 16 real executions feed the
        // prediction tracker.
        assert_eq!(study.prediction_samples, 16);
        let rendered = study.render();
        assert!(rendered.contains("speedup"));
        assert!(rendered.contains("prediction accuracy (16 samples)"));
        assert!(rendered.contains("geo-mean error"));
        let json = study.to_json();
        assert!(json.contains("\"speedup\""));
        assert!(json.contains("\"prediction_samples\": 16"));
    }

    #[test]
    fn second_batch_is_all_cache_hits() {
        let reqs = workload(8, 1);
        let service = TransposeService::<f64>::new_k40c();
        assert!(service.submit_batch(&reqs).iter().all(|r| r.is_ok()));
        assert_eq!(service.cache_stats().misses, 8);
        assert!(service.submit_batch(&reqs).iter().all(|r| r.is_ok()));
        let stats = service.cache_stats();
        assert_eq!(stats.misses, 8, "replayed batch must not re-plan");
        assert_eq!(stats.hits, 8);
    }

    #[test]
    fn workload_outputs_match_reference() {
        let reqs = workload(6, 1);
        let service = TransposeService::<f64>::new_k40c();
        for (req, resp) in reqs.iter().zip(service.submit_batch(&reqs)) {
            let got = resp.expect("serve ok");
            let expect = transpose_reference(&req.input, &req.perm).unwrap();
            assert_eq!(got.output.data(), expect.data());
        }
    }
}
