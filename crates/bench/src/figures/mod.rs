//! One module per table/figure of the paper's evaluation.

pub mod ablations;
pub mod extensions;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig5;
pub mod fig_perms;
pub mod table1;
pub mod table2;
pub mod table3;
