//! Table I: the closed-form transaction analysis of the four kernels,
//! cross-checked against counts *measured* by the simulator.

use crate::report::Table;
use ttlg::kernels::{
    FviMatchLargeKernel, FviMatchSmallKernel, OaChoice, OdChoice, OrthogonalArbitraryKernel,
    OrthogonalDistinctKernel,
};
use ttlg::{analysis, Problem};
use ttlg_gpu_sim::{BlockKernel, DeviceConfig, Executor};
use ttlg_tensor::{Permutation, Shape};

/// Run the analysis/measurement comparison on representative cases.
pub fn run(device: &DeviceConfig) -> Table {
    let ex = Executor::new(device.clone());
    let mut t = Table::new(
        "Table I: transaction analysis (formula vs measured, f64)",
        &["kernel", "case", "quantity", "formula", "measured"],
    );
    let mut push = |kernel: &str, case: &str, what: &str, formula: f64, measured: u64| {
        t.push_row(vec![
            kernel.into(),
            case.into(),
            what.into(),
            format!("{formula:.0}"),
            measured.to_string(),
        ]);
    };

    // FVI-Match-Small: [8,8,8,8] => [a,d,c,b], b = 4.
    {
        let p = Problem::new(
            &Shape::new(&[8, 8, 8, 8]).unwrap(),
            &Permutation::new(&[0, 3, 2, 1]).unwrap(),
        )
        .unwrap();
        let c1 = analysis::c1_fvi_match_small::<f64>(&p, 4);
        let k = FviMatchSmallKernel::<f64>::with_b(&p, 4);
        let got = ex.analyze(&k).expect("launches");
        push(
            "FVI-Match-Small",
            "8^4 adcb",
            "DRAM load (C1)",
            c1,
            got.stats.dram_load_tx,
        );
        push(
            "FVI-Match-Small",
            "8^4 adcb",
            "DRAM store (C1)",
            c1,
            got.stats.dram_store_tx,
        );
    }

    // FVI-Match-Large: [64,5,7] => [a,c,b].
    {
        let p = Problem::new(
            &Shape::new(&[64, 5, 7]).unwrap(),
            &Permutation::new(&[0, 2, 1]).unwrap(),
        )
        .unwrap();
        let c2 = analysis::c2_fvi_match_large::<f64>(&p);
        let k = FviMatchLargeKernel::<f64>::new(&p);
        let got = ex.analyze(&k).expect("launches");
        push(
            "FVI-Match-Large",
            "64x5x7 acb",
            "DRAM load (C2)",
            c2,
            got.stats.dram_load_tx,
        );
        push(
            "FVI-Match-Large",
            "64x5x7 acb",
            "DRAM store (C2)",
            c2,
            got.stats.dram_store_tx,
        );
        push(
            "FVI-Match-Large",
            "64x5x7 acb",
            "smem accesses",
            0.0,
            got.stats.smem_total_acc(),
        );
    }

    // Orthogonal-Distinct: [16,2,32,32] => reversal.
    {
        let p = Problem::new(
            &Shape::new(&[16, 2, 32, 32]).unwrap(),
            &Permutation::new(&[3, 2, 1, 0]).unwrap(),
        )
        .unwrap();
        let c = OdChoice::default_for(&p).unwrap();
        let a = analysis::analyze_orthogonal_distinct::<f64>(&p, &c);
        let k = OrthogonalDistinctKernel::<f64>::new(&p, c);
        let got = ex.analyze(&k).expect("launches");
        push(
            "Orth-Distinct",
            "16x2x32x32 rev",
            "DRAM load (C3)",
            a.input.dram,
            got.stats.dram_load_tx,
        );
        push(
            "Orth-Distinct",
            "16x2x32x32 rev",
            "DRAM store (C3')",
            a.output.dram,
            got.stats.dram_store_tx,
        );
    }

    // Orthogonal-Arbitrary: [8,2,8,8] => [c,b,d,a] with full combining.
    {
        let p = Problem::new(
            &Shape::new(&[8, 2, 8, 8]).unwrap(),
            &Permutation::new(&[2, 1, 3, 0]).unwrap(),
        )
        .unwrap();
        let c = OaChoice {
            in_dims: 3,
            block_a: 8,
            out_dims: 3,
            block_b: 8,
        };
        let a = analysis::analyze_orthogonal_arbitrary::<f64>(&p, &c);
        let k = OrthogonalArbitraryKernel::<f64>::new(&p, c, device.smem_per_sm);
        let got = ex.analyze(&k).expect("launches");
        push(
            "Orth-Arbitrary",
            "8x2x8x8 cbda",
            "DRAM load (C3)",
            a.input.dram,
            got.stats.dram_load_tx,
        );
        push(
            "Orth-Arbitrary",
            "8x2x8x8 cbda",
            "DRAM store (C3')",
            a.output.dram,
            got.stats.dram_store_tx,
        );
        let _ = k.launch();
    }

    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formulas_match_measurements() {
        let t = run(&DeviceConfig::k40c());
        assert!(t.rows.len() >= 8);
        for row in &t.rows {
            if row[2].contains("DRAM") {
                assert_eq!(row[3], row[4], "mismatch in {row:?}");
            }
        }
        // FVI-Match-Large uses no shared memory at all (Table I row 2).
        let fml_smem = t
            .rows
            .iter()
            .find(|r| r[0] == "FVI-Match-Large" && r[2] == "smem accesses")
            .unwrap();
        assert_eq!(fml_smem[4], "0");
    }
}
