//! Ablation studies for the design choices DESIGN.md calls out:
//! shared-tile padding, offset-array precomputation, thread coarsening,
//! model-driven slice choice, and index fusion. Each returns a table of
//! simulated kernel times with the feature on vs off.

use crate::report::{bw, us, Table};
use ttlg::kernels::{OdChoice, OrthogonalDistinctKernel};
use ttlg::{Problem, Schema, TransposeOptions, Transposer};
use ttlg_gpu_sim::{timing, DeviceConfig, Executor, TimingModel};
use ttlg_tensor::{Permutation, Shape};

/// Padding ablation: the 32x33 tile vs the unpadded 32x32 tile, on
/// matrix-like transposes where the column read conflicts.
pub fn padding(device: &DeviceConfig) -> Table {
    let ex = Executor::new(device.clone());
    let tm = TimingModel::new(device.clone());
    let mut t = Table::new(
        "Ablation: shared-tile padding (Orthogonal-Distinct)",
        &["case", "padded us", "unpadded us", "slowdown", "replays"],
    );
    for (extents, perm) in [
        (vec![256usize, 256], vec![1usize, 0]),
        (vec![64, 64, 64], vec![2, 1, 0]),
        (vec![128, 16, 128], vec![2, 1, 0]),
    ] {
        let p = Problem::new(
            &Shape::new(&extents).unwrap(),
            &Permutation::new(&perm).unwrap(),
        )
        .unwrap();
        let c = OdChoice::default_for(&p).unwrap();
        let padded = OrthogonalDistinctKernel::<f64>::new(&p, c);
        let unpadded = OrthogonalDistinctKernel::<f64>::new_with_padding(&p, c, false);
        let rp = ex.analyze(&padded).unwrap();
        let ru = ex.analyze(&unpadded).unwrap();
        let tp = tm.time(&rp.stats, &rp.launch).time_ns;
        let tu = tm.time(&ru.stats, &ru.launch).time_ns;
        t.push_row(vec![
            format!("{extents:?}"),
            us(tp),
            us(tu),
            format!("{:.2}x", tu / tp),
            ru.stats.smem_conflict_replays.to_string(),
        ]);
    }
    t
}

/// One TTLG-option ablation row: run the planner with two option sets and
/// compare simulated kernel times.
fn option_ablation(
    title: &str,
    cases: &[(Vec<usize>, Vec<usize>)],
    device: &DeviceConfig,
    on: TransposeOptions,
    off: TransposeOptions,
    on_label: &str,
    off_label: &str,
) -> Table {
    let t = Transposer::new(device.clone());
    let mut table = Table::new(
        title,
        &[
            "case",
            &format!("{on_label} GB/s"),
            &format!("{off_label} GB/s"),
            "gain",
        ],
    );
    for (extents, perm) in cases {
        let shape = Shape::new(extents).unwrap();
        let perm = Permutation::new(perm).unwrap();
        let vol = shape.volume();
        let time = |opts: &TransposeOptions| {
            let plan = t.plan::<f64>(&shape, &perm, opts).expect("plannable");
            t.time_plan(&plan).expect("timeable").kernel_time_ns
        };
        let t_on = time(&on);
        let t_off = time(&off);
        table.push_row(vec![
            format!("{extents:?} {perm}"),
            bw(timing::bandwidth_gbps(vol, 8, t_on)),
            bw(timing::bandwidth_gbps(vol, 8, t_off)),
            format!("{:.2}x", t_off / t_on),
        ]);
    }
    table
}

/// Index fusion on vs off. The cases are chosen so fusion changes the
/// *schema*: a fused FVI crossing the warp size turns a small-FVI
/// shared-memory kernel into a direct copy, and a fully fusable
/// permutation becomes a plain memcpy.
pub fn fusion(device: &DeviceConfig) -> Table {
    option_ablation(
        "Ablation: index fusion",
        &[
            // dims 0,1 fuse -> matching FVI of 32: FMS becomes FVI-Match-Large
            (vec![8, 4, 64, 64], vec![0, 1, 3, 2]),
            // dims (0,1) and (3,4) fuse -> rank 3; unfused FVI is only 16
            (vec![16, 16, 16, 16, 16], vec![0, 1, 3, 4, 2]),
            // fully fusable: identity in disguise -> a single memcpy
            (vec![32, 32, 32, 32], vec![0, 1, 2, 3]),
        ],
        device,
        TransposeOptions::default(),
        TransposeOptions {
            enable_fusion: false,
            ..Default::default()
        },
        "fused",
        "unfused",
    )
}

/// Model-driven slice-size sweep (Alg. 3) vs the flow-chart default.
pub fn slice_choice(device: &DeviceConfig) -> Table {
    option_ablation(
        "Ablation: model-driven slice choice (Alg. 3) vs default slice",
        &[
            (vec![27, 27, 27, 27, 27], vec![4, 1, 2, 0, 3]),
            (vec![15, 15, 15, 15, 15, 15], vec![5, 4, 3, 2, 1, 0]),
            (vec![17, 17, 17, 17, 17, 17], vec![3, 1, 4, 0, 2, 5]),
        ],
        device,
        TransposeOptions::default(),
        TransposeOptions {
            model_sweep: false,
            ..Default::default()
        },
        "swept",
        "default",
    )
}

/// The taxonomy itself: planner pick vs forcing the general-purpose
/// Orthogonal-Arbitrary kernel everywhere vs the naive kernel.
pub fn taxonomy(device: &DeviceConfig) -> Table {
    let t = Transposer::new(device.clone());
    let mut table = Table::new(
        "Ablation: taxonomy dispatch vs one-kernel-fits-all",
        &["case", "planner GB/s", "OA-only GB/s", "naive GB/s"],
    );
    for (extents, perm) in [
        (vec![64usize, 16, 16, 4], vec![0usize, 3, 2, 1]),
        (vec![8, 16, 16, 16], vec![0, 3, 2, 1]),
        (vec![16, 2, 32, 32], vec![3, 2, 1, 0]),
    ] {
        let shape = Shape::new(&extents).unwrap();
        let perm = Permutation::new(&perm).unwrap();
        let vol = shape.volume();
        let run = |schema: Option<Schema>| {
            let opts = TransposeOptions {
                forced_schema: schema,
                ..Default::default()
            };
            t.plan::<f64>(&shape, &perm, &opts)
                .ok()
                .and_then(|p| t.time_plan(&p).ok())
                .map(|r| timing::bandwidth_gbps(vol, 8, r.kernel_time_ns))
        };
        let auto = run(None).expect("auto plan");
        let oa = run(Some(Schema::OrthogonalArbitrary));
        let naive = run(Some(Schema::Naive)).expect("naive plan");
        table.push_row(vec![
            format!("{extents:?} {perm}"),
            bw(auto),
            oa.map(bw).unwrap_or_else(|| "n/a".into()),
            bw(naive),
        ]);
    }
    table
}

/// Model-chosen plan vs measured-best plan (TTLG's own measure mode):
/// quantifies how much performance the regression/analytic model leaves
/// on the table — the paper's central model-quality question.
pub fn model_vs_measured(device: &DeviceConfig) -> Table {
    let t = Transposer::new(device.clone());
    let mut table = Table::new(
        "Ablation: model-chosen plan vs measured-best plan",
        &["case", "model GB/s", "measured-best GB/s", "model/best"],
    );
    for (extents, perm) in [
        (
            vec![16usize, 16, 16, 16, 16, 16],
            vec![4usize, 1, 2, 5, 3, 0],
        ),
        (vec![27, 27, 27, 27, 27], vec![4, 1, 2, 0, 3]),
        (vec![15, 15, 15, 15, 15, 15], vec![3, 1, 4, 0, 2, 5]),
        (vec![64, 64, 64], vec![2, 1, 0]),
    ] {
        let shape = Shape::new(&extents).unwrap();
        let perm = Permutation::new(&perm).unwrap();
        let vol = shape.volume();
        let opts = TransposeOptions::default();
        let model_plan = t.plan::<f64>(&shape, &perm, &opts).expect("plannable");
        let model_ns = t.time_plan(&model_plan).expect("timeable").kernel_time_ns;
        let measured_plan = t
            .plan_measured::<f64>(&shape, &perm, &opts)
            .expect("measurable");
        let best_ns = t
            .time_plan(&measured_plan)
            .expect("timeable")
            .kernel_time_ns;
        table.push_row(vec![
            format!("{extents:?} {perm}"),
            bw(timing::bandwidth_gbps(vol, 8, model_ns)),
            bw(timing::bandwidth_gbps(vol, 8, best_ns)),
            format!("{:.3}", best_ns / model_ns),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padding_ablation_shows_slowdown() {
        let t = padding(&DeviceConfig::k40c());
        assert_eq!(t.rows.len(), 3);
        for row in &t.rows {
            let slowdown: f64 = row[3].trim_end_matches('x').parse().unwrap();
            assert!(slowdown > 1.1, "unpadded must be slower: {row:?}");
            let replays: u64 = row[4].parse().unwrap();
            assert!(replays > 0);
        }
    }

    #[test]
    fn fusion_ablation_non_negative() {
        let t = fusion(&DeviceConfig::k40c());
        for row in &t.rows {
            let gain: f64 = row[3].trim_end_matches('x').parse().unwrap();
            assert!(gain >= 0.95, "fusion should rarely hurt: {row:?}");
        }
    }

    #[test]
    fn slice_sweep_never_worse_than_default() {
        let t = slice_choice(&DeviceConfig::k40c());
        for row in &t.rows {
            let gain: f64 = row[3].trim_end_matches('x').parse().unwrap();
            assert!(gain >= 0.99, "sweep must not lose to the default: {row:?}");
        }
    }

    #[test]
    fn model_choice_is_near_measured_best() {
        let t = model_vs_measured(&DeviceConfig::k40c());
        for row in &t.rows {
            let ratio: f64 = row[3].parse().unwrap();
            // The model's pick must stay within 10% of the measured best.
            assert!(ratio > 0.90, "{row:?}");
            // ...and never "beat" it by more than numerical noise.
            assert!(ratio <= 1.0 + 1e-9, "{row:?}");
        }
    }

    #[test]
    fn taxonomy_beats_naive_everywhere() {
        let t = taxonomy(&DeviceConfig::k40c());
        for row in &t.rows {
            let auto: f64 = row[1].parse().unwrap();
            let naive: f64 = row[3].parse().unwrap();
            assert!(auto > naive, "{row:?}");
        }
    }
}
