//! Figs. 6-11: all 720 permutations of a 6D tensor (extents all 16, 15 or
//! 17), repeated-use and single-use bandwidth for TTLG, cuTT-heuristic,
//! cuTT-measure and (repeated-use only) TTC, grouped by scaled rank (the
//! staircase line in the paper's charts).

use crate::report::{bw, Table};
use crate::runner::{Harness, SystemSet};
use ttlg_tensor::generator::all_permutations_suite;

/// Run one permutation suite. `stride` subsamples the 720 cases (1 =
/// full fidelity; larger for quick runs). Returns
/// `(repeated_use, single_use)` tables.
pub fn run(harness: &Harness, extent: usize, stride: usize) -> (Table, Table) {
    let suite = all_permutations_suite(6, extent);
    let fig_rep = match extent {
        16 => "Fig. 6",
        15 => "Fig. 8",
        17 => "Fig. 10",
        _ => "Fig. 6-like",
    };
    let fig_single = match extent {
        16 => "Fig. 7",
        15 => "Fig. 9",
        17 => "Fig. 11",
        _ => "Fig. 7-like",
    };
    let mut rep = Table::new(
        format!("{fig_rep}: 6D all-{extent}, repeated use (GB/s)"),
        &[
            "case",
            "perm",
            "rank",
            "TTLG",
            "cuTT-heur",
            "cuTT-meas",
            "TTC",
        ],
    );
    let mut single = Table::new(
        format!("{fig_single}: 6D all-{extent}, single use (GB/s)"),
        &["case", "perm", "rank", "TTLG", "cuTT-heur", "cuTT-meas"],
    );
    for (i, case) in suite.iter().enumerate().step_by(stride.max(1)) {
        let r = harness.run_case(
            case,
            SystemSet {
                ttc: true,
                naive: false,
            },
        );
        let vol = r.volume;
        rep.push_row(vec![
            i.to_string(),
            case.perm.to_string(),
            r.scaled_rank.to_string(),
            bw(r.ttlg.repeated_bw(vol, 8)),
            bw(r.cutt_heuristic.repeated_bw(vol, 8)),
            bw(r.cutt_measure.repeated_bw(vol, 8)),
            bw(r.ttc.repeated_bw(vol, 8)),
        ]);
        single.push_row(vec![
            i.to_string(),
            case.perm.to_string(),
            r.scaled_rank.to_string(),
            bw(r.ttlg.single_bw(vol, 8)),
            bw(r.cutt_heuristic.single_bw(vol, 8)),
            bw(r.cutt_measure.single_bw(vol, 8)),
        ]);
    }
    (rep, single)
}

/// Aggregate statistics of a permutation-suite run (used by tests and by
/// the EXPERIMENTS.md summary): mean bandwidth per system and the
/// win-rate of TTLG over cuTT-measure.
#[derive(Debug, Clone, Copy)]
pub struct SuiteSummary {
    /// Mean repeated-use bandwidth of TTLG.
    pub mean_ttlg: f64,
    /// Mean repeated-use bandwidth of cuTT-heuristic.
    pub mean_cutt_h: f64,
    /// Mean repeated-use bandwidth of cuTT-measure.
    pub mean_cutt_m: f64,
    /// Mean repeated-use bandwidth of TTC.
    pub mean_ttc: f64,
    /// Fraction of cases where TTLG >= cuTT-measure.
    pub ttlg_win_rate: f64,
    /// Cases evaluated.
    pub cases: usize,
}

/// Run the suite and summarize (repeated use).
pub fn summarize(harness: &Harness, extent: usize, stride: usize) -> SuiteSummary {
    let suite = all_permutations_suite(6, extent);
    let mut s = SuiteSummary {
        mean_ttlg: 0.0,
        mean_cutt_h: 0.0,
        mean_cutt_m: 0.0,
        mean_ttc: 0.0,
        ttlg_win_rate: 0.0,
        cases: 0,
    };
    for case in suite.iter().step_by(stride.max(1)) {
        let r = harness.run_case(
            case,
            SystemSet {
                ttc: true,
                naive: false,
            },
        );
        let vol = r.volume;
        s.mean_ttlg += r.ttlg.repeated_bw(vol, 8);
        s.mean_cutt_h += r.cutt_heuristic.repeated_bw(vol, 8);
        s.mean_cutt_m += r.cutt_measure.repeated_bw(vol, 8);
        s.mean_ttc += r.ttc.repeated_bw(vol, 8);
        if r.ttlg.kernel_ns <= r.cutt_measure.kernel_ns * 1.001 {
            s.ttlg_win_rate += 1.0;
        }
        s.cases += 1;
    }
    let n = s.cases.max(1) as f64;
    s.mean_ttlg /= n;
    s.mean_cutt_h /= n;
    s.mean_cutt_m /= n;
    s.mean_ttc /= n;
    s.ttlg_win_rate /= n;
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_suite_has_expected_shape() {
        let h = Harness::k40c();
        // stride 60 -> 12 of the 720 cases, cheap enough for a unit test
        let (rep, single) = run(&h, 16, 60);
        assert_eq!(rep.rows.len(), 12);
        assert_eq!(single.rows.len(), 12);
        // staircase: rank column non-decreasing
        let ranks: Vec<usize> = rep.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        assert!(ranks.windows(2).all(|w| w[0] <= w[1]));
        // single-use bandwidth never exceeds repeated-use for TTLG
        for (r, s) in rep.rows.iter().zip(single.rows.iter()) {
            let rb: f64 = r[3].parse().unwrap();
            let sb: f64 = s[3].parse().unwrap();
            assert!(sb <= rb + 1e-9, "single {sb} > repeated {rb}");
        }
    }

    #[test]
    fn summary_orders_systems_like_the_paper() {
        let h = Harness::k40c();
        let s = summarize(&h, 16, 48); // 15 cases
                                       // Paper shape: TTLG >= cuTT-measure >= cuTT-heuristic > TTC.
        assert!(s.mean_ttlg >= s.mean_cutt_m * 0.95, "{s:?}");
        assert!(s.mean_cutt_m >= s.mean_cutt_h * 0.999, "{s:?}");
        assert!(s.mean_cutt_h > s.mean_ttc * 0.9, "{s:?}");
        assert!(s.ttlg_win_rate > 0.5, "{s:?}");
    }
}
