//! Extension experiments beyond the paper's evaluation:
//!
//! * **Device generations** — the same workloads on Kepler (the paper's
//!   K40c), Maxwell and Pascal models; TTLG's planner re-tunes per device
//!   (related work targeted exactly these generations).
//! * **Element width** — `f32` vs `f64`: a 128-byte transaction carries
//!   32 floats but only 16 doubles (Sec. IV), so float transpositions
//!   sustain a higher element rate at the same byte bandwidth.

use crate::report::{bw, Table};
use ttlg::{TransposeOptions, Transposer};
use ttlg_gpu_sim::{timing, DeviceConfig};
use ttlg_tensor::{Permutation, Shape};

/// Cases used by both extension studies.
fn cases() -> Vec<(Vec<usize>, Vec<usize>)> {
    vec![
        (vec![16, 16, 16, 16, 16, 16], vec![4, 1, 2, 5, 3, 0]),
        (vec![16, 16, 16, 16, 16, 16], vec![0, 2, 5, 1, 4, 3]),
        (vec![64, 64, 64], vec![2, 1, 0]),
        (vec![27, 27, 27, 27, 27], vec![4, 1, 2, 0, 3]),
    ]
}

/// TTLG bandwidth across device generations.
pub fn device_generations() -> Table {
    let devices = [
        DeviceConfig::k40c(),
        DeviceConfig::titan_x_maxwell(),
        DeviceConfig::p100_pascal(),
    ];
    let mut t = Table::new(
        "Extension: TTLG across device generations (repeated use, GB/s)",
        &[
            "case",
            "K40c (Kepler)",
            "Titan X (Maxwell)",
            "P100 (Pascal)",
        ],
    );
    for (extents, perm) in cases() {
        let shape = Shape::new(&extents).unwrap();
        let perm = Permutation::new(&perm).unwrap();
        let mut row = vec![format!("{extents:?} {perm}")];
        for device in &devices {
            let tr = Transposer::new(device.clone());
            let plan = tr
                .plan::<f64>(&shape, &perm, &TransposeOptions::default())
                .expect("plannable");
            let r = tr.time_plan(&plan).expect("timeable");
            row.push(bw(r.bandwidth_gbps));
        }
        t.push_row(row);
    }
    t
}

/// Element-width study: f32 vs f64 on the K40c.
pub fn element_width() -> Table {
    let tr = Transposer::new_k40c();
    let mut t = Table::new(
        "Extension: element width (K40c; GB/s uses the element's own size)",
        &["case", "f64 GB/s", "f32 GB/s", "f32 Gelem/s / f64 Gelem/s"],
    );
    for (extents, perm) in cases() {
        let shape = Shape::new(&extents).unwrap();
        let perm = Permutation::new(&perm).unwrap();
        let vol = shape.volume();
        let opts = TransposeOptions::default();
        let p64 = tr.plan::<f64>(&shape, &perm, &opts).expect("plannable");
        let r64 = tr.time_plan(&p64).expect("timeable");
        let p32 = tr.plan::<f32>(&shape, &perm, &opts).expect("plannable");
        let r32 = tr.time_plan(&p32).expect("timeable");
        let bw64 = timing::bandwidth_gbps(vol, 8, r64.kernel_time_ns);
        let bw32 = timing::bandwidth_gbps(vol, 4, r32.kernel_time_ns);
        // element rate ratio = (vol/t32) / (vol/t64)
        let ratio = r64.kernel_time_ns / r32.kernel_time_ns;
        t.push_row(vec![
            format!("{extents:?} {perm}"),
            bw(bw64),
            bw(bw32),
            format!("{ratio:.2}x"),
        ]);
    }
    t
}

/// Strong-scaling study: the same problem on devices with 4..60 SMs (all
/// other K40c parameters fixed, bandwidth scaled with SM count the way
/// GPU product lines do). Shows where the planner's occupancy reasoning
/// kicks in: small tensors stop scaling once the grid cannot fill the
/// machine.
pub fn sm_scaling() -> Table {
    let mut t = Table::new(
        "Extension: strong scaling with SM count (GB/s)",
        &["SMs", "16^6 rank-6", "32^3 small"],
    );
    for sms in [4usize, 8, 15, 30, 60] {
        let mut device = DeviceConfig::k40c();
        device.num_sms = sms;
        // memory system scales with the SM count relative to the K40c
        device.dram_peak_gbps = 288.0 * sms as f64 / 15.0;
        device.warps_to_saturate = 420.0 * sms as f64 / 15.0;
        let tr = Transposer::new(device);
        let mut row = vec![sms.to_string()];
        for (extents, perm) in [
            (
                vec![16usize, 16, 16, 16, 16, 16],
                vec![4usize, 1, 2, 5, 3, 0],
            ),
            (vec![32, 32, 32], vec![2, 1, 0]),
        ] {
            let shape = Shape::new(&extents).unwrap();
            let perm = Permutation::new(&perm).unwrap();
            let plan = tr
                .plan::<f64>(&shape, &perm, &TransposeOptions::default())
                .expect("plannable");
            let r = tr.time_plan(&plan).expect("timeable");
            row.push(bw(r.bandwidth_gbps));
        }
        t.push_row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn newer_devices_are_faster() {
        let t = device_generations();
        assert_eq!(t.rows.len(), 4);
        for row in &t.rows {
            let kepler: f64 = row[1].parse().unwrap();
            let maxwell: f64 = row[2].parse().unwrap();
            let pascal: f64 = row[3].parse().unwrap();
            assert!(maxwell > kepler, "{row:?}");
            assert!(pascal > maxwell, "{row:?}");
        }
    }

    #[test]
    fn big_tensors_scale_with_sms_and_small_ones_saturate() {
        let t = sm_scaling();
        let big: Vec<f64> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        // the 16^6 tensor keeps scaling across the whole range
        assert!(big.windows(2).all(|w| w[1] > w[0]), "{big:?}");
        assert!(big[4] > 2.5 * big[1], "{big:?}");
        let small: Vec<f64> = t.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        // the 32^3 tensor gains much less at the top end (can't fill SMs)
        let small_gain = small[4] / small[2];
        let big_gain = big[4] / big[2];
        assert!(small_gain < big_gain, "small {small:?} big {big:?}");
    }

    #[test]
    fn floats_move_more_elements_per_second() {
        let t = element_width();
        for row in &t.rows {
            let ratio: f64 = row[3].trim_end_matches('x').parse().unwrap();
            // Half the bytes per element: expect a 1.2x-2.2x element-rate
            // advantage (launch overheads keep it below the ideal 2x).
            assert!((1.05..2.5).contains(&ratio), "{row:?}");
        }
    }
}
