//! Fig. 12: bandwidth as a function of the number of repeated calls
//! (plan cost amortisation), for the paper's two 16^6 permutations:
//! (a) `0 2 5 1 4 3` (matching FVI) and (b) `4 1 2 5 3 0` (non-matching).

use crate::report::{bw, Table};
use crate::runner::{Harness, SystemSet};
use ttlg_tensor::generator::repeated_use_cases;

/// Call counts plotted by the paper.
pub const CALL_COUNTS: [usize; 13] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096];

/// Run both sub-figures; returns `(fig12a, fig12b)`.
pub fn run(harness: &Harness, extent: usize) -> (Table, Table) {
    let [a, b] = repeated_use_cases(extent);
    let mut out = Vec::new();
    for (sub, case) in [("a", &a), ("b", &b)] {
        let r = harness.run_case(
            case,
            SystemSet {
                ttc: false,
                naive: false,
            },
        );
        let vol = r.volume;
        let mut t = Table::new(
            format!(
                "Fig. 12{sub}: {} ({}^6), bandwidth vs #calls (GB/s)",
                case.name, extent
            ),
            &["calls", "TTLG", "cuTT-heur", "cuTT-meas"],
        );
        for &n in &CALL_COUNTS {
            t.push_row(vec![
                n.to_string(),
                bw(r.ttlg.amortized_bw(vol, 8, n)),
                bw(r.cutt_heuristic.amortized_bw(vol, 8, n)),
                bw(r.cutt_measure.amortized_bw(vol, 8, n)),
            ]);
        }
        out.push(t);
    }
    let b_t = out.pop().expect("two tables");
    let a_t = out.pop().expect("two tables");
    (a_t, b_t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amortization_curves_rise_and_saturate() {
        let h = Harness::k40c();
        // extent 8 keeps the test fast; the amortisation *shape* is what
        // matters here.
        let (a, _b) = run(&h, 8);
        assert_eq!(a.rows.len(), CALL_COUNTS.len());
        let ttlg: Vec<f64> = a.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        // monotone non-decreasing in call count
        assert!(ttlg.windows(2).all(|w| w[1] >= w[0] - 1e-6), "{ttlg:?}");
        // cuTT-measure starts far below its plateau (expensive planning)
        let cm: Vec<f64> = a.rows.iter().map(|r| r[3].parse().unwrap()).collect();
        assert!(cm[0] < 0.7 * cm[cm.len() - 1], "{cm:?}");
    }
}
