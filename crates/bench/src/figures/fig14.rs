//! Fig. 14: the TTC benchmark suite — 57 tensors, ranks 2-6, ~200 MB
//! each, permutations that admit no index fusion. All four systems,
//! repeated use.
//!
//! The original benchmark list (Springer 2016) is not redistributable;
//! [`ttlg_tensor::generator::ttc_benchmark_suite`] synthesises a
//! structurally equivalent suite (see DESIGN.md).

use crate::report::{bw, Table};
use crate::runner::{Harness, SystemSet};
use ttlg_tensor::generator::ttc_benchmark_suite;

/// ~200 MB of doubles.
pub const PAPER_VOLUME: usize = 25 << 20;
/// The paper's case count.
pub const PAPER_COUNT: usize = 57;
/// Deterministic suite seed.
pub const SUITE_SEED: u64 = 0x77C2016;

/// Run the suite at a given volume (use [`PAPER_VOLUME`] for fidelity,
/// smaller for quick runs).
pub fn run(harness: &Harness, count: usize, volume: usize) -> Table {
    let mut t = Table::new(
        "Fig. 14: TTC benchmark suite (repeated use, GB/s)",
        &[
            "case",
            "rank",
            "volume",
            "TTLG",
            "cuTT-heur",
            "cuTT-meas",
            "TTC",
        ],
    );
    for case in ttc_benchmark_suite(count, volume, SUITE_SEED) {
        let r = harness.run_case(
            &case,
            SystemSet {
                ttc: true,
                naive: false,
            },
        );
        let vol = r.volume;
        t.push_row(vec![
            case.name.clone(),
            case.shape.rank().to_string(),
            vol.to_string(),
            bw(r.ttlg.repeated_bw(vol, 8)),
            bw(r.cutt_heuristic.repeated_bw(vol, 8)),
            bw(r.cutt_measure.repeated_bw(vol, 8)),
            bw(r.ttc.repeated_bw(vol, 8)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_shape_and_ordering() {
        let h = Harness::k40c();
        let t = run(&h, 10, 1 << 20);
        assert_eq!(t.rows.len(), 10);
        let mut ttlg_wins = 0;
        let mut ttc_best_count = 0;
        for row in &t.rows {
            let ttlg: f64 = row[3].parse().unwrap();
            let cm: f64 = row[5].parse().unwrap();
            let ttc: f64 = row[6].parse().unwrap();
            if ttlg >= cm * 0.999 {
                ttlg_wins += 1;
            }
            if ttc > ttlg && ttc > cm {
                ttc_best_count += 1;
            }
        }
        // "For most cases, TTLG outperforms cuTT-measure"; TTC stays below
        // the libraries.
        assert!(ttlg_wins >= 5, "TTLG won only {ttlg_wins}/10");
        assert!(ttc_best_count <= 2, "TTC unexpectedly won {ttc_best_count}");
    }
}
