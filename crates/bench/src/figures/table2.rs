//! Table II: train the two regression models offline and report
//! estimates, standard errors, t-values, p-values and the precision
//! metric, exactly in the paper's format.

use crate::report::Table;
use ttlg_gpu_sim::DeviceConfig;
use ttlg_perfmodel::train::{train_models, TrainConfig, TrainedModels};

/// Train with the given configuration and return the trained models plus
/// the rendered table.
pub fn run(device: &DeviceConfig, cfg: &TrainConfig) -> (TrainedModels, Table) {
    let models = train_models::<f64>(device, cfg).expect("training succeeds");
    let mut t = Table::new(
        "Table II: linear-regression fits (per-kernel models)",
        &["model", "feature", "estimate", "std.error", "t", "p"],
    );
    for m in [&models.od, &models.oa] {
        for c in &m.fit.stats {
            t.push_row(vec![
                m.schema.to_string(),
                c.name.clone(),
                format!("{:.4e}", c.estimate),
                format!("{:.4e}", c.std_error),
                format!("{:.2}", c.t_value),
                if c.p_value < 2e-16 {
                    "<2e-16".into()
                } else {
                    format!("{:.2e}", c.p_value)
                },
            ]);
        }
        t.push_row(vec![
            m.schema.to_string(),
            "precision(train/test)".into(),
            format!("{:.3}%", m.train_precision),
            format!("{:.3}%", m.test_precision),
            String::new(),
            String::new(),
        ]);
    }
    (models, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_both_models_and_precisions() {
        let device = DeviceConfig::k40c();
        let (models, t) = run(&device, &TrainConfig::quick());
        // 6 rows (intercept + 5 features) + precision for OD,
        // 8 rows + precision for OA.
        assert_eq!(t.rows.len(), 6 + 1 + 8 + 1);
        assert!(models.od.n_train > 0 && models.oa.n_train > 0);
        let rendered = t.render();
        assert!(rendered.contains("Cycles"));
        assert!(rendered.contains("precision"));
    }
}
