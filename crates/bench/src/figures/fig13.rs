//! Fig. 13: bandwidth vs dimension sizes for permutation `0 2 1 3` over
//! 4D tensors `s^4`, `s` from 15 to 128 — small volumes droop, large
//! volumes saturate, TTLG ahead of cuTT once the volume is reasonable.

use crate::report::{bw, Table};
use crate::runner::{Harness, SystemSet};
use ttlg_tensor::generator::volume_sweep;

/// The paper's size list.
pub const SIZES: [usize; 8] = [15, 16, 31, 32, 63, 64, 127, 128];

/// Run the sweep.
pub fn run(harness: &Harness, sizes: &[usize]) -> Table {
    let mut t = Table::new(
        "Fig. 13: perm 0 2 1 3, varying dimension sizes (repeated use, GB/s)",
        &["dims", "volume", "TTLG", "cuTT-heur", "cuTT-meas"],
    );
    for case in volume_sweep(sizes) {
        let r = harness.run_case(
            &case,
            SystemSet {
                ttc: false,
                naive: false,
            },
        );
        let vol = r.volume;
        t.push_row(vec![
            case.name.clone(),
            vol.to_string(),
            bw(r.ttlg.repeated_bw(vol, 8)),
            bw(r.cutt_heuristic.repeated_bw(vol, 8)),
            bw(r.cutt_measure.repeated_bw(vol, 8)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_grows_with_volume() {
        let h = Harness::k40c();
        let t = run(&h, &[15, 32, 64]);
        assert_eq!(t.rows.len(), 3);
        let ttlg: Vec<f64> = t.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        assert!(ttlg[0] < ttlg[1] && ttlg[1] < ttlg[2], "{ttlg:?}");
        // Small volume is far from the plateau (the paper's droop).
        assert!(ttlg[0] < 0.6 * ttlg[2], "{ttlg:?}");
    }
}
