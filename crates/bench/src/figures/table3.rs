//! Table III: the (simulated) machine configuration.

use crate::report::Table;
use ttlg_gpu_sim::DeviceConfig;

/// Render the device configuration.
pub fn run(device: &DeviceConfig) -> Table {
    let mut t = Table::new(
        "Table III: machine configuration (simulated)",
        &["key", "value"],
    );
    let mut kv = |k: &str, v: String| t.push_row(vec![k.into(), v]);
    kv("device", device.name.to_string());
    kv("SMs", device.num_sms.to_string());
    kv("warp size", device.warp_size.to_string());
    kv(
        "shared memory / SM",
        format!("{} KiB", device.smem_per_sm / 1024),
    );
    kv("max threads / SM", device.max_threads_per_sm.to_string());
    kv(
        "clock",
        format!("{} MHz", (device.clock_ghz * 1000.0).round()),
    );
    kv(
        "peak DRAM bandwidth",
        format!("{} GB/s", device.dram_peak_gbps),
    );
    kv(
        "sustained DRAM efficiency",
        format!("{:.2}", device.dram_efficiency),
    );
    kv(
        "kernel launch overhead",
        format!("{:.1} us", device.launch_overhead_ns / 1e3),
    );
    kv(
        "plan allocation overhead",
        format!("{:.1} us", device.plan_alloc_overhead_ns / 1e3),
    );
    kv("texture hit rate", format!("{:.3}", device.tex_hit_rate));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_k40c() {
        let t = run(&DeviceConfig::k40c());
        let s = t.render();
        assert!(s.contains("K40c"));
        assert!(s.contains("288 GB/s"));
        assert!(s.contains("745 MHz"));
    }
}
