//! Fig. 5: predicted vs actual execution time over the Orthogonal-Distinct
//! slice variants for dims `27 27 27 27 27`, permutation `4 1 2 0 3`,
//! highlighting the model's choice.

use crate::report::{us, Table};
use std::sync::Arc;
use ttlg::{features, slice, Problem, TimePredictor, Transposer};
use ttlg_gpu_sim::DeviceConfig;
use ttlg_tensor::{Permutation, Shape};

/// The paper's example problem.
pub fn paper_case() -> (Shape, Permutation) {
    (
        Shape::new(&[27, 27, 27, 27, 27]).unwrap(),
        Permutation::new(&[4, 1, 2, 0, 3]).unwrap(),
    )
}

/// Run the slice sweep: for every candidate slice, the actual (simulated)
/// time and the predicted time; the `chosen` column marks the predictor's
/// pick. `predictor` is typically the trained regression model.
pub fn run(
    device: &DeviceConfig,
    predictor: &Arc<dyn TimePredictor>,
    shape: &Shape,
    perm: &Permutation,
) -> Table {
    let t = Transposer::with_predictor(device.clone(), Arc::clone(predictor));
    let p = Problem::new(shape, perm).expect("valid problem");
    let choices = slice::od_candidates::<f64>(&p, device, slice::DEFAULT_OVERBOOKING);

    struct Row {
        slice_vol: usize,
        a: usize,
        b: usize,
        actual_ns: f64,
        predicted_ns: f64,
    }
    let mut rows = Vec::new();
    for c in choices {
        let cand = features::od_candidate::<f64>(&p, c);
        let predicted_ns = predictor.predict_ns(&cand);
        let m = t
            .measure_candidate::<f64>(&p, &cand)
            .expect("candidate measures");
        rows.push(Row {
            slice_vol: cand.input_slice * cand.output_slice,
            a: cand.input_slice,
            b: cand.output_slice,
            actual_ns: m.timing.time_ns,
            predicted_ns,
        });
    }
    rows.sort_by_key(|r| r.slice_vol);
    let best_pred = rows
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| a.predicted_ns.partial_cmp(&b.predicted_ns).expect("finite"))
        .map(|(i, _)| i);

    let mut table = Table::new(
        "Fig. 5: dims 27^5, perm 4 1 2 0 3 — predicted vs actual per slice variant (us)",
        &["slice_vol", "A", "B", "ATIME", "PTIME", "chosen"],
    );
    for (i, r) in rows.iter().enumerate() {
        table.push_row(vec![
            r.slice_vol.to_string(),
            r.a.to_string(),
            r.b.to_string(),
            us(r.actual_ns),
            us(r.predicted_ns),
            if Some(i) == best_pred {
                "*".into()
            } else {
                "".into()
            },
        ]);
    }
    table
}

/// Prediction-quality summary of the sweep: Spearman-style trend check —
/// the predicted-best variant's actual time relative to the true optimum
/// (1.0 = the model picked the fastest slice).
pub fn choice_quality(
    device: &DeviceConfig,
    predictor: &Arc<dyn TimePredictor>,
    shape: &Shape,
    perm: &Permutation,
) -> f64 {
    let t = Transposer::with_predictor(device.clone(), Arc::clone(predictor));
    let p = Problem::new(shape, perm).expect("valid problem");
    let choices = slice::od_candidates::<f64>(&p, device, slice::DEFAULT_OVERBOOKING);
    let mut best_actual = f64::INFINITY;
    let mut chosen_actual = f64::INFINITY;
    let mut best_pred = f64::INFINITY;
    for c in choices {
        let cand = features::od_candidate::<f64>(&p, c);
        let pred = predictor.predict_ns(&cand);
        let actual = t
            .measure_candidate::<f64>(&p, &cand)
            .expect("candidate measures")
            .timing
            .time_ns;
        best_actual = best_actual.min(actual);
        if pred < best_pred {
            best_pred = pred;
            chosen_actual = actual;
        }
    }
    best_actual / chosen_actual
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttlg::AnalyticPredictor;

    #[test]
    fn sweep_has_variants_and_marks_choice() {
        let device = DeviceConfig::k40c();
        let pred: Arc<dyn TimePredictor> = Arc::new(AnalyticPredictor::new(device.clone()));
        // smaller sibling of the paper case to keep the test quick
        let shape = Shape::new(&[9, 9, 9, 9, 9]).unwrap();
        let perm = Permutation::new(&[4, 1, 2, 0, 3]).unwrap();
        let t = run(&device, &pred, &shape, &perm);
        assert!(
            t.rows.len() >= 4,
            "want several slice variants, got {}",
            t.rows.len()
        );
        assert_eq!(t.rows.iter().filter(|r| r[5] == "*").count(), 1);
        // slice volumes ascend
        let vols: Vec<usize> = t.rows.iter().map(|r| r[0].parse().unwrap()).collect();
        assert!(vols.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn analytic_choice_is_near_optimal() {
        let device = DeviceConfig::k40c();
        let pred: Arc<dyn TimePredictor> = Arc::new(AnalyticPredictor::new(device.clone()));
        let shape = Shape::new(&[9, 9, 9, 9, 9]).unwrap();
        let perm = Permutation::new(&[4, 1, 2, 0, 3]).unwrap();
        let q = choice_quality(&device, &pred, &shape, &perm);
        assert!(q > 0.6, "model choice was {q} of optimal");
    }
}
