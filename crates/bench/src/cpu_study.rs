//! CPU-backend study: real wall-clock bandwidth of the tiled CPU
//! executor (`ttlg-cpu`) vs the naive single-threaded odometer loop
//! (`ttlg_baselines::naive::NaiveCpuTranspose`) across the paper's
//! shape taxonomy, plus the thread-scaling curve and the per-backend
//! predicted-vs-measured accuracy of the planner's models.
//!
//! Unlike every other study in this crate, nothing here runs on the
//! simulator clock: both sides move real bytes and are timed with
//! `Instant`. A final mixed segment replays the same problems through a
//! [`TransposeService`] once per backend, so the exported `/metrics`
//! carry `ttlg_backend_requests_total` for both lanes.

use crate::serve_study::json_f64;
use std::sync::Arc;
use std::time::Instant;
use ttlg::{Backend, TransposeOptions, Transposer};
use ttlg_baselines::naive::NaiveCpuTranspose;
use ttlg_runtime::{TransposeRequest, TransposeService};
use ttlg_tensor::{parallel, DenseTensor, Permutation, Shape};

/// One taxonomy case, both sides measured.
#[derive(Debug, Clone)]
pub struct CpuCase {
    /// Case label.
    pub name: String,
    /// Schema-taxonomy class this case exercises.
    pub class: String,
    /// Input extents (dimension 0 fastest).
    pub shape: Vec<usize>,
    /// The permutation applied.
    pub perm: Vec<usize>,
    /// Schema the planner actually classified the problem under.
    pub schema: String,
    /// Best-of-reps tiled wall-clock, ns.
    pub tiled_ns: f64,
    /// Best-of-reps naive wall-clock, ns.
    pub naive_ns: f64,
    /// naive_ns / tiled_ns.
    pub speedup: f64,
    /// Tiled effective bandwidth, GB/s (2 x volume x bytes / time).
    pub tiled_gbps: f64,
    /// Naive effective bandwidth, GB/s.
    pub naive_gbps: f64,
    /// The planner's predicted time for the chosen CPU candidate, ns.
    pub predicted_ns: f64,
}

/// One point of the thread-scaling curve.
#[derive(Debug, Clone, Copy)]
pub struct ScalingPoint {
    /// Worker threads used.
    pub threads: usize,
    /// Total tiled wall-clock across all cases at this thread count, ns.
    pub wall_ns: f64,
    /// Speedup over the single-thread run of the same sweep.
    pub speedup: f64,
}

/// Outcome of the CPU study.
#[derive(Debug, Clone)]
pub struct CpuStudy {
    /// `parallel::default_threads()` on the measuring host.
    pub threads: usize,
    /// Per-case measurements (including the ungated copy reference).
    pub cases: Vec<CpuCase>,
    /// Per-class geometric-mean speedup over naive, transposition
    /// classes only (the copy reference is excluded: memcpy vs memcpy).
    pub classes: Vec<(String, f64)>,
    /// Geometric-mean speedup across the transposition cases.
    pub geo_mean_speedup: f64,
    /// naive/tiled ratio on the copy reference case (~1.0 by design).
    pub copy_speedup: f64,
    /// Thread ladder (1/2/4/N, deduplicated).
    pub scaling: Vec<ScalingPoint>,
    /// CPU lane: geo-mean of max(pred/meas, meas/pred) per case.
    pub cpu_pred_geo_err: f64,
    /// GPU-sim lane on the same problems, predicted vs simulated.
    pub gpu_pred_geo_err: f64,
    /// `ttlg_backend_requests_total` per lane after the mixed segment.
    pub backend_requests_gpu: u64,
    /// CPU-lane request count after the mixed segment.
    pub backend_requests_cpu: u64,
    /// Whether the Prometheus export carried both backend families.
    pub metrics_expose_both: bool,
}

/// The study's taxonomy sweep: one or two shapes per schema class,
/// sized so the naive loop's line-reuse set (the input cache lines an
/// inner output pass keeps revisiting) overflows L1 — the regime the
/// tiled kernel exists for. The `copy` case is a bandwidth reference
/// (both sides degenerate to a straight copy, so no speedup is possible
/// or claimed); it is reported but excluded from the gated classes.
fn taxonomy() -> Vec<(&'static str, &'static str, Vec<usize>, Vec<usize>)> {
    vec![
        ("copy-r3", "copy", vec![256, 64, 32], vec![0, 1, 2]),
        (
            "fvi-large-r3",
            "fvi-large",
            vec![128, 64, 64],
            vec![0, 2, 1],
        ),
        (
            "fvi-small-r3",
            "fvi-small",
            vec![16, 128, 128],
            vec![0, 2, 1],
        ),
        (
            "od-square-r2",
            "orthogonal-distinct",
            vec![512, 512],
            vec![1, 0],
        ),
        (
            "od-rect-r2",
            "orthogonal-distinct",
            vec![64, 16384],
            vec![1, 0],
        ),
        (
            "oa-r4",
            "orthogonal-arbitrary",
            vec![16, 64, 8, 32],
            vec![2, 0, 3, 1],
        ),
    ]
}

fn geo_mean(xs: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0f64, 0usize);
    for x in xs {
        if x > 0.0 && x.is_finite() {
            sum += x.ln();
            n += 1;
        }
    }
    if n == 0 {
        1.0
    } else {
        (sum / n as f64).exp()
    }
}

/// Symmetric prediction-error factor (always >= 1).
fn err_factor(predicted: f64, measured: f64) -> f64 {
    let r = predicted.max(1.0) / measured.max(1.0);
    r.max(1.0 / r)
}

fn gbps(volume: usize, elem_bytes: usize, ns: f64) -> f64 {
    (2 * volume * elem_bytes) as f64 / ns.max(1.0)
}

impl CpuStudy {
    /// Render the comparison tables.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("== tiled CPU backend vs naive odometer (wall clock) ==\n");
        s.push_str(&format!("host threads: {}\n", self.threads));
        s.push_str(&format!(
            "{:<16} {:<20} {:<22} {:>10} {:>10} {:>9}\n",
            "case", "class", "schema", "tiled GB/s", "naive GB/s", "speedup"
        ));
        for c in &self.cases {
            s.push_str(&format!(
                "{:<16} {:<20} {:<22} {:>10.2} {:>10.2} {:>8.2}x\n",
                c.name, c.class, c.schema, c.tiled_gbps, c.naive_gbps, c.speedup
            ));
        }
        s.push_str(&format!(
            "geo-mean speedup: {:.2}x (per class:",
            self.geo_mean_speedup
        ));
        for (class, sp) in &self.classes {
            s.push_str(&format!(" {class} {sp:.2}x"));
        }
        s.push_str(")\n");
        s.push_str(&format!(
            "copy reference (memcpy vs memcpy, ungated): {:.2}x\n",
            self.copy_speedup
        ));
        s.push_str("thread scaling:");
        for p in &self.scaling {
            s.push_str(&format!(" {}t {:.2}x", p.threads, p.speedup));
        }
        s.push('\n');
        s.push_str(&format!(
            "prediction geo-mean error factor: cpu {:.2}x, gpu_sim {:.2}x\n",
            self.cpu_pred_geo_err, self.gpu_pred_geo_err
        ));
        s.push_str(&format!(
            "mixed serve segment: {} gpu_sim + {} cpu requests, both exported: {}\n",
            self.backend_requests_gpu, self.backend_requests_cpu, self.metrics_expose_both
        ));
        s
    }

    /// Serialize as a machine-readable JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str("  \"study\": \"cpu\",\n");
        s.push_str(&format!("  \"threads\": {},\n", self.threads));
        s.push_str(&format!(
            "  \"geo_mean_speedup\": {},\n",
            json_f64(self.geo_mean_speedup)
        ));
        s.push_str(&format!(
            "  \"copy_speedup\": {},\n",
            json_f64(self.copy_speedup)
        ));
        s.push_str("  \"classes\": [\n");
        for (i, (class, sp)) in self.classes.iter().enumerate() {
            let comma = if i + 1 < self.classes.len() { "," } else { "" };
            s.push_str(&format!(
                "    {{\"class\": \"{class}\", \"speedup\": {}}}{comma}\n",
                json_f64(*sp)
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"cases\": [\n");
        for (i, c) in self.cases.iter().enumerate() {
            let comma = if i + 1 < self.cases.len() { "," } else { "" };
            let shape: Vec<String> = c.shape.iter().map(|e| e.to_string()).collect();
            let perm: Vec<String> = c.perm.iter().map(|e| e.to_string()).collect();
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"class\": \"{}\", \"shape\": [{}], \
                 \"perm\": [{}], \"schema\": \"{}\", \"tiled_ms\": {}, \
                 \"naive_ms\": {}, \"speedup\": {}, \"tiled_gbps\": {}, \
                 \"naive_gbps\": {}, \"predicted_ns\": {}}}{comma}\n",
                c.name,
                c.class,
                shape.join(", "),
                perm.join(", "),
                c.schema,
                json_f64(c.tiled_ns * 1e-6),
                json_f64(c.naive_ns * 1e-6),
                json_f64(c.speedup),
                json_f64(c.tiled_gbps),
                json_f64(c.naive_gbps),
                json_f64(c.predicted_ns),
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"scaling\": [\n");
        for (i, p) in self.scaling.iter().enumerate() {
            let comma = if i + 1 < self.scaling.len() { "," } else { "" };
            s.push_str(&format!(
                "    {{\"threads\": {}, \"wall_ms\": {}, \"speedup\": {}}}{comma}\n",
                p.threads,
                json_f64(p.wall_ns * 1e-6),
                json_f64(p.speedup)
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!(
            "  \"cpu_pred_geo_err\": {},\n",
            json_f64(self.cpu_pred_geo_err)
        ));
        s.push_str(&format!(
            "  \"gpu_pred_geo_err\": {},\n",
            json_f64(self.gpu_pred_geo_err)
        ));
        s.push_str(&format!(
            "  \"backend_requests_gpu\": {},\n",
            self.backend_requests_gpu
        ));
        s.push_str(&format!(
            "  \"backend_requests_cpu\": {},\n",
            self.backend_requests_cpu
        ));
        s.push_str(&format!(
            "  \"metrics_expose_both\": {}\n",
            self.metrics_expose_both
        ));
        s.push_str("}\n");
        s
    }
}

/// Run the study. `seconds` scales the repetition count: `<= 1` takes
/// best-of-2 (unit tests), `<= 2` best-of-3 (CI smoke), larger budgets
/// best-of-5.
pub fn run(seconds: f64) -> CpuStudy {
    let reps = if seconds > 2.0 {
        5
    } else if seconds > 1.0 {
        3
    } else {
        2
    };
    let threads = parallel::default_threads();
    let t = Transposer::new_k40c();
    let naive = NaiveCpuTranspose::new();
    let cpu_opts = TransposeOptions::for_backend(Backend::Cpu);

    let mut cases = Vec::new();
    let mut cpu_errs = Vec::new();
    let mut gpu_errs = Vec::new();
    let mut plans = Vec::new();
    for (name, class, extents, perm_idx) in taxonomy() {
        let shape = Shape::new(&extents).expect("valid extents");
        let perm = Permutation::new(&perm_idx).expect("valid perm");
        let input: DenseTensor<f32> = DenseTensor::iota(shape.clone());

        // Tiled CPU lane: plan once, execute `reps` times, keep the best
        // wall clock (the report's kernel_time_ns IS wall clock here).
        // One untimed warmup per lane first: the initial execution pays
        // the allocator's first-touch page faults for the output buffer,
        // which would otherwise swamp the kernel on L2-resident cases.
        let plan = t
            .plan::<f32>(&shape, &perm, &cpu_opts)
            .expect("cpu plan builds");
        let mut tiled_ns = f64::INFINITY;
        let (mut tiled_out, _) = t.execute(&plan, &input).expect("cpu warmup");
        for _ in 0..reps {
            let (out, report) = t.execute(&plan, &input).expect("cpu execute");
            tiled_ns = tiled_ns.min(report.kernel_time_ns);
            tiled_out = out;
        }

        // Naive lane: the single-threaded scalar odometer.
        let mut naive_ns = f64::INFINITY;
        let (mut naive_out, _) = naive.execute(&input, &perm);
        for _ in 0..reps {
            let (out, report) = naive.execute(&input, &perm);
            naive_ns = naive_ns.min(report.kernel_time_ns);
            naive_out = out;
        }
        assert_eq!(
            tiled_out.data(),
            naive_out.data(),
            "{name}: tiled and naive outputs diverge"
        );

        cpu_errs.push(err_factor(plan.predicted_ns(), tiled_ns));

        // GPU-sim lane on the same problem: predicted vs simulated time
        // (the existing Table II accuracy story, kept per backend).
        let gplan = t
            .plan::<f32>(&shape, &perm, &TransposeOptions::default())
            .expect("gpu plan builds");
        let greport = t.time_plan(&gplan).expect("gpu timing");
        gpu_errs.push(err_factor(gplan.predicted_ns(), greport.kernel_time_ns));

        let vol = shape.volume();
        cases.push(CpuCase {
            name: name.to_string(),
            class: class.to_string(),
            shape: extents.clone(),
            perm: perm_idx.clone(),
            schema: plan.schema().to_string(),
            tiled_ns,
            naive_ns,
            speedup: naive_ns / tiled_ns.max(1.0),
            tiled_gbps: gbps(vol, 4, tiled_ns),
            naive_gbps: gbps(vol, 4, naive_ns),
            predicted_ns: plan.predicted_ns(),
        });
        plans.push((shape, perm, input));
    }

    // Per-class and overall geometric means over the transposition
    // classes; the copy reference rides along unaggregated.
    let mut classes: Vec<(String, f64)> = Vec::new();
    for c in cases.iter().filter(|c| c.class != "copy") {
        if !classes.iter().any(|(cl, _)| cl == &c.class) {
            let sp = geo_mean(
                cases
                    .iter()
                    .filter(|x| x.class == c.class)
                    .map(|x| x.speedup),
            );
            classes.push((c.class.clone(), sp));
        }
    }
    let geo_mean_speedup = geo_mean(
        cases
            .iter()
            .filter(|c| c.class != "copy")
            .map(|c| c.speedup),
    );
    let copy_speedup = cases
        .iter()
        .find(|c| c.class == "copy")
        .map(|c| c.speedup)
        .unwrap_or(1.0);

    // Thread-scaling curve: re-run the tiled sweep with an explicit
    // worker count (1/2/4/N), timing the whole sweep per point.
    let mut ladder: Vec<usize> = vec![1, 2, 4, threads];
    ladder.sort_unstable();
    ladder.dedup();
    let mut scaling: Vec<ScalingPoint> = Vec::new();
    for (li, &workers) in ladder.iter().enumerate() {
        let mut best = f64::INFINITY;
        // The first ladder point doubles as the 1-thread baseline, so
        // give it an extra untimed sweep to settle the allocator.
        let reps = if li == 0 { reps + 1 } else { reps };
        for _ in 0..reps {
            let t0 = Instant::now();
            for (shape, perm, input) in &plans {
                let plan = ttlg_cpu::CpuPlan::new(
                    shape.extents(),
                    perm.as_slice(),
                    ttlg_cpu::pick_tile(4),
                    workers,
                );
                let out_shape = perm.apply_to_shape(shape).expect("valid perm");
                let mut out: DenseTensor<f32> = DenseTensor::zeros(out_shape);
                ttlg_cpu::execute(&plan, input.data(), out.data_mut());
            }
            best = best.min(t0.elapsed().as_nanos() as f64);
        }
        let base = scaling.first().map(|p: &ScalingPoint| p.wall_ns);
        scaling.push(ScalingPoint {
            threads: workers,
            wall_ns: best,
            speedup: base.map(|b| b / best.max(1.0)).unwrap_or(1.0),
        });
    }

    // Mixed service segment: every problem once per backend through a
    // real TransposeService, then check the exported families.
    let svc: TransposeService<f32> = TransposeService::new_k40c();
    for (_, perm, input) in &plans {
        let input = Arc::new(input.clone());
        let mut creq = TransposeRequest::new(Arc::clone(&input), perm.clone());
        creq.opts = cpu_opts.clone();
        svc.submit(&creq).expect("mixed cpu submit");
        svc.submit(&TransposeRequest::new(input, perm.clone()))
            .expect("mixed gpu submit");
    }
    let prom = svc.export_prometheus();
    let metrics_expose_both = prom.contains("ttlg_backend_requests_total{backend=\"gpu_sim\"}")
        && prom.contains("ttlg_backend_requests_total{backend=\"cpu\"}");

    CpuStudy {
        threads,
        cases,
        classes,
        geo_mean_speedup,
        copy_speedup,
        scaling,
        cpu_pred_geo_err: geo_mean(cpu_errs.into_iter()),
        gpu_pred_geo_err: geo_mean(gpu_errs.into_iter()),
        backend_requests_gpu: svc.metrics().requests_for_backend(Backend::GpuSim),
        backend_requests_cpu: svc.metrics().requests_for_backend(Backend::Cpu),
        metrics_expose_both,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_study_beats_naive_on_every_class() {
        let study = run(1.0);
        assert_eq!(study.cases.len(), 6);
        assert_eq!(study.classes.len(), 4, "four gated transposition classes");
        assert!(
            study.classes.iter().all(|(c, _)| c != "copy"),
            "the copy reference must stay out of the gated classes"
        );
        // The 1.5x floor is a claim about optimized code; debug builds
        // deflate the register-staged micro-kernels far more than the
        // naive loop, so there the bar is only that the study is sane.
        // CI enforces the real gate on the release binary's artifact.
        let floor = if cfg!(debug_assertions) { 0.0 } else { 1.5 };
        for (class, sp) in &study.classes {
            assert!(
                *sp > floor,
                "{class}: tiled CPU only {sp:.2}x over naive (need {floor}x)"
            );
        }
        assert!(study.geo_mean_speedup > floor);
        assert!(study.copy_speedup > 0.0);
        assert!(study.cpu_pred_geo_err >= 1.0);
        assert!(study.gpu_pred_geo_err >= 1.0);
        // The scaling ladder starts at 1 thread with speedup 1.0.
        assert_eq!(study.scaling[0].threads, 1);
        assert!((study.scaling[0].speedup - 1.0).abs() < 1e-12);
        // The mixed segment hit both backends and exported both lanes.
        assert_eq!(study.backend_requests_cpu, 6);
        assert_eq!(study.backend_requests_gpu, 6);
        assert!(study.metrics_expose_both);
    }

    #[test]
    fn cpu_study_renders_and_serializes() {
        let study = run(1.0);
        let rendered = study.render();
        assert!(rendered.contains("geo-mean speedup"));
        assert!(rendered.contains("orthogonal-distinct"));
        assert!(rendered.contains("thread scaling"));
        let json = study.to_json();
        assert!(json.contains("\"study\": \"cpu\""));
        assert!(json.contains("\"classes\""));
        assert!(json.contains("\"scaling\""));
        assert!(json.contains("\"cpu_pred_geo_err\""));
        assert!(json.contains("\"backend_requests_cpu\""));
    }
}
