//! The measurement harness: runs one transposition case through every
//! system (TTLG, cuTT-heuristic, cuTT-measure, TTC, naive) in timing mode
//! and reports the paper's two scenarios — repeated use (kernel time only)
//! and single use (plan time included).

use std::sync::Arc;
use ttlg::{TimePredictor, TransposeOptions, Transposer};
use ttlg_baselines::cutt::{CuttLibrary, CuttMode};
use ttlg_baselines::naive::NaiveTranspose;
use ttlg_baselines::ttc::TtcGenerator;
use ttlg_gpu_sim::{timing, DeviceConfig};
use ttlg_tensor::generator::Case;

/// Kernel and plan time of one system on one case.
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemTimes {
    /// Kernel execution time, ns.
    pub kernel_ns: f64,
    /// Plan-construction time, ns (0 where not applicable).
    pub plan_ns: f64,
}

impl SystemTimes {
    /// The paper's bandwidth metric for the repeated-use scenario.
    pub fn repeated_bw(&self, volume: usize, elem_bytes: usize) -> f64 {
        timing::bandwidth_gbps(volume, elem_bytes, self.kernel_ns)
    }

    /// Bandwidth for the single-use scenario (plan + one kernel run).
    pub fn single_bw(&self, volume: usize, elem_bytes: usize) -> f64 {
        timing::bandwidth_gbps(volume, elem_bytes, self.kernel_ns + self.plan_ns)
    }

    /// Bandwidth when the plan is amortised over `n` kernel calls
    /// (Fig. 12).
    pub fn amortized_bw(&self, volume: usize, elem_bytes: usize, n: usize) -> f64 {
        let total = self.plan_ns + n as f64 * self.kernel_ns;
        timing::bandwidth_gbps(volume * n, elem_bytes, total)
    }
}

/// All systems on one case.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// The case label.
    pub name: String,
    /// Elements.
    pub volume: usize,
    /// Scaled rank after fusion.
    pub scaled_rank: usize,
    /// TTLG with the model-driven planner.
    pub ttlg: SystemTimes,
    /// cuTT heuristic mode.
    pub cutt_heuristic: SystemTimes,
    /// cuTT measure mode.
    pub cutt_measure: SystemTimes,
    /// TTC generated code (no online plan time; codegen is offline).
    pub ttc: SystemTimes,
    /// Naive d-loop kernel.
    pub naive: SystemTimes,
}

/// Which systems to run (the naive kernel and TTC are skipped in some
/// figures).
#[derive(Debug, Clone, Copy)]
pub struct SystemSet {
    /// Include TTC (repeated-use figures only in the paper).
    pub ttc: bool,
    /// Include the naive kernel (not in the paper's charts; used by the
    /// ablation studies).
    pub naive: bool,
}

impl Default for SystemSet {
    fn default() -> Self {
        SystemSet {
            ttc: true,
            naive: false,
        }
    }
}

/// The harness owns one instance of every system.
pub struct Harness {
    device: DeviceConfig,
    ttlg: Transposer,
    cutt: CuttLibrary,
    ttc: TtcGenerator,
    naive: NaiveTranspose,
}

impl Harness {
    /// Build with TTLG's default (analytic) predictor.
    pub fn new(device: DeviceConfig) -> Self {
        Harness {
            ttlg: Transposer::new(device.clone()),
            cutt: CuttLibrary::new(device.clone()),
            ttc: TtcGenerator::new(device.clone()),
            naive: NaiveTranspose::new(device.clone()),
            device,
        }
    }

    /// Build with a custom TTLG predictor (e.g. the trained regressions).
    pub fn with_predictor(device: DeviceConfig, predictor: Arc<dyn TimePredictor>) -> Self {
        Harness {
            ttlg: Transposer::with_predictor(device.clone(), predictor),
            cutt: CuttLibrary::new(device.clone()),
            ttc: TtcGenerator::new(device.clone()),
            naive: NaiveTranspose::new(device.clone()),
            device,
        }
    }

    /// The paper's machine.
    pub fn k40c() -> Self {
        Self::new(DeviceConfig::k40c())
    }

    /// Access the TTLG instance.
    pub fn ttlg(&self) -> &Transposer {
        &self.ttlg
    }

    /// The device under test.
    pub fn device(&self) -> &DeviceConfig {
        &self.device
    }

    /// Run every requested system on a case (f64 elements, as in the
    /// paper's bandwidth accounting).
    pub fn run_case(&self, case: &Case, systems: SystemSet) -> CaseResult {
        let ttlg = {
            let plan = self
                .ttlg
                .plan::<f64>(&case.shape, &case.perm, &TransposeOptions::default())
                .expect("TTLG plans every case");
            let r = self.ttlg.time_plan(&plan).expect("TTLG times every case");
            SystemTimes {
                kernel_ns: r.kernel_time_ns,
                plan_ns: r.plan_time_ns,
            }
        };
        let cutt_heuristic = {
            let plan = self
                .cutt
                .plan::<f64>(&case.shape, &case.perm, CuttMode::Heuristic);
            let r = self.cutt.time_plan(&plan);
            SystemTimes {
                kernel_ns: r.kernel_time_ns,
                plan_ns: r.plan_time_ns,
            }
        };
        let cutt_measure = {
            let plan = self
                .cutt
                .plan::<f64>(&case.shape, &case.perm, CuttMode::Measure);
            let r = self.cutt.time_plan(&plan);
            SystemTimes {
                kernel_ns: r.kernel_time_ns,
                plan_ns: r.plan_time_ns,
            }
        };
        let ttc = if systems.ttc {
            let exe = self.ttc.generate::<f64>(&case.shape, &case.perm);
            let r = self.ttc.time(&exe);
            SystemTimes {
                kernel_ns: r.kernel_time_ns,
                plan_ns: 0.0,
            }
        } else {
            SystemTimes::default()
        };
        let naive = if systems.naive {
            let r = self.naive.time::<f64>(&case.shape, &case.perm);
            SystemTimes {
                kernel_ns: r.kernel_time_ns,
                plan_ns: 0.0,
            }
        } else {
            SystemTimes::default()
        };
        CaseResult {
            name: case.name.clone(),
            volume: case.volume(),
            scaled_rank: case.scaled_rank(),
            ttlg,
            cutt_heuristic,
            cutt_measure,
            ttc,
            naive,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttlg_tensor::generator::Case;

    #[test]
    fn runs_all_systems_on_a_case() {
        let h = Harness::k40c();
        let case = Case::new("t", &[16, 16, 16, 16], &[3, 1, 2, 0]);
        let r = h.run_case(
            &case,
            SystemSet {
                ttc: true,
                naive: true,
            },
        );
        assert!(r.ttlg.kernel_ns > 0.0);
        assert!(r.cutt_heuristic.kernel_ns > 0.0);
        assert!(r.cutt_measure.kernel_ns > 0.0);
        assert!(r.ttc.kernel_ns > 0.0);
        assert!(r.naive.kernel_ns > r.ttlg.kernel_ns, "naive must lose");
        // measure-mode planning is the most expensive
        assert!(r.cutt_measure.plan_ns > r.cutt_heuristic.plan_ns);
    }

    #[test]
    fn bandwidth_math() {
        let s = SystemTimes {
            kernel_ns: 1000.0,
            plan_ns: 1000.0,
        };
        let vol = 1000;
        let rep = s.repeated_bw(vol, 8);
        let single = s.single_bw(vol, 8);
        assert!((rep - 16.0).abs() < 1e-9); // 2*1000*8/1000
        assert!((single - 8.0).abs() < 1e-9);
        // amortization approaches repeated-use bandwidth
        let amort = s.amortized_bw(vol, 8, 1_000_000);
        assert!((amort - rep).abs() / rep < 1e-3);
        assert!((s.amortized_bw(vol, 8, 1) - single).abs() < 1e-9);
    }
}
