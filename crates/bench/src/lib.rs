//! # ttlg-bench
//!
//! The evaluation harness: regenerates every table and figure of the TTLG
//! paper (IPDPS 2018, Sec. VI) on the simulated K40c. Each figure module
//! produces a [`report::Table`] with the same rows/series the paper
//! plots; the `reproduce` binary prints them (and writes CSVs under
//! `results/`).
//!
//! Figure index (see DESIGN.md for the full mapping):
//! * Table I — transaction-count formulas vs measured counts
//! * Table II — trained regression models (estimates/std.err/t/p)
//! * Table III — machine configuration
//! * Fig. 5 — predicted vs actual times over slice variants (27^5)
//! * Figs. 6/8/10 — all 720 permutations of 6D tensors (16/15/17),
//!   repeated use
//! * Figs. 7/9/11 — same, single use (plan time included)
//! * Fig. 12 — bandwidth vs number of repeated calls
//! * Fig. 13 — bandwidth vs dimension sizes
//! * Fig. 14 — the TTC benchmark suite

pub mod async_study;
pub mod autotune_study;
pub mod cpu_study;
pub mod figures;
pub mod gateway_study;
pub mod microbench;
pub mod report;
pub mod runner;
pub mod serve_study;
pub mod tail_study;
pub mod trace_study;

pub use report::Table;
pub use runner::{CaseResult, Harness, SystemTimes};
