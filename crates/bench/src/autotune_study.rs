//! Autotuning study: model-only serving vs measure-mode autotuned
//! serving on the mixed-permutation workload of [`crate::serve_study`].
//!
//! The setup deliberately starts from a *mis-calibrated* regression
//! model (the pretrained K40c coefficients, skewed so slice-dependent
//! terms point the wrong way). Phase 1 serves the workload with that
//! model alone — plans are whatever the bad model picks, and its
//! predictions miss accordingly. The autotuner then measures the
//! top-ranked candidates for every hot key, warms the cache with the
//! measured-best plans, and streams every measurement into an
//! [`OnlinePredictor`] refining the coefficients. Phase 2 replays the
//! same workload: hot keys now run measured-best plans whose predicted
//! time *is* their measured time, so both the execute-time percentiles
//! and the geometric-mean prediction error must improve.

use crate::serve_study::{json_f64, workload};
use std::sync::Arc;
use ttlg::{TimePredictor, Transposer};
use ttlg_gpu_sim::DeviceConfig;
use ttlg_perfmodel::online::OnlineConfig;
use ttlg_perfmodel::pretrained::model_pair_k40c;
use ttlg_perfmodel::{MeasurementSink, ModelPair, OnlinePredictor};
use ttlg_runtime::{
    AutotuneConfig, AutotuneSnapshot, PredictionTracker, RuntimeConfig, TransposeRequest,
    TransposeService,
};

/// Outcome of one autotune study run.
#[derive(Debug, Clone)]
pub struct AutotuneStudy {
    /// Requests replayed in each phase.
    pub requests_per_phase: usize,
    /// Distinct permutations (= distinct plan keys) in the workload.
    pub distinct_perms: usize,
    /// Rounds over those permutations per phase.
    pub rounds: usize,
    /// Geo-mean prediction error before refinement (phase 1).
    pub geo_error_before: f64,
    /// Geo-mean prediction error after tuning + refinement (phase 2).
    pub geo_error_after: f64,
    /// Median simulated execute time per request, phase 1 (µs).
    pub p50_exec_us_before: f64,
    /// 99th-percentile simulated execute time, phase 1 (µs).
    pub p99_exec_us_before: f64,
    /// Median simulated execute time per request, phase 2 (µs).
    pub p50_exec_us_after: f64,
    /// 99th-percentile simulated execute time, phase 2 (µs).
    pub p99_exec_us_after: f64,
    /// Autotuner counters after the tuning pass.
    pub tuner: AutotuneSnapshot,
    /// Measured points accepted by the online model.
    pub online_points: u64,
    /// Successful online refits.
    pub online_refits: u64,
}

/// The pretrained K40c models with their slice-dependent terms skewed
/// adversarially: predictions are biased *and* rank candidates within a
/// key in the wrong order, so measure mode has real mistakes to fix.
pub fn skewed_models() -> ModelPair {
    let mut pair = model_pair_k40c();
    pair.od.intercept *= 2.0;
    // OD features: Volume, NumBlocks, Input slice, Output slice, Cycles.
    pair.od.coefficients[2] *= -6.0;
    pair.od.coefficients[3] *= -6.0;
    pair.od.coefficients[4] *= 0.2;
    pair.oa.intercept *= 2.0;
    // OA features: Volume, NumThreads, Total Slice, Input Stride,
    // Output Stride, Special Instr, Cycles.
    pair.oa.coefficients[2] *= -6.0;
    pair.oa.coefficients[3] *= -4.0;
    pair.oa.coefficients[4] *= -4.0;
    pair.oa.coefficients[6] *= 0.2;
    pair
}

fn percentile_us(times_ns: &[f64], q: f64) -> f64 {
    let mut sorted = times_ns.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    if sorted.is_empty() {
        return 0.0;
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    (sorted[lo] + (sorted[hi] - sorted[lo]) * frac) * 1e-3
}

fn replay(svc: &TransposeService<f64>, reqs: &[TransposeRequest<f64>]) -> (f64, Vec<f64>) {
    let tracker = PredictionTracker::new(["serve"]);
    let mut times = Vec::with_capacity(reqs.len());
    for resp in svc.submit_batch(reqs) {
        let resp = resp.expect("study request failed");
        tracker.record(0, resp.report.predicted_ns, resp.report.kernel_time_ns);
        times.push(resp.report.kernel_time_ns);
    }
    (tracker.overall_geo_mean_error(), times)
}

/// Run the study: phase 1 with the skewed model, one full autotuning
/// pass, phase 2 on the tuned service.
pub fn run(distinct: usize, rounds: usize) -> AutotuneStudy {
    let device = DeviceConfig::k40c();
    let online = Arc::new(OnlinePredictor::from_pair(
        &skewed_models(),
        device.clone(),
        OnlineConfig {
            forgetting: 1.0,
            min_points: 8,
            prior_strength: 1e-9,
        },
    ));
    let transposer =
        Transposer::with_predictor(device, Arc::clone(&online) as Arc<dyn TimePredictor>);
    let cfg = RuntimeConfig {
        autotune: AutotuneConfig {
            enabled: true,
            hot_threshold: 1,
            topk: 4,
            budget_per_key: 8,
            threads: 1,
            poll_interval_ms: 1,
            ..AutotuneConfig::default()
        },
        ..RuntimeConfig::default()
    };
    let svc = TransposeService::<f64>::with_config(transposer, cfg)
        .with_measurement_sink(Arc::clone(&online) as Arc<dyn MeasurementSink>);

    let reqs = workload(distinct, rounds);
    let (geo_before, times_before) = replay(&svc, &reqs);

    // One synchronous tuning pass: every key is already hot.
    while svc.autotune_once() > 0 {}

    let (geo_after, times_after) = replay(&svc, &reqs);

    AutotuneStudy {
        requests_per_phase: reqs.len(),
        distinct_perms: distinct,
        rounds,
        geo_error_before: geo_before,
        geo_error_after: geo_after,
        p50_exec_us_before: percentile_us(&times_before, 0.50),
        p99_exec_us_before: percentile_us(&times_before, 0.99),
        p50_exec_us_after: percentile_us(&times_after, 0.50),
        p99_exec_us_after: percentile_us(&times_after, 0.99),
        tuner: svc.autotune_stats(),
        online_points: online.points_seen(),
        online_refits: online.refits(),
    }
}

impl AutotuneStudy {
    /// Render a small comparison table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("== model-only vs autotuned serving ==\n");
        s.push_str(&format!(
            "workload: {} requests/phase over {} distinct permutations x {} rounds\n",
            self.requests_per_phase, self.distinct_perms, self.rounds
        ));
        s.push_str(&format!(
            "{:<22} {:>16} {:>14} {:>14}\n",
            "phase", "geo-mean error", "p50 exec us", "p99 exec us"
        ));
        s.push_str(&format!(
            "{:<22} {:>15.3}x {:>14.2} {:>14.2}\n",
            "model-only", self.geo_error_before, self.p50_exec_us_before, self.p99_exec_us_before
        ));
        s.push_str(&format!(
            "{:<22} {:>15.3}x {:>14.2} {:>14.2}\n",
            "autotuned", self.geo_error_after, self.p50_exec_us_after, self.p99_exec_us_after
        ));
        s.push_str(&format!(
            "tuner: {} keys, {} measurements, {} plans warmed ({} swapped from the modeled pick)\n",
            self.tuner.keys_tuned,
            self.tuner.candidates_measured,
            self.tuner.plans_warmed,
            self.tuner.plans_swapped
        ));
        s.push_str(&format!(
            "online model: {} points streamed, {} refits\n",
            self.online_points, self.online_refits
        ));
        s
    }

    /// Serialize as a machine-readable JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str("  \"study\": \"autotune\",\n");
        s.push_str(&format!(
            "  \"requests_per_phase\": {},\n",
            self.requests_per_phase
        ));
        s.push_str(&format!("  \"distinct_perms\": {},\n", self.distinct_perms));
        s.push_str(&format!("  \"rounds\": {},\n", self.rounds));
        s.push_str(&format!(
            "  \"geo_error_before\": {},\n",
            json_f64(self.geo_error_before)
        ));
        s.push_str(&format!(
            "  \"geo_error_after\": {},\n",
            json_f64(self.geo_error_after)
        ));
        s.push_str(&format!(
            "  \"p50_exec_us_before\": {},\n",
            json_f64(self.p50_exec_us_before)
        ));
        s.push_str(&format!(
            "  \"p99_exec_us_before\": {},\n",
            json_f64(self.p99_exec_us_before)
        ));
        s.push_str(&format!(
            "  \"p50_exec_us_after\": {},\n",
            json_f64(self.p50_exec_us_after)
        ));
        s.push_str(&format!(
            "  \"p99_exec_us_after\": {},\n",
            json_f64(self.p99_exec_us_after)
        ));
        s.push_str(&format!("  \"keys_tuned\": {},\n", self.tuner.keys_tuned));
        s.push_str(&format!(
            "  \"candidates_measured\": {},\n",
            self.tuner.candidates_measured
        ));
        s.push_str(&format!(
            "  \"plans_warmed\": {},\n",
            self.tuner.plans_warmed
        ));
        s.push_str(&format!(
            "  \"plans_swapped\": {},\n",
            self.tuner.plans_swapped
        ));
        s.push_str(&format!("  \"tuner_failures\": {},\n", self.tuner.failures));
        s.push_str(&format!("  \"online_points\": {},\n", self.online_points));
        s.push_str(&format!("  \"online_refits\": {}\n", self.online_refits));
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn autotuning_reduces_prediction_error_and_warms_every_key() {
        let study = run(6, 2);
        assert_eq!(study.requests_per_phase, 12);
        // Acceptance: every hot key got a measured-best plan, and at
        // least one measured winner differed from the modeled one.
        assert_eq!(study.tuner.keys_tuned, 6);
        assert_eq!(study.tuner.plans_warmed, 6);
        assert_eq!(study.tuner.failures, 0);
        assert!(
            study.tuner.plans_swapped >= 1,
            "skewed model's pick must lose at least one bake-off: {study:?}"
        );
        // Acceptance: refinement strictly reduces the geo-mean error.
        assert!(
            study.geo_error_after < study.geo_error_before,
            "prediction error must drop: {} -> {}",
            study.geo_error_before,
            study.geo_error_after
        );
        // Warmed plans predict their own measured time exactly.
        assert!(
            study.geo_error_after < 1.001,
            "hot keys serve measured plans: {}",
            study.geo_error_after
        );
        // Measured-best plans can only speed up the tail.
        assert!(study.p99_exec_us_after <= study.p99_exec_us_before * 1.0001);
        assert!(study.online_points > 0);

        let json = study.to_json();
        assert!(json.contains("\"geo_error_before\""));
        assert!(json.contains("\"geo_error_after\""));
        assert!(json.contains("\"plans_swapped\""));
        let rendered = study.render();
        assert!(rendered.contains("model-only"));
        assert!(rendered.contains("autotuned"));
    }

    #[test]
    fn percentiles_interpolate() {
        let times = vec![1000.0, 2000.0, 3000.0, 4000.0];
        assert!((percentile_us(&times, 0.0) - 1.0).abs() < 1e-9);
        assert!((percentile_us(&times, 1.0) - 4.0).abs() < 1e-9);
        assert!((percentile_us(&times, 0.5) - 2.5).abs() < 1e-9);
        assert_eq!(percentile_us(&[], 0.5), 0.0);
    }
}
