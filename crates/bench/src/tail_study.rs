//! Tail-latency attribution study (`BENCH_tail.json`).
//!
//! The paper evaluates *mean* bandwidth per permutation; a service built
//! on the library lives and dies by its *tail*. This study replays a
//! skewed workload — a few hot plan keys plus a cold tail spread across
//! shape classes — through a **real loopback gateway** (`ttlg-serve` on
//! an ephemeral port), lets the measure-mode autotuner warm the hot keys
//! mid-run, and then attributes the tail from the gateway's own
//! four-phase decomposition: every response body carries measured
//! `network` / `queue` / `plan` / `execute` microseconds, so the phase
//! shares reported here are the edge's real accounting, not a synthetic
//! re-derivation from ring traces. Per-schema p50/p95/p99, which phase
//! dominates at p99, the slowest retained exemplars with their planner
//! decision traces, and the SLO hit-rate / burn-rate view complete the
//! picture.
//!
//! Quantiles here are *exact* (nearest-rank over every response), unlike
//! the service's log2-bucketed online estimates — so the study doubles
//! as a sanity check on the bucketed exporter.

use crate::serve_study::json_f64;
use std::sync::Arc;
use ttlg::Transposer;
use ttlg_runtime::autotune::AutotuneConfig;
use ttlg_runtime::{RuntimeConfig, SloSnapshot, TransposeRequest, TransposeService};
use ttlg_serve::{client::HttpClient, Gateway, GatewayConfig, QuotaConfig, ServerHandle};
use ttlg_tensor::rng::StdRng;
use ttlg_tensor::{DenseTensor, Permutation, Shape};

/// Phase shares (fractions of total latency, summing to ~1) over the
/// requests at or beyond a quantile cutoff, using the gateway's real
/// four-phase decomposition from the response bodies.
#[derive(Debug, Clone, Copy, Default)]
pub struct GatewayPhaseShares {
    /// Share of time on the wire (first byte to parsed request).
    pub network: f64,
    /// Share of time queued in the gateway (admission to dequeue).
    pub queue: f64,
    /// Share of time fetching or building the plan.
    pub plan: f64,
    /// Share of time executing the kernel (incl. the execution permit).
    pub execute: f64,
}

impl GatewayPhaseShares {
    /// The phase with the largest share (ties favor `execute`).
    pub fn dominant(&self) -> &'static str {
        let mut best = ("execute", self.execute);
        for (name, share) in [
            ("network", self.network),
            ("queue", self.queue),
            ("plan", self.plan),
        ] {
            if share > best.1 {
                best = (name, share);
            }
        }
        best.0
    }
}

/// One request's worth of gateway-reported phase data, parsed from the
/// `/v1/transpose` response body.
#[derive(Debug, Clone)]
struct GatewaySample {
    schema: String,
    warmed: bool,
    network_us: f64,
    queue_us: f64,
    plan_us: f64,
    execute_us: f64,
}

impl GatewaySample {
    fn total_us(&self) -> f64 {
        self.network_us + self.queue_us + self.plan_us + self.execute_us
    }
}

/// One retained slow-request exemplar, flattened for the report. These
/// come from the service's exemplar store, so their phase split is the
/// service-side three-phase view (no network component).
#[derive(Debug, Clone)]
pub struct TailExemplar {
    /// Request id (joins against service logs / trace dumps).
    pub id: u64,
    /// Shape class of the request (e.g. `"r4v12"`).
    pub shape_class: String,
    /// Total latency, us.
    pub total_us: f64,
    /// Queue-wait share of the total, us.
    pub queue_wait_us: f64,
    /// Plan-fetch share of the total, us.
    pub plan_fetch_us: f64,
    /// Execute share of the total, us.
    pub execute_us: f64,
    /// Whether the request ran an autotuner-warmed plan.
    pub warmed: bool,
    /// Whether the plan came from the cache.
    pub cache_hit: bool,
    /// Candidate count in the retained planner decision trace
    /// (0 = no decision retained).
    pub decision_candidates: usize,
}

/// Tail summary for one schema.
#[derive(Debug, Clone)]
pub struct SchemaTail {
    /// Schema label.
    pub schema: String,
    /// Requests served under this schema.
    pub requests: usize,
    /// Exact nearest-rank quantiles over total latency, us.
    pub p50_us: f64,
    /// 95th percentile, us.
    pub p95_us: f64,
    /// 99th percentile, us.
    pub p99_us: f64,
    /// Gateway phase shares over the requests at or beyond p99.
    pub phase_at_p99: GatewayPhaseShares,
    /// Slowest retained exemplars for this schema (slowest first).
    pub exemplars: Vec<TailExemplar>,
}

/// Before/after-warming tail comparison.
#[derive(Debug, Clone, Copy, Default)]
pub struct WarmthTail {
    /// Requests in this slice.
    pub requests: usize,
    /// Exact p99 over the slice, us.
    pub p99_us: f64,
}

/// Outcome of one tail study run.
#[derive(Debug, Clone)]
pub struct TailStudy {
    /// Total requests replayed.
    pub requests: usize,
    /// Requests that coalesced onto another identical in-flight
    /// request's execution (0 for this sequential replay; nonzero under
    /// concurrent duplicate load).
    pub coalesced_requests: u64,
    /// Traces that fell off the ring (0 — the ring is sized to fit).
    pub trace_dropped: u64,
    /// Exemplars retained across all buckets.
    pub exemplar_count: usize,
    /// Per-schema tails, slowest p99 first.
    pub schemas: Vec<SchemaTail>,
    /// Requests served by autotuner-warmed plans.
    pub warmed: WarmthTail,
    /// Requests served by model-ranked (unwarmed) plans.
    pub unwarmed: WarmthTail,
    /// SLO view of the run (hit rate, burn rates).
    pub slo: SloSnapshot,
    /// Flame-style phase-profile tree from the service's ring.
    pub flame: String,
}

/// Exact nearest-rank quantile over sorted totals (us).
fn quantile(sorted_us: &[f64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return f64::NAN;
    }
    let rank = ((q * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1]
}

/// Gateway phase shares over the samples with total latency >=
/// `cutoff_us`.
fn phase_at(samples: &[&GatewaySample], cutoff_us: f64) -> GatewayPhaseShares {
    let (mut n, mut q, mut p, mut e) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for s in samples.iter().filter(|s| s.total_us() >= cutoff_us) {
        n += s.network_us;
        q += s.queue_us;
        p += s.plan_us;
        e += s.execute_us;
    }
    let total = n + q + p + e;
    if total == 0.0 {
        return GatewayPhaseShares::default();
    }
    GatewayPhaseShares {
        network: n / total,
        queue: q / total,
        plan: p / total,
        execute: e / total,
    }
}

fn warmth_tail(samples: &[GatewaySample], warmed: bool) -> WarmthTail {
    let mut totals: Vec<f64> = samples
        .iter()
        .filter(|s| s.warmed == warmed)
        .map(|s| s.total_us())
        .collect();
    totals.sort_by(|a, b| a.total_cmp(b));
    WarmthTail {
        requests: totals.len(),
        p99_us: quantile(&totals, 0.99),
    }
}

/// The skewed workload as `(extents, perm)` problem specs: `rounds`
/// passes over a mix of hot rank-4 permutations (repeated every round,
/// so the autotuner sees them as hot) plus a cold tail of one-off
/// problems across several shape classes.
pub fn workload_specs(rounds: usize) -> Vec<(Vec<usize>, Vec<usize>)> {
    let hot_extents = vec![6usize, 5, 4, 3];
    let hot_perms: [[usize; 4]; 3] = [[3, 1, 0, 2], [2, 3, 1, 0], [1, 0, 3, 2]];
    let cold: [(&[usize], &[usize]); 4] = [
        (&[32, 32], &[1, 0]),
        (&[16, 16, 16], &[2, 1, 0]),
        (&[8, 8, 8, 8], &[2, 3, 0, 1]),
        (&[4, 4, 4, 4, 4], &[4, 3, 2, 1, 0]),
    ];
    let mut specs: Vec<(Vec<usize>, Vec<usize>)> = Vec::new();
    for _ in 0..rounds {
        for p in &hot_perms {
            specs.push((hot_extents.clone(), p.to_vec()));
        }
        for (e, p) in &cold {
            specs.push((e.to_vec(), p.to_vec()));
        }
    }
    let mut rng = StdRng::seed_from_u64(0x7A11_57D1);
    rng.shuffle(&mut specs);
    specs
}

/// The same workload materialized as service-level requests (used by
/// `ttlg profile --tail`, which replays in-process without a gateway).
/// Hot problems share one input tensor; cold problems get their own.
pub fn workload(rounds: usize) -> Vec<TransposeRequest<f64>> {
    let mut inputs: std::collections::HashMap<Vec<usize>, Arc<DenseTensor<f64>>> =
        std::collections::HashMap::new();
    workload_specs(rounds)
        .into_iter()
        .map(|(extents, perm)| {
            let input = Arc::clone(inputs.entry(extents.clone()).or_insert_with(|| {
                Arc::new(DenseTensor::<f64>::iota(Shape::new(&extents).unwrap()))
            }));
            TransposeRequest::new(input, Permutation::new(&perm).unwrap())
        })
        .collect()
}

/// Run the study: stand up a loopback gateway, warm half the workload
/// over real HTTP, autotune the hot keys, replay the other half, then
/// attribute the tail from the gateway's per-response phase
/// decomposition.
pub fn run(rounds: usize) -> TailStudy {
    let rounds = rounds.max(2);
    let specs = workload_specs(rounds);
    let cfg = RuntimeConfig {
        // The ring must hold the whole run for exact quantiles.
        trace_capacity: specs.len().next_power_of_two(),
        autotune: AutotuneConfig {
            enabled: true,
            hot_threshold: 2,
            topk: 4,
            budget_per_key: 8,
            threads: 1,
            poll_interval_ms: 1,
            ..AutotuneConfig::default()
        },
        ..RuntimeConfig::default()
    };
    let svc = Arc::new(TransposeService::<f64>::with_config(
        Transposer::new_k40c(),
        cfg,
    ));
    let gw = Gateway::start(
        Arc::clone(&svc),
        GatewayConfig {
            workers: 2,
            quota: QuotaConfig {
                rate_per_sec: 1e6,
                burst: 1e6,
                ..QuotaConfig::default()
            },
            ..GatewayConfig::default()
        },
    );
    let mut server: ServerHandle =
        ttlg_serve::server::spawn(Arc::clone(&gw), "127.0.0.1:0").expect("bind loopback");
    let mut client = HttpClient::connect(server.addr()).expect("connect loopback");

    // First half establishes the pre-warming tail and marks keys hot;
    // one synchronous autotune pass then warms them, and the second
    // half runs against warmed plans where available.
    let mid = specs.len() / 2;
    let mut samples: Vec<GatewaySample> = Vec::with_capacity(specs.len());
    for (i, (extents, perm)) in specs.iter().enumerate() {
        if i == mid {
            svc.autotune_once();
        }
        let body = format!("{{\"extents\":{extents:?},\"perm\":{perm:?}}}");
        let resp = client
            .post_json("/v1/transpose", &[("x-ttlg-tenant", "tail-study")], &body)
            .expect("loopback request");
        assert_eq!(resp.status, 200, "{}", resp.body_text());
        let json = ttlg_serve::json::parse(&resp.body).expect("response body is JSON");
        let phases = json.get("phases").expect("phases present");
        let us = |key: &str| {
            phases
                .get(key)
                .and_then(|v| v.as_f64())
                .expect("phase value")
        };
        samples.push(GatewaySample {
            schema: json
                .get("schema")
                .and_then(|v| v.as_str())
                .unwrap_or("unplanned")
                .to_string(),
            warmed: matches!(json.get("warmed"), Some(ttlg_serve::json::Json::Bool(true))),
            network_us: us("network_us"),
            queue_us: us("queue_us"),
            plan_us: us("plan_us"),
            execute_us: us("execute_us"),
        });
    }
    server.stop();

    // Group by schema and compute exact tails from the gateway samples.
    let mut by_schema: Vec<(String, Vec<&GatewaySample>)> = Vec::new();
    for s in &samples {
        match by_schema.iter_mut().find(|(k, _)| *k == s.schema) {
            Some((_, v)) => v.push(s),
            None => by_schema.push((s.schema.clone(), vec![s])),
        }
    }
    let exemplars = svc.exemplars();
    let mut schemas: Vec<SchemaTail> = by_schema
        .into_iter()
        .map(|(schema, ss)| {
            let mut totals: Vec<f64> = ss.iter().map(|s| s.total_us()).collect();
            totals.sort_by(|a, b| a.total_cmp(b));
            let p99_us = quantile(&totals, 0.99);
            let exemplars: Vec<TailExemplar> = exemplars
                .iter()
                .filter(|((s, _), _)| *s == schema)
                .flat_map(|(_, entries)| entries.iter())
                .map(|e| TailExemplar {
                    id: e.trace.id,
                    shape_class: e.trace.shape_class.clone(),
                    total_us: e.trace.total_ns() as f64 * 1e-3,
                    queue_wait_us: e.trace.queue_wait_ns as f64 * 1e-3,
                    plan_fetch_us: e.trace.plan_fetch_ns as f64 * 1e-3,
                    execute_us: e.trace.execute_ns as f64 * 1e-3,
                    warmed: e.trace.warmed,
                    cache_hit: e.trace.cache_hit.unwrap_or(false),
                    decision_candidates: e.decision.as_ref().map_or(0, |d| d.candidates.len()),
                })
                .collect();
            let mut exemplars = exemplars;
            exemplars.sort_by(|a, b| b.total_us.total_cmp(&a.total_us));
            exemplars.truncate(3);
            SchemaTail {
                requests: ss.len(),
                p50_us: quantile(&totals, 0.50),
                p95_us: quantile(&totals, 0.95),
                p99_us,
                phase_at_p99: phase_at(&ss, p99_us),
                exemplars,
                schema,
            }
        })
        .collect();
    schemas.sort_by(|a, b| b.p99_us.total_cmp(&a.p99_us));

    TailStudy {
        requests: samples.len(),
        coalesced_requests: svc.metrics().coalesced_requests(),
        trace_dropped: svc.trace_dropped(),
        exemplar_count: svc.exemplar_store().total_retained(),
        warmed: warmth_tail(&samples, true),
        unwarmed: warmth_tail(&samples, false),
        slo: svc.slo_snapshot(),
        flame: svc.render_profile(),
        schemas,
    }
}

impl TailStudy {
    /// Render the human-readable report: per-schema tail table, the
    /// warming comparison, the SLO line, and the flame tree.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("== tail-latency attribution (loopback gateway) ==\n");
        s.push_str(&format!(
            "workload: {} requests, {} coalesced, {} exemplars retained, {} traces dropped\n",
            self.requests, self.coalesced_requests, self.exemplar_count, self.trace_dropped
        ));
        s.push_str(&format!(
            "{:<24} {:>6} {:>10} {:>10} {:>10}  {}\n",
            "schema", "n", "p50 us", "p95 us", "p99 us", "dominant @p99"
        ));
        for sc in &self.schemas {
            s.push_str(&format!(
                "{:<24} {:>6} {:>10.1} {:>10.1} {:>10.1}  {}\n",
                sc.schema,
                sc.requests,
                sc.p50_us,
                sc.p95_us,
                sc.p99_us,
                sc.phase_at_p99.dominant()
            ));
        }
        s.push_str(&format!(
            "warmed plans: {} requests p99 {:.1} us | unwarmed: {} requests p99 {:.1} us\n",
            self.warmed.requests, self.warmed.p99_us, self.unwarmed.requests, self.unwarmed.p99_us
        ));
        s.push_str(&format!(
            "slo: target {:.0} us goal {:.2} hit-ratio {:.4} burn short/long {:.2}/{:.2}\n",
            self.slo.target_us,
            self.slo.goal,
            self.slo.hit_ratio,
            self.slo.burn_rate_short,
            self.slo.burn_rate_long
        ));
        s.push('\n');
        s.push_str(&self.flame);
        s
    }

    /// Serialize as the `BENCH_tail.json` document.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str("  \"study\": \"tail\",\n");
        s.push_str(&format!("  \"requests\": {},\n", self.requests));
        s.push_str(&format!(
            "  \"coalesced_requests\": {},\n",
            self.coalesced_requests
        ));
        s.push_str(&format!("  \"trace_dropped\": {},\n", self.trace_dropped));
        s.push_str(&format!("  \"exemplar_count\": {},\n", self.exemplar_count));
        s.push_str(&format!(
            "  \"warmed\": {{\"requests\": {}, \"p99_us\": {}}},\n",
            self.warmed.requests,
            json_f64(self.warmed.p99_us)
        ));
        s.push_str(&format!(
            "  \"unwarmed\": {{\"requests\": {}, \"p99_us\": {}}},\n",
            self.unwarmed.requests,
            json_f64(self.unwarmed.p99_us)
        ));
        s.push_str(&format!(
            "  \"slo\": {{\"target_us\": {}, \"goal\": {}, \"total\": {}, \"violations\": {}, \
             \"hit_ratio\": {}, \"burn_rate_short\": {}, \"burn_rate_long\": {}}},\n",
            json_f64(self.slo.target_us),
            json_f64(self.slo.goal),
            self.slo.total,
            self.slo.violations,
            json_f64(self.slo.hit_ratio),
            json_f64(self.slo.burn_rate_short),
            json_f64(self.slo.burn_rate_long)
        ));
        s.push_str("  \"schemas\": [\n");
        for (i, sc) in self.schemas.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"schema\": \"{}\", \"requests\": {}, \"p50_us\": {}, \"p95_us\": {}, \
                 \"p99_us\": {}, \"dominant_phase_at_p99\": \"{}\", \
                 \"phase_at_p99\": {{\"network\": {}, \"queue\": {}, \"plan\": {}, \
                 \"execute\": {}}}, \
                 \"exemplars\": [",
                sc.schema,
                sc.requests,
                json_f64(sc.p50_us),
                json_f64(sc.p95_us),
                json_f64(sc.p99_us),
                sc.phase_at_p99.dominant(),
                json_f64(sc.phase_at_p99.network),
                json_f64(sc.phase_at_p99.queue),
                json_f64(sc.phase_at_p99.plan),
                json_f64(sc.phase_at_p99.execute),
            ));
            for (j, e) in sc.exemplars.iter().enumerate() {
                s.push_str(&format!(
                    "{}{{\"id\": {}, \"shape_class\": \"{}\", \"total_us\": {}, \
                     \"queue_wait_us\": {}, \"plan_fetch_us\": {}, \"execute_us\": {}, \
                     \"warmed\": {}, \"cache_hit\": {}, \"decision_candidates\": {}}}",
                    if j == 0 { "" } else { ", " },
                    e.id,
                    e.shape_class,
                    json_f64(e.total_us),
                    json_f64(e.queue_wait_us),
                    json_f64(e.plan_fetch_us),
                    json_f64(e.execute_us),
                    e.warmed,
                    e.cache_hit,
                    e.decision_candidates
                ));
            }
            s.push_str(&format!(
                "]}}{}\n",
                if i + 1 == self.schemas.len() { "" } else { "," }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_are_exact_nearest_rank() {
        let sorted: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        assert_eq!(quantile(&sorted, 0.50), 50.0);
        assert_eq!(quantile(&sorted, 0.99), 99.0);
        assert!(quantile(&[], 0.5).is_nan());
    }

    #[test]
    fn dominant_phase_prefers_execute_on_ties() {
        let even = GatewayPhaseShares {
            network: 0.25,
            queue: 0.25,
            plan: 0.25,
            execute: 0.25,
        };
        assert_eq!(even.dominant(), "execute");
        let network_heavy = GatewayPhaseShares {
            network: 0.7,
            queue: 0.1,
            plan: 0.1,
            execute: 0.1,
        };
        assert_eq!(network_heavy.dominant(), "network");
    }

    #[test]
    fn tail_study_attributes_every_schema() {
        let study = run(4);
        assert_eq!(study.requests, 28);
        assert_eq!(study.trace_dropped, 0, "ring sized to fit");
        assert!(study.exemplar_count > 0);
        assert!(!study.schemas.is_empty());
        for sc in &study.schemas {
            assert!(sc.requests > 0);
            assert!(sc.p50_us <= sc.p95_us && sc.p95_us <= sc.p99_us);
            assert!(
                !sc.exemplars.is_empty(),
                "schema {} reported without an exemplar",
                sc.schema
            );
            let ph = sc.phase_at_p99;
            let sum = ph.network + ph.queue + ph.plan + ph.execute;
            assert!((sum - 1.0).abs() < 1e-9, "{} shares sum {sum}", sc.schema);
            assert!(ph.network > 0.0, "gateway phases carry a network share");
            assert!(!ph.dominant().is_empty());
        }
        // The autotune pass warmed the hot keys, so the second half of
        // the run carries warmed requests.
        assert!(study.warmed.requests > 0, "no warmed requests observed");
        assert_eq!(
            study.warmed.requests + study.unwarmed.requests,
            study.requests
        );
        assert_eq!(study.slo.total as usize, study.requests);
        assert!(study.flame.contains("execute"));
    }

    #[test]
    fn render_and_json_carry_the_attribution() {
        let study = run(2);
        let text = study.render();
        assert!(text.contains("tail-latency attribution"));
        assert!(text.contains("dominant @p99"));
        assert!(text.contains("slo:"));
        let json = study.to_json();
        assert!(json.contains("\"study\": \"tail\""));
        assert!(json.contains("\"coalesced_requests\""));
        assert!(json.contains("\"dominant_phase_at_p99\""));
        assert!(json.contains("\"phase_at_p99\": {\"network\":"));
        assert!(json.contains("\"exemplars\": [{"));
        assert!(json.contains("\"burn_rate_short\""));
    }
}
