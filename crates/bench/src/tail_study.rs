//! Tail-latency attribution study (`BENCH_tail.json`).
//!
//! The paper evaluates *mean* bandwidth per permutation; a service built
//! on the library lives and dies by its *tail*. This study replays a
//! skewed workload — a few hot plan keys plus a cold tail spread across
//! shape classes — through the `ttlg-runtime` service, lets the
//! measure-mode autotuner warm the hot keys mid-run, and then attributes
//! the tail: per-schema p50/p95/p99, which phase (queue-wait vs
//! plan-fetch vs execute) dominates at p99, the slowest retained
//! exemplars with their planner decision traces, and the SLO hit-rate /
//! burn-rate view of the same run.
//!
//! Quantiles here are *exact* (nearest-rank over the full trace ring,
//! which is sized to hold the whole workload), unlike the service's
//! log2-bucketed online estimates — so the study doubles as a sanity
//! check on the bucketed exporter.

use crate::serve_study::json_f64;
use std::sync::Arc;
use ttlg::Transposer;
use ttlg_runtime::autotune::AutotuneConfig;
use ttlg_runtime::{RequestTrace, RuntimeConfig, SloSnapshot, TransposeRequest, TransposeService};
use ttlg_tensor::rng::StdRng;
use ttlg_tensor::{DenseTensor, Permutation, Shape};

/// Phase shares (fractions of total latency, summing to ~1) over the
/// requests at or beyond a quantile cutoff.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseBreakdown {
    /// Share of time spent waiting for an execution permit.
    pub queue_wait: f64,
    /// Share of time spent fetching or building the plan.
    pub plan_fetch: f64,
    /// Share of time spent executing the kernel.
    pub execute: f64,
}

impl PhaseBreakdown {
    /// The phase with the largest share (ties favor `execute`).
    pub fn dominant(&self) -> &'static str {
        if self.queue_wait > self.execute && self.queue_wait >= self.plan_fetch {
            "queue-wait"
        } else if self.plan_fetch > self.execute && self.plan_fetch > self.queue_wait {
            "plan-fetch"
        } else {
            "execute"
        }
    }
}

/// One retained slow-request exemplar, flattened for the report.
#[derive(Debug, Clone)]
pub struct TailExemplar {
    /// Request id (joins against service logs / trace dumps).
    pub id: u64,
    /// Shape class of the request (e.g. `"r4v12"`).
    pub shape_class: String,
    /// Total latency, us.
    pub total_us: f64,
    /// Queue-wait share of the total, us.
    pub queue_wait_us: f64,
    /// Plan-fetch share of the total, us.
    pub plan_fetch_us: f64,
    /// Execute share of the total, us.
    pub execute_us: f64,
    /// Whether the request ran an autotuner-warmed plan.
    pub warmed: bool,
    /// Whether the plan came from the cache.
    pub cache_hit: bool,
    /// Candidate count in the retained planner decision trace
    /// (0 = no decision retained).
    pub decision_candidates: usize,
}

/// Tail summary for one schema.
#[derive(Debug, Clone)]
pub struct SchemaTail {
    /// Schema label.
    pub schema: String,
    /// Requests served under this schema.
    pub requests: usize,
    /// Exact nearest-rank quantiles over total latency, us.
    pub p50_us: f64,
    /// 95th percentile, us.
    pub p95_us: f64,
    /// 99th percentile, us.
    pub p99_us: f64,
    /// Phase shares over the requests at or beyond p99.
    pub phase_at_p99: PhaseBreakdown,
    /// Slowest retained exemplars for this schema (slowest first).
    pub exemplars: Vec<TailExemplar>,
}

/// Before/after-warming tail comparison.
#[derive(Debug, Clone, Copy, Default)]
pub struct WarmthTail {
    /// Requests in this slice.
    pub requests: usize,
    /// Exact p99 over the slice, us.
    pub p99_us: f64,
}

/// Outcome of one tail study run.
#[derive(Debug, Clone)]
pub struct TailStudy {
    /// Total requests replayed.
    pub requests: usize,
    /// Traces that fell off the ring (0 — the ring is sized to fit).
    pub trace_dropped: u64,
    /// Exemplars retained across all buckets.
    pub exemplar_count: usize,
    /// Per-schema tails, slowest p99 first.
    pub schemas: Vec<SchemaTail>,
    /// Requests served by autotuner-warmed plans.
    pub warmed: WarmthTail,
    /// Requests served by model-ranked (unwarmed) plans.
    pub unwarmed: WarmthTail,
    /// SLO view of the run (hit rate, burn rates).
    pub slo: SloSnapshot,
    /// Flame-style phase-profile tree from the service's ring.
    pub flame: String,
}

/// Exact nearest-rank quantile over sorted totals (ns), returned in us.
fn quantile_us(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return f64::NAN;
    }
    let rank = ((q * sorted_ns.len() as f64).ceil() as usize).clamp(1, sorted_ns.len());
    sorted_ns[rank - 1] as f64 * 1e-3
}

/// Phase shares over the traces with total latency >= `cutoff_ns`.
fn phase_at(traces: &[&RequestTrace], cutoff_ns: u64) -> PhaseBreakdown {
    let (mut q, mut p, mut e) = (0u64, 0u64, 0u64);
    for t in traces.iter().filter(|t| t.total_ns() >= cutoff_ns) {
        q += t.queue_wait_ns;
        p += t.plan_fetch_ns;
        e += t.execute_ns;
    }
    let total = (q + p + e) as f64;
    if total == 0.0 {
        return PhaseBreakdown::default();
    }
    PhaseBreakdown {
        queue_wait: q as f64 / total,
        plan_fetch: p as f64 / total,
        execute: e as f64 / total,
    }
}

fn warmth_tail(traces: &[RequestTrace], warmed: bool) -> WarmthTail {
    let mut totals: Vec<u64> = traces
        .iter()
        .filter(|t| t.warmed == warmed)
        .map(|t| t.total_ns())
        .collect();
    totals.sort_unstable();
    WarmthTail {
        requests: totals.len(),
        p99_us: quantile_us(&totals, 0.99),
    }
}

/// Build the skewed workload: `rounds` passes over a mix of hot rank-4
/// permutations of one tensor (repeated every round, so the autotuner
/// sees them as hot) plus a cold tail of one-off problems across
/// several shape classes.
pub fn workload(rounds: usize) -> Vec<TransposeRequest<f64>> {
    let hot_input = Arc::new(DenseTensor::<f64>::iota(Shape::new(&[6, 5, 4, 3]).unwrap()));
    let hot_perms = [[3, 1, 0, 2], [2, 3, 1, 0], [1, 0, 3, 2]];

    // Cold tail: distinct shape classes, one request each per round.
    let cold: Vec<TransposeRequest<f64>> = vec![
        TransposeRequest::new(
            Arc::new(DenseTensor::<f64>::iota(Shape::new(&[32, 32]).unwrap())),
            Permutation::new(&[1, 0]).unwrap(),
        ),
        TransposeRequest::new(
            Arc::new(DenseTensor::<f64>::iota(Shape::new(&[16, 16, 16]).unwrap())),
            Permutation::new(&[2, 1, 0]).unwrap(),
        ),
        TransposeRequest::new(
            Arc::new(DenseTensor::<f64>::iota(Shape::new(&[8, 8, 8, 8]).unwrap())),
            Permutation::new(&[2, 3, 0, 1]).unwrap(),
        ),
        TransposeRequest::new(
            Arc::new(DenseTensor::<f64>::iota(
                Shape::new(&[4, 4, 4, 4, 4]).unwrap(),
            )),
            Permutation::new(&[4, 3, 2, 1, 0]).unwrap(),
        ),
    ];

    let mut reqs: Vec<TransposeRequest<f64>> = Vec::new();
    for _ in 0..rounds {
        for p in &hot_perms {
            reqs.push(TransposeRequest::new(
                Arc::clone(&hot_input),
                Permutation::new(p).unwrap(),
            ));
        }
        reqs.extend(cold.iter().cloned());
    }
    let mut rng = StdRng::seed_from_u64(0x7A11_57D1);
    rng.shuffle(&mut reqs);
    reqs
}

/// Run the study: warm half the workload, autotune the hot keys, replay
/// the other half, then attribute the tail from the full trace ring.
pub fn run(rounds: usize) -> TailStudy {
    let rounds = rounds.max(2);
    let reqs = workload(rounds);
    let cfg = RuntimeConfig {
        // The ring must hold the whole run for exact quantiles.
        trace_capacity: reqs.len().next_power_of_two(),
        autotune: AutotuneConfig {
            enabled: true,
            hot_threshold: 2,
            topk: 4,
            budget_per_key: 8,
            threads: 1,
            poll_interval_ms: 1,
            ..AutotuneConfig::default()
        },
        ..RuntimeConfig::default()
    };
    let svc = TransposeService::<f64>::with_config(Transposer::new_k40c(), cfg);

    // First half establishes the pre-warming tail and marks keys hot...
    let mid = reqs.len() / 2;
    for r in svc.submit_batch(&reqs[..mid]) {
        r.expect("tail study request failed");
    }
    // ...one synchronous autotune pass warms them...
    svc.autotune_once();
    // ...and the second half runs against warmed plans where available.
    for r in svc.submit_batch(&reqs[mid..]) {
        r.expect("tail study request failed");
    }

    let traces = svc.recent_traces(reqs.len());
    assert_eq!(traces.len(), reqs.len(), "ring sized to hold the run");

    // Group by schema and compute exact tails.
    let mut by_schema: Vec<(String, Vec<&RequestTrace>)> = Vec::new();
    for t in &traces {
        let key = if t.schema.is_empty() {
            "unplanned".to_string()
        } else {
            t.schema.clone()
        };
        match by_schema.iter_mut().find(|(s, _)| *s == key) {
            Some((_, v)) => v.push(t),
            None => by_schema.push((key, vec![t])),
        }
    }
    let exemplars = svc.exemplars();
    let mut schemas: Vec<SchemaTail> = by_schema
        .into_iter()
        .map(|(schema, ts)| {
            let mut totals: Vec<u64> = ts.iter().map(|t| t.total_ns()).collect();
            totals.sort_unstable();
            let p99_us = quantile_us(&totals, 0.99);
            let exemplars: Vec<TailExemplar> = exemplars
                .iter()
                .filter(|((s, _), _)| *s == schema)
                .flat_map(|(_, entries)| entries.iter())
                .map(|e| TailExemplar {
                    id: e.trace.id,
                    shape_class: e.trace.shape_class.clone(),
                    total_us: e.trace.total_ns() as f64 * 1e-3,
                    queue_wait_us: e.trace.queue_wait_ns as f64 * 1e-3,
                    plan_fetch_us: e.trace.plan_fetch_ns as f64 * 1e-3,
                    execute_us: e.trace.execute_ns as f64 * 1e-3,
                    warmed: e.trace.warmed,
                    cache_hit: e.trace.cache_hit.unwrap_or(false),
                    decision_candidates: e.decision.as_ref().map_or(0, |d| d.candidates.len()),
                })
                .collect();
            let mut exemplars = exemplars;
            exemplars.sort_by(|a, b| b.total_us.total_cmp(&a.total_us));
            exemplars.truncate(3);
            SchemaTail {
                requests: ts.len(),
                p50_us: quantile_us(&totals, 0.50),
                p95_us: quantile_us(&totals, 0.95),
                p99_us,
                phase_at_p99: phase_at(&ts, (p99_us * 1e3) as u64),
                exemplars,
                schema,
            }
        })
        .collect();
    schemas.sort_by(|a, b| b.p99_us.total_cmp(&a.p99_us));

    TailStudy {
        requests: reqs.len(),
        trace_dropped: svc.trace_dropped(),
        exemplar_count: svc.exemplar_store().total_retained(),
        warmed: warmth_tail(&traces, true),
        unwarmed: warmth_tail(&traces, false),
        slo: svc.slo_snapshot(),
        flame: svc.render_profile(),
        schemas,
    }
}

impl TailStudy {
    /// Render the human-readable report: per-schema tail table, the
    /// warming comparison, the SLO line, and the flame tree.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("== tail-latency attribution ==\n");
        s.push_str(&format!(
            "workload: {} requests, {} exemplars retained, {} traces dropped\n",
            self.requests, self.exemplar_count, self.trace_dropped
        ));
        s.push_str(&format!(
            "{:<24} {:>6} {:>10} {:>10} {:>10}  {}\n",
            "schema", "n", "p50 us", "p95 us", "p99 us", "dominant @p99"
        ));
        for sc in &self.schemas {
            s.push_str(&format!(
                "{:<24} {:>6} {:>10.1} {:>10.1} {:>10.1}  {}\n",
                sc.schema,
                sc.requests,
                sc.p50_us,
                sc.p95_us,
                sc.p99_us,
                sc.phase_at_p99.dominant()
            ));
        }
        s.push_str(&format!(
            "warmed plans: {} requests p99 {:.1} us | unwarmed: {} requests p99 {:.1} us\n",
            self.warmed.requests, self.warmed.p99_us, self.unwarmed.requests, self.unwarmed.p99_us
        ));
        s.push_str(&format!(
            "slo: target {:.0} us goal {:.2} hit-ratio {:.4} burn short/long {:.2}/{:.2}\n",
            self.slo.target_us,
            self.slo.goal,
            self.slo.hit_ratio,
            self.slo.burn_rate_short,
            self.slo.burn_rate_long
        ));
        s.push('\n');
        s.push_str(&self.flame);
        s
    }

    /// Serialize as the `BENCH_tail.json` document.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str("  \"study\": \"tail\",\n");
        s.push_str(&format!("  \"requests\": {},\n", self.requests));
        s.push_str(&format!("  \"trace_dropped\": {},\n", self.trace_dropped));
        s.push_str(&format!("  \"exemplar_count\": {},\n", self.exemplar_count));
        s.push_str(&format!(
            "  \"warmed\": {{\"requests\": {}, \"p99_us\": {}}},\n",
            self.warmed.requests,
            json_f64(self.warmed.p99_us)
        ));
        s.push_str(&format!(
            "  \"unwarmed\": {{\"requests\": {}, \"p99_us\": {}}},\n",
            self.unwarmed.requests,
            json_f64(self.unwarmed.p99_us)
        ));
        s.push_str(&format!(
            "  \"slo\": {{\"target_us\": {}, \"goal\": {}, \"total\": {}, \"violations\": {}, \
             \"hit_ratio\": {}, \"burn_rate_short\": {}, \"burn_rate_long\": {}}},\n",
            json_f64(self.slo.target_us),
            json_f64(self.slo.goal),
            self.slo.total,
            self.slo.violations,
            json_f64(self.slo.hit_ratio),
            json_f64(self.slo.burn_rate_short),
            json_f64(self.slo.burn_rate_long)
        ));
        s.push_str("  \"schemas\": [\n");
        for (i, sc) in self.schemas.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"schema\": \"{}\", \"requests\": {}, \"p50_us\": {}, \"p95_us\": {}, \
                 \"p99_us\": {}, \"dominant_phase_at_p99\": \"{}\", \
                 \"phase_at_p99\": {{\"queue_wait\": {}, \"plan_fetch\": {}, \"execute\": {}}}, \
                 \"exemplars\": [",
                sc.schema,
                sc.requests,
                json_f64(sc.p50_us),
                json_f64(sc.p95_us),
                json_f64(sc.p99_us),
                sc.phase_at_p99.dominant(),
                json_f64(sc.phase_at_p99.queue_wait),
                json_f64(sc.phase_at_p99.plan_fetch),
                json_f64(sc.phase_at_p99.execute),
            ));
            for (j, e) in sc.exemplars.iter().enumerate() {
                s.push_str(&format!(
                    "{}{{\"id\": {}, \"shape_class\": \"{}\", \"total_us\": {}, \
                     \"queue_wait_us\": {}, \"plan_fetch_us\": {}, \"execute_us\": {}, \
                     \"warmed\": {}, \"cache_hit\": {}, \"decision_candidates\": {}}}",
                    if j == 0 { "" } else { ", " },
                    e.id,
                    e.shape_class,
                    json_f64(e.total_us),
                    json_f64(e.queue_wait_us),
                    json_f64(e.plan_fetch_us),
                    json_f64(e.execute_us),
                    e.warmed,
                    e.cache_hit,
                    e.decision_candidates
                ));
            }
            s.push_str(&format!(
                "]}}{}\n",
                if i + 1 == self.schemas.len() { "" } else { "," }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_are_exact_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(quantile_us(&sorted, 0.50), 0.050);
        assert_eq!(quantile_us(&sorted, 0.99), 0.099);
        assert!(quantile_us(&[], 0.5).is_nan());
    }

    #[test]
    fn tail_study_attributes_every_schema() {
        let study = run(4);
        assert_eq!(study.requests, 28);
        assert_eq!(study.trace_dropped, 0, "ring sized to fit");
        assert!(study.exemplar_count > 0);
        assert!(!study.schemas.is_empty());
        for sc in &study.schemas {
            assert!(sc.requests > 0);
            assert!(sc.p50_us <= sc.p95_us && sc.p95_us <= sc.p99_us);
            assert!(
                !sc.exemplars.is_empty(),
                "schema {} reported without an exemplar",
                sc.schema
            );
            let ph = sc.phase_at_p99;
            let sum = ph.queue_wait + ph.plan_fetch + ph.execute;
            assert!((sum - 1.0).abs() < 1e-9, "{} shares sum {sum}", sc.schema);
            assert!(!ph.dominant().is_empty());
        }
        // The autotune pass warmed the hot keys, so the second half of
        // the run carries warmed requests.
        assert!(study.warmed.requests > 0, "no warmed requests observed");
        assert_eq!(
            study.warmed.requests + study.unwarmed.requests,
            study.requests
        );
        assert_eq!(study.slo.total as usize, study.requests);
        assert!(study.flame.contains("execute"));
    }

    #[test]
    fn render_and_json_carry_the_attribution() {
        let study = run(2);
        let text = study.render();
        assert!(text.contains("tail-latency attribution"));
        assert!(text.contains("dominant @p99"));
        assert!(text.contains("slo:"));
        let json = study.to_json();
        assert!(json.contains("\"study\": \"tail\""));
        assert!(json.contains("\"dominant_phase_at_p99\""));
        assert!(json.contains("\"phase_at_p99\""));
        assert!(json.contains("\"exemplars\": [{"));
        assert!(json.contains("\"burn_rate_short\""));
    }
}
