//! Implementation of the `ttlg` command-line tool. The logic lives here
//! (testable); `main.rs` is a thin shell.
//!
//! ```text
//! ttlg plan    16,16,16,16,16,16 4,1,2,5,3,0
//! ttlg run     32,32,32 2,1,0 --verify
//! ttlg predict 27,27,27,27,27 4,1,2,0,3
//! ttlg compare 16,16,16,16,16,16 4,1,2,5,3,0
//! ttlg contract "kil,ljk->ij" 8,24,12 12,20,8
//! ttlg devices
//! ```

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;
use ttlg::{TransposeOptions, Transposer};
use ttlg_baselines::cutt::{CuttLibrary, CuttMode};
use ttlg_baselines::naive::NaiveTranspose;
use ttlg_baselines::ttc::TtcGenerator;
use ttlg_contract::{ContractionEngine, ContractionSpec};
use ttlg_gpu_sim::DeviceConfig;
use ttlg_runtime::{RuntimeConfig, TransposeRequest, TransposeService};
use ttlg_tensor::{reference, DenseTensor, Permutation, Shape};

/// CLI errors (also carry usage problems).
#[derive(Debug)]
pub enum CliError {
    /// Malformed arguments, with an explanation.
    Usage(String),
    /// Anything the libraries rejected.
    Failed(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}\n\n{USAGE}"),
            CliError::Failed(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CliError {}

/// Top-level usage text.
pub const USAGE: &str = "\
ttlg — tensor transposition on the simulated K40c

USAGE:
  ttlg plan     <extents> <perm> [--no-sweep]   show the planner's choice
  ttlg explain  <extents> <perm> [--no-sweep]   full decision trace: every
                                                candidate slice size, its
                                                predicted time, and why the
                                                rest were rejected
  ttlg run      <extents> <perm> [--verify]     execute and report bandwidth
  ttlg predict  <extents> <perm>                queryable-model estimate
  ttlg compare  <extents> <perm>                TTLG vs cuTT vs TTC vs naive
  ttlg profile  <extents> <perm>                nvprof-style kernel counters
  ttlg profile  --tail [--rounds=N]             replay the skewed tail workload
                                                and render the trace ring as a
                                                flame-style phase profile with
                                                the slowest retained exemplars
  ttlg contract <spec> <extentsA> <extentsB>    TTGT contraction (f64)
  ttlg trace    <extents> <perm>                serve one request through a
                                                loopback gateway and render
                                                its span tree as a flame-style
                                                trace (network/queue/plan/
                                                execute and children) with the
                                                planner decision trace
  ttlg bench-serve [--perms=N] [--rounds=N] [--extents=E]
                   [--metrics-format=text|json|prom] [--json-out=PATH]
                                                replay a mixed-permutation
                                                workload through ttlg-runtime;
                                                text mode also writes a
                                                BENCH_serve.json artifact
  ttlg bench-serve --autotune [--perms=N] [--rounds=N] [--json-out=PATH]
                                                compare model-only vs
                                                measure-mode autotuned serving
                                                and write BENCH_autotune.json
  ttlg bench-serve --tail [--rounds=N] [--json-out=PATH]
                                                tail-latency attribution study:
                                                per-schema p50/p95/p99, the
                                                dominant phase at p99, slowest
                                                exemplars, SLO burn rates;
                                                writes BENCH_tail.json
  ttlg bench-serve --trace [--perms=N] [--rounds=N] [--json-out=PATH]
                                                tracing/alerting study: serve a
                                                skewed model over loopback
                                                HTTP, watch the prediction-
                                                drift alert fire and resolve
                                                after autotune, and account for
                                                trace sampling/drops; writes
                                                BENCH_trace.json
  ttlg bench-serve --cpu [--seconds=F] [--json-out=PATH]
                                                CPU-backend study: real
                                                wall-clock GB/s of the tiled
                                                multithreaded CPU executor vs
                                                the naive odometer across the
                                                schema taxonomy, with thread
                                                scaling and per-backend
                                                prediction accuracy; writes
                                                BENCH_cpu.json
  ttlg bench-serve --gateway [--seconds=F] [--overload=F] [--json-out=PATH]
                                                loopback gateway study: drive a
                                                real ttlg-serve endpoint past
                                                its per-tenant quotas, report
                                                fairness, shed rate and
                                                per-class p50/p95/p99; writes
                                                BENCH_gateway.json
  ttlg bench-serve --async [--seconds=F] [--overload=F] [--json-out=PATH]
                                                async-submission study: hammer
                                                submit_async with a duplicate-
                                                heavy overload workload, with
                                                in-flight coalescing off vs on;
                                                reports throughput, executions
                                                per request and p99 both ways;
                                                writes BENCH_async.json
  ttlg serve [--addr=H:P] [--workers=N] [--queue-capacity=N]
             [--interactive-weight=N] [--rate=F] [--burst=F]
             [--max-connections=N] [--port-file=PATH] [--check]
             [--history-file=PATH]
                                                serve transposes over HTTP:
                                                POST /v1/transpose,
                                                GET /v1/explain, /metrics,
                                                /v1/query_range, /healthz.
                                                Tenancy via the x-ttlg-tenant
                                                header, priority via
                                                x-ttlg-priority
                                                (interactive|batch); overload
                                                answers 429 + Retry-After.
                                                --history-file persists the
                                                metrics history across
                                                restarts
  ttlg top [--addr=H:P] [--once] [--interval=F] [--window=N]
                                                live dashboard over a running
                                                ttlg serve: throughput, exec
                                                p99, shed/coalesced rates and
                                                firing alerts, rendered as
                                                sparklines polled from
                                                GET /v1/query_range
  ttlg devices                                  list device presets

  <extents>  comma-separated, dim 0 fastest-varying (e.g. 16,16,16)
  <perm>     comma-separated, out dim i = in dim perm[i] (e.g. 2,1,0)";

fn parse_usize_list(s: &str, what: &str) -> Result<Vec<usize>, CliError> {
    s.split(',')
        .map(|x| x.trim().parse::<usize>())
        .collect::<Result<Vec<_>, _>>()
        .map_err(|_| CliError::Usage(format!("could not parse {what}: {s:?}")))
}

fn parse_problem(extents: &str, perm: &str) -> Result<(Shape, Permutation), CliError> {
    let shape = Shape::new(&parse_usize_list(extents, "extents")?)
        .map_err(|e| CliError::Usage(e.to_string()))?;
    let perm = Permutation::new(&parse_usize_list(perm, "permutation")?)
        .map_err(|e| CliError::Usage(e.to_string()))?;
    if perm.rank() != shape.rank() {
        return Err(CliError::Usage(format!(
            "rank mismatch: {} extents vs {} permutation entries",
            shape.rank(),
            perm.rank()
        )));
    }
    Ok((shape, perm))
}

/// Dispatch a full argument vector (without the program name). Returns
/// the text to print.
pub fn run_cli(args: &[String]) -> Result<String, CliError> {
    let mut it = args.iter();
    let cmd = it
        .next()
        .ok_or_else(|| CliError::Usage("missing command".into()))?;
    let rest: Vec<&String> = it.collect();
    match cmd.as_str() {
        "plan" => cmd_plan(&rest),
        "explain" => cmd_explain(&rest),
        "run" => cmd_run(&rest),
        "predict" => cmd_predict(&rest),
        "compare" => cmd_compare(&rest),
        "profile" => cmd_profile(&rest),
        "contract" => cmd_contract(&rest),
        "trace" => cmd_trace(&rest),
        "bench-serve" => cmd_bench_serve(&rest),
        "serve" => cmd_serve(&rest),
        "top" => cmd_top(&rest),
        "devices" => Ok(cmd_devices()),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(CliError::Usage(format!("unknown command {other:?}"))),
    }
}

fn two_positional<'a>(rest: &'a [&String], cmd: &str) -> Result<(&'a str, &'a str), CliError> {
    let pos: Vec<&&String> = rest.iter().filter(|a| !a.starts_with("--")).collect();
    if pos.len() != 2 {
        return Err(CliError::Usage(format!("{cmd} needs <extents> <perm>")));
    }
    Ok((pos[0].as_str(), pos[1].as_str()))
}

fn cmd_plan(rest: &[&String]) -> Result<String, CliError> {
    let (e, p) = two_positional(rest, "plan")?;
    let (shape, perm) = parse_problem(e, p)?;
    let sweep = !rest.iter().any(|a| a.as_str() == "--no-sweep");
    let t = Transposer::new_k40c();
    let opts = TransposeOptions {
        model_sweep: sweep,
        ..Default::default()
    };
    let plan = t
        .plan::<f64>(&shape, &perm, &opts)
        .map_err(|e| CliError::Failed(e.to_string()))?;
    let launch = plan.launch();
    let mut s = String::new();
    writeln!(s, "problem    : {shape} perm {perm}").unwrap();
    writeln!(s, "fused rank : {}", plan.problem().rank()).unwrap();
    writeln!(s, "schema     : {}", plan.schema()).unwrap();
    writeln!(
        s,
        "launch     : {} blocks x {} threads, {} B smem",
        launch.grid_blocks, launch.threads_per_block, launch.smem_bytes_per_block
    )
    .unwrap();
    writeln!(s, "candidates : {}", plan.candidates_evaluated()).unwrap();
    writeln!(
        s,
        "predicted  : {:.2} us kernel, {:.2} us plan",
        plan.predicted_ns() / 1e3,
        plan.plan_time_ns() / 1e3
    )
    .unwrap();
    Ok(s)
}

fn cmd_explain(rest: &[&String]) -> Result<String, CliError> {
    let (e, p) = two_positional(rest, "explain")?;
    let (shape, perm) = parse_problem(e, p)?;
    let sweep = !rest.iter().any(|a| a.as_str() == "--no-sweep");
    let t = Transposer::new_k40c();
    let opts = TransposeOptions {
        model_sweep: sweep,
        ..Default::default()
    };
    let (_, trace) = t
        .plan_traced::<f64>(&shape, &perm, &opts)
        .map_err(|e| CliError::Failed(e.to_string()))?;
    Ok(trace.render())
}

fn cmd_run(rest: &[&String]) -> Result<String, CliError> {
    let (e, p) = two_positional(rest, "run")?;
    let (shape, perm) = parse_problem(e, p)?;
    let verify = rest.iter().any(|a| a.as_str() == "--verify");
    let t = Transposer::new_k40c();
    let input: DenseTensor<f64> = DenseTensor::iota(shape.clone());
    let (out, report) = t
        .transpose(&input, &perm)
        .map_err(|e| CliError::Failed(e.to_string()))?;
    let mut s = String::new();
    writeln!(s, "schema    : {}", report.schema).unwrap();
    writeln!(s, "kernel    : {:.2} us", report.kernel_time_ns / 1e3).unwrap();
    writeln!(
        s,
        "bandwidth : {:.1} GB/s (paper metric 2*V*8/t)",
        report.bandwidth_gbps
    )
    .unwrap();
    writeln!(
        s,
        "DRAM tx   : {} loads, {} stores ({} B)",
        report.stats.dram_load_tx,
        report.stats.dram_store_tx,
        report.stats.dram_bytes()
    )
    .unwrap();
    if verify {
        let expect = reference::transpose_reference(&input, &perm)
            .map_err(|e| CliError::Failed(e.to_string()))?;
        if out.data() == expect.data() {
            writeln!(s, "verify    : OK ({} elements)", out.volume()).unwrap();
        } else {
            return Err(CliError::Failed("verification FAILED".into()));
        }
    }
    Ok(s)
}

fn cmd_predict(rest: &[&String]) -> Result<String, CliError> {
    let (e, p) = two_positional(rest, "predict")?;
    let (shape, perm) = parse_problem(e, p)?;
    let t = Transposer::new_k40c();
    let ns = t
        .predict_transpose_ns::<f64>(&shape, &perm)
        .map_err(|e| CliError::Failed(e.to_string()))?;
    let bw = 2.0 * shape.volume() as f64 * 8.0 / ns;
    Ok(format!(
        "predicted: {:.2} us (~{:.1} GB/s) for {shape} perm {perm}\n",
        ns / 1e3,
        bw
    ))
}

fn cmd_compare(rest: &[&String]) -> Result<String, CliError> {
    let (e, p) = two_positional(rest, "compare")?;
    let (shape, perm) = parse_problem(e, p)?;
    let vol = shape.volume();
    let bw = |ns: f64| 2.0 * vol as f64 * 8.0 / ns;
    let device = DeviceConfig::k40c();
    let mut s = String::new();
    writeln!(
        s,
        "{:<16} {:>12} {:>12} {:>14}",
        "system", "kernel us", "GB/s", "plan us"
    )
    .unwrap();

    let t = Transposer::new_k40c();
    let plan = t
        .plan::<f64>(&shape, &perm, &TransposeOptions::default())
        .map_err(|e| CliError::Failed(e.to_string()))?;
    let r = t
        .time_plan(&plan)
        .map_err(|e| CliError::Failed(e.to_string()))?;
    writeln!(
        s,
        "{:<16} {:>12.2} {:>12.1} {:>14.2}",
        format!("TTLG ({})", r.schema),
        r.kernel_time_ns / 1e3,
        bw(r.kernel_time_ns),
        r.plan_time_ns / 1e3
    )
    .unwrap();

    let cutt = CuttLibrary::new(device.clone());
    for (label, mode) in [
        ("cuTT-heuristic", CuttMode::Heuristic),
        ("cuTT-measure", CuttMode::Measure),
    ] {
        let plan = cutt.plan::<f64>(&shape, &perm, mode);
        let r = cutt.time_plan(&plan);
        writeln!(
            s,
            "{:<16} {:>12.2} {:>12.1} {:>14.2}",
            label,
            r.kernel_time_ns / 1e3,
            bw(r.kernel_time_ns),
            r.plan_time_ns / 1e3
        )
        .unwrap();
    }
    let ttc = TtcGenerator::new(device.clone());
    let exe = ttc.generate::<f64>(&shape, &perm);
    let r = ttc.time(&exe);
    writeln!(
        s,
        "{:<16} {:>12.2} {:>12.1} {:>14}",
        "TTC (offline)",
        r.kernel_time_ns / 1e3,
        bw(r.kernel_time_ns),
        "8s codegen"
    )
    .unwrap();
    let nv = NaiveTranspose::new(device);
    let r = nv.time::<f64>(&shape, &perm);
    writeln!(
        s,
        "{:<16} {:>12.2} {:>12.1} {:>14.2}",
        "naive",
        r.kernel_time_ns / 1e3,
        bw(r.kernel_time_ns),
        0.0
    )
    .unwrap();
    Ok(s)
}

fn cmd_profile(rest: &[&String]) -> Result<String, CliError> {
    if rest.iter().any(|a| a.as_str() == "--tail") {
        return cmd_profile_tail(rest);
    }
    let (e, p) = two_positional(rest, "profile")?;
    let (shape, perm) = parse_problem(e, p)?;
    let t = Transposer::new_k40c();
    let plan = t
        .plan::<f64>(&shape, &perm, &TransposeOptions::default())
        .map_err(|e| CliError::Failed(e.to_string()))?;
    let prof = t
        .profile_plan(&plan)
        .map_err(|e| CliError::Failed(e.to_string()))?;
    Ok(prof.render())
}

/// `profile --tail`: replay the tail-study workload through a service
/// whose trace ring holds the whole run, then render the ring as a
/// flame-style phase profile plus the slowest retained exemplars.
fn cmd_profile_tail(rest: &[&String]) -> Result<String, CliError> {
    let mut rounds = 4usize;
    for a in rest {
        if a.as_str() == "--tail" {
            continue;
        } else if let Some(v) = a.strip_prefix("--rounds=") {
            rounds = v
                .parse()
                .map_err(|_| CliError::Usage(format!("bad --rounds value {v:?}")))?;
        } else {
            return Err(CliError::Usage(format!(
                "profile --tail does not understand {a:?}"
            )));
        }
    }
    if rounds == 0 {
        return Err(CliError::Usage("--rounds must be positive".into()));
    }
    let reqs = ttlg_bench::tail_study::workload(rounds);
    let service = TransposeService::<f64>::with_config(
        Transposer::new_k40c(),
        RuntimeConfig {
            trace_capacity: reqs.len().next_power_of_two(),
            ..RuntimeConfig::default()
        },
    );
    for r in service.submit_batch(&reqs) {
        r.map_err(|e| CliError::Failed(e.to_string()))?;
    }
    let mut s = String::new();
    writeln!(
        s,
        "{} requests replayed; phase profile of the trace ring:\n",
        reqs.len()
    )
    .unwrap();
    s.push_str(&service.render_profile());
    writeln!(s, "\nslowest retained exemplars:").unwrap();
    for ((schema, class), entries) in service.exemplars().into_iter().take(5) {
        if let Some(e) = entries.first() {
            writeln!(s, "  [{schema} {class}] {}", e.trace.render()).unwrap();
        }
    }
    Ok(s)
}

fn cmd_contract(rest: &[&String]) -> Result<String, CliError> {
    let pos: Vec<&&String> = rest.iter().filter(|a| !a.starts_with("--")).collect();
    if pos.len() != 3 {
        return Err(CliError::Usage(
            "contract needs <spec> <extentsA> <extentsB>".into(),
        ));
    }
    let spec = ContractionSpec::parse(pos[0]).map_err(|e| CliError::Usage(e.to_string()))?;
    let sa = Shape::new(&parse_usize_list(pos[1], "extentsA")?)
        .map_err(|e| CliError::Usage(e.to_string()))?;
    let sb = Shape::new(&parse_usize_list(pos[2], "extentsB")?)
        .map_err(|e| CliError::Usage(e.to_string()))?;
    let engine = ContractionEngine::new_k40c();
    let plan = engine
        .plan(&spec, &sa, &sb)
        .map_err(|e| CliError::Failed(e.to_string()))?;
    let a: DenseTensor<f64> = DenseTensor::iota(sa);
    let b: DenseTensor<f64> = DenseTensor::iota(sb);
    let (c, report) = engine
        .execute(&plan, &a, &b)
        .map_err(|e| CliError::Failed(e.to_string()))?;
    let mut s = String::new();
    writeln!(s, "spec       : {}", pos[0]).unwrap();
    writeln!(
        s,
        "GEMM       : m={} n={} k={}",
        report.gemm.0, report.gemm.1, report.gemm.2
    )
    .unwrap();
    writeln!(
        s,
        "layout     : k-order {:?}{}",
        plan.layout.k_order,
        if plan.layout.swapped {
            " (swapped)"
        } else {
            ""
        }
    )
    .unwrap();
    writeln!(s, "candidates : {}", report.candidates_priced).unwrap();
    for (label, r) in &report.transposes {
        writeln!(
            s,
            "transpose {label}: {} at {:.1} GB/s",
            r.schema, r.bandwidth_gbps
        )
        .unwrap();
    }
    writeln!(s, "output     : {}", c.shape()).unwrap();
    Ok(s)
}

/// The first `take` permutations of `0..rank` in lexicographic order.
fn perms_lex(rank: usize, take: usize) -> Vec<Permutation> {
    fn rec(
        rank: usize,
        take: usize,
        cur: &mut Vec<usize>,
        used: &mut [bool],
        out: &mut Vec<Permutation>,
    ) {
        if out.len() == take {
            return;
        }
        if cur.len() == rank {
            out.push(Permutation::new(cur).expect("valid by construction"));
            return;
        }
        for i in 0..rank {
            if !used[i] {
                used[i] = true;
                cur.push(i);
                rec(rank, take, cur, used, out);
                cur.pop();
                used[i] = false;
            }
        }
    }
    let mut out = Vec::new();
    rec(
        rank,
        take,
        &mut Vec::new(),
        &mut vec![false; rank],
        &mut out,
    );
    out
}

/// Output format of `bench-serve`'s metrics block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricsFormat {
    Text,
    Json,
    Prom,
}

/// `ttlg serve`: run the network gateway until killed. With `--check`,
/// bind, report, and exit immediately (used by tests; CI keeps the
/// long-running form and kills it when done).
fn cmd_serve(rest: &[&String]) -> Result<String, CliError> {
    use ttlg_serve::{Gateway, GatewayConfig};
    let mut addr = "127.0.0.1:8424".to_string();
    let mut cfg = GatewayConfig::default();
    let mut port_file: Option<String> = None;
    let mut history_file: Option<String> = None;
    let mut check = false;
    for a in rest {
        if let Some(v) = a.strip_prefix("--addr=") {
            addr = v.to_string();
        } else if let Some(v) = a.strip_prefix("--workers=") {
            cfg.workers = v
                .parse()
                .map_err(|_| CliError::Usage(format!("bad --workers value {v:?}")))?;
        } else if let Some(v) = a.strip_prefix("--queue-capacity=") {
            cfg.queue_capacity = v
                .parse()
                .map_err(|_| CliError::Usage(format!("bad --queue-capacity value {v:?}")))?;
        } else if let Some(v) = a.strip_prefix("--interactive-weight=") {
            cfg.interactive_weight = v
                .parse()
                .map_err(|_| CliError::Usage(format!("bad --interactive-weight value {v:?}")))?;
        } else if let Some(v) = a.strip_prefix("--rate=") {
            cfg.quota.rate_per_sec = v
                .parse()
                .map_err(|_| CliError::Usage(format!("bad --rate value {v:?}")))?;
        } else if let Some(v) = a.strip_prefix("--burst=") {
            cfg.quota.burst = v
                .parse()
                .map_err(|_| CliError::Usage(format!("bad --burst value {v:?}")))?;
        } else if let Some(v) = a.strip_prefix("--max-connections=") {
            cfg.max_connections = v
                .parse()
                .map_err(|_| CliError::Usage(format!("bad --max-connections value {v:?}")))?;
        } else if let Some(v) = a.strip_prefix("--port-file=") {
            port_file = Some(v.to_string());
        } else if let Some(v) = a.strip_prefix("--history-file=") {
            history_file = Some(v.to_string());
        } else if a.as_str() == "--check" {
            check = true;
        } else {
            return Err(CliError::Usage(format!("serve does not understand {a:?}")));
        }
    }
    if cfg.workers == 0 || cfg.queue_capacity == 0 {
        return Err(CliError::Usage(
            "--workers and --queue-capacity must be positive".into(),
        ));
    }
    let service = Arc::new(TransposeService::new_k40c());
    let mut history_note = String::new();
    if let Some(path) = &history_file {
        let restored = service
            .set_history_file(path.clone())
            .map_err(CliError::Failed)?;
        history_note = format!("history file {path}: {restored} series restored");
    }
    let gw = Gateway::start(service, cfg);
    let mut server = ttlg_serve::server::spawn(gw, &addr)
        .map_err(|e| CliError::Failed(format!("could not bind {addr}: {e}")))?;
    let bound = server.addr();
    if let Some(path) = &port_file {
        std::fs::write(path, format!("{}\n", bound.port()))
            .map_err(|e| CliError::Failed(format!("could not write {path}: {e}")))?;
    }
    if check {
        server.stop();
        let mut out = format!("ttlg-serve bound {bound}, config OK\n");
        if !history_note.is_empty() {
            out.push_str(&history_note);
            out.push('\n');
        }
        return Ok(out);
    }
    // The long-running path: announce on stdout (flushed immediately so
    // supervisors can watch for it) and serve until the process dies.
    println!("ttlg-serve listening on http://{bound}");
    println!("  POST /v1/transpose   GET /v1/explain   GET /v1/query_range   GET /metrics   GET /healthz");
    if !history_note.is_empty() {
        println!("  {history_note}");
    }
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

/// Render values as a unicode sparkline, scaled to the finite min/max.
fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return String::new();
    }
    let min = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let max = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    finite
        .iter()
        .map(|v| {
            let idx = if max > min {
                ((v - min) / (max - min) * 7.0).round() as usize
            } else {
                0
            };
            BARS[idx.min(7)]
        })
        .collect()
}

/// One dashboard frame: poll `/v1/query_range` for each row and
/// `/v1/alerts` for the footer, and render the whole thing as text.
fn top_frame(addr: std::net::SocketAddr, window_s: u64) -> Result<String, CliError> {
    use ttlg_serve::client::HttpClient;
    let mut client = HttpClient::connect(addr).map_err(|e| {
        CliError::Failed(format!(
            "could not connect to {addr}: {e} (is `ttlg serve` running?)"
        ))
    })?;
    // No spaces inside the expressions so the paths need no encoding.
    let rows = [
        ("throughput", "sum(rate(ttlg_requests_total))", "req/s"),
        (
            "exec p99",
            "quantile_over_time(0.99,ttlg_exec_latency_us)",
            "us",
        ),
        ("shed rate", "sum(rate(ttlg_gateway_shed_total))", "req/s"),
        (
            "coalesced",
            "sum(rate(ttlg_coalesced_requests_total))",
            "req/s",
        ),
        ("uptime", "max_over_time(ttlg_uptime_seconds)", "s"),
    ];
    let mut s = String::new();
    writeln!(s, "ttlg top — {addr} — last {window_s}s").unwrap();
    for (label, query, unit) in rows {
        let path = format!("/v1/query_range?series={query}&window={window_s}s");
        let resp = client
            .get(&path)
            .map_err(|e| CliError::Failed(format!("query failed: {e}")))?;
        if resp.status != 200 {
            writeln!(s, "  {label:<11} ! {}", resp.body_text().trim()).unwrap();
            continue;
        }
        let doc = ttlg_serve::json::parse(&resp.body)
            .map_err(|e| CliError::Failed(format!("bad query_range body: {e}")))?;
        let values: Vec<f64> = match doc.get("series") {
            Some(ttlg_serve::json::Json::Arr(series)) if !series.is_empty() => {
                match series[0].get("points") {
                    Some(ttlg_serve::json::Json::Arr(pts)) => pts
                        .iter()
                        .filter_map(|p| match p {
                            ttlg_serve::json::Json::Arr(tv) if tv.len() == 2 => tv[1].as_f64(),
                            _ => None,
                        })
                        .collect(),
                    _ => Vec::new(),
                }
            }
            _ => Vec::new(),
        };
        let latest = values.iter().rev().copied().find(|v| v.is_finite());
        // Keep the frame narrow: the most recent 40 points suffice.
        let tail = &values[values.len().saturating_sub(40)..];
        match latest {
            Some(v) => {
                writeln!(s, "  {label:<11} {v:>10.2} {unit:<5} {}", sparkline(tail)).unwrap()
            }
            None => writeln!(s, "  {label:<11} {:>10} {unit:<5}", "-").unwrap(),
        }
    }
    let resp = client
        .get("/v1/alerts")
        .map_err(|e| CliError::Failed(format!("alerts fetch failed: {e}")))?;
    let mut firing: Vec<String> = Vec::new();
    let mut pending = 0usize;
    if resp.status == 200 {
        if let Ok(doc) = ttlg_serve::json::parse(&resp.body) {
            if let Some(ttlg_serve::json::Json::Arr(rules)) = doc.get("rules") {
                for r in rules {
                    match r.get("state").and_then(|v| v.as_str()) {
                        Some("firing") => {
                            if let Some(name) = r.get("rule").and_then(|v| v.as_str()) {
                                firing.push(name.to_string());
                            }
                        }
                        Some("pending") => pending += 1,
                        _ => {}
                    }
                }
            }
        }
    }
    if firing.is_empty() {
        writeln!(s, "  alerts      none firing ({pending} pending)").unwrap();
    } else {
        writeln!(s, "  alerts      FIRING: {}", firing.join(", ")).unwrap();
    }
    Ok(s)
}

/// `ttlg top`: live dashboard over a running `ttlg serve`, polling its
/// `/v1/query_range` endpoint. `--once` renders a single frame and
/// returns (used by tests and CI); the default loops until killed.
fn cmd_top(rest: &[&String]) -> Result<String, CliError> {
    let mut addr = "127.0.0.1:8424".to_string();
    let mut once = false;
    let mut interval = 2.0f64;
    let mut window_s = 60u64;
    for a in rest {
        if let Some(v) = a.strip_prefix("--addr=") {
            addr = v.to_string();
        } else if a.as_str() == "--once" {
            once = true;
        } else if let Some(v) = a.strip_prefix("--interval=") {
            interval = v
                .parse()
                .map_err(|_| CliError::Usage(format!("bad --interval value {v:?}")))?;
        } else if let Some(v) = a.strip_prefix("--window=") {
            window_s = v
                .parse()
                .map_err(|_| CliError::Usage(format!("bad --window value {v:?}")))?;
        } else {
            return Err(CliError::Usage(format!("top does not understand {a:?}")));
        }
    }
    if !(interval.is_finite() && interval > 0.0) || window_s == 0 {
        return Err(CliError::Usage(
            "--interval and --window must be positive".into(),
        ));
    }
    use std::net::ToSocketAddrs as _;
    let sock = addr
        .to_socket_addrs()
        .ok()
        .and_then(|mut it| it.next())
        .ok_or_else(|| CliError::Usage(format!("could not resolve --addr={addr}")))?;
    if once {
        return top_frame(sock, window_s);
    }
    loop {
        let frame = top_frame(sock, window_s)?;
        // Clear screen + home, then the frame.
        print!("\x1b[2J\x1b[H{frame}");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        std::thread::sleep(std::time::Duration::from_secs_f64(interval));
    }
}

/// `ttlg trace`: serve one request through a loopback gateway over
/// real TCP — the same path production traffic takes — and render the
/// sampled span tree as a flame-style trace.
fn cmd_trace(rest: &[&String]) -> Result<String, CliError> {
    use ttlg_serve::{client::HttpClient, Gateway, GatewayConfig};
    let (e, p) = two_positional(rest, "trace")?;
    let (shape, perm) = parse_problem(e, p)?;
    let join = |v: &[usize]| {
        v.iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(",")
    };
    let body = format!(
        "{{\"extents\":[{}],\"perm\":[{}]}}",
        join(shape.extents()),
        join(perm.as_slice())
    );
    let gw = Gateway::start(
        Arc::new(TransposeService::new_k40c()),
        GatewayConfig::default(),
    );
    let mut server = ttlg_serve::server::spawn(gw, "127.0.0.1:0")
        .map_err(|e| CliError::Failed(format!("could not bind loopback: {e}")))?;
    let result = (|| {
        let mut client = HttpClient::connect(server.addr())
            .map_err(|e| CliError::Failed(format!("could not connect: {e}")))?;
        let r = client
            .post_json("/v1/transpose", &[("x-ttlg-tenant", "cli")], &body)
            .map_err(|e| CliError::Failed(format!("request failed: {e}")))?;
        if r.status != 200 {
            return Err(CliError::Failed(format!(
                "transpose failed ({}): {}",
                r.status,
                r.body_text()
            )));
        }
        let doc = ttlg_serve::json::parse(&r.body)
            .map_err(|e| CliError::Failed(format!("bad response body: {e}")))?;
        let trace_id = doc
            .get("trace_id")
            .and_then(|v| v.as_str())
            .ok_or_else(|| CliError::Failed("response carried no trace_id".into()))?
            .to_string();
        let flame = client
            .get(&format!("/v1/trace/{trace_id}?format=flame"))
            .map_err(|e| CliError::Failed(format!("trace fetch failed: {e}")))?;
        if flame.status != 200 {
            return Err(CliError::Failed(format!(
                "trace fetch failed ({}): {}",
                flame.status,
                flame.body_text()
            )));
        }
        Ok(flame.body_text())
    })();
    server.stop();
    result
}

/// Layout version stamped into every `BENCH_*.json` artifact. Bump when
/// a study changes its document shape, so downstream tooling can reject
/// artifacts written by an incompatible binary.
pub const ARTIFACT_SCHEMA_VERSION: u32 = 1;

/// Prefix a study document with its provenance: schema version, the
/// writer's thread count, and the study name derived from the default
/// filename. The stamp rides inside the same JSON object, so existing
/// consumers keep parsing unchanged.
fn stamp_provenance(json: &str, default_path: &str) -> String {
    let study = default_path
        .trim_start_matches("BENCH_")
        .trim_end_matches(".json");
    let Some(body) = json.strip_prefix('{') else {
        return json.to_string();
    };
    format!(
        "{{\n  \"schema_version\": {ARTIFACT_SCHEMA_VERSION},\n  \
         \"host_threads\": {},\n  \"artifact\": \"{study}\",{body}",
        ttlg_tensor::parallel::default_threads()
    )
}

/// Write a study artifact: `--json-out=PATH` wins, otherwise the
/// study's default filename. Every bench-serve mode funnels through
/// this one path so the flag behaves identically everywhere — and every
/// artifact gets the same provenance stamp.
fn write_artifact(
    json_out: Option<String>,
    default_path: &str,
    json: &str,
) -> Result<String, CliError> {
    let path = json_out.unwrap_or_else(|| default_path.to_string());
    std::fs::write(&path, stamp_provenance(json, default_path))
        .map_err(|e| CliError::Failed(format!("could not write {path}: {e}")))?;
    Ok(path)
}

/// Parse a prior `BENCH_serve.json` into a regression baseline:
/// `(requests_per_s, exec_p99_us)`. Only artifacts carrying the
/// matching provenance stamp (schema version + `"artifact": "serve"`)
/// qualify; anything else — other studies, hand-edited files, older
/// layouts — is silently ignored. `exec_p99_us` is `None` for
/// artifacts written before the field existed.
fn parse_serve_baseline(text: &str) -> Option<(f64, Option<f64>)> {
    let doc = ttlg_serve::json::parse(text.as_bytes()).ok()?;
    let version = doc.get("schema_version")?.as_usize()?;
    if version != ARTIFACT_SCHEMA_VERSION as usize {
        return None;
    }
    if doc.get("artifact")?.as_str()? != "serve" {
        return None;
    }
    let rps = doc.get("requests_per_s")?.as_f64()?;
    let p99 = doc.get("exec_p99_us").and_then(|v| v.as_f64());
    Some((rps, p99))
}

fn cmd_bench_serve(rest: &[&String]) -> Result<String, CliError> {
    let mut distinct = 16usize;
    let mut rounds = 4usize;
    let mut extents = vec![8usize, 6, 5, 4];
    let mut extents_given = false;
    let mut format = MetricsFormat::Text;
    let mut autotune = false;
    let mut tail = false;
    let mut gateway = false;
    let mut trace = false;
    let mut cpu = false;
    let mut r#async = false;
    let mut seconds = 1.0f64;
    let mut overload = 2.0f64;
    let mut seconds_given = false;
    let mut overload_given = false;
    let mut json_out: Option<String> = None;
    for a in rest {
        if let Some(v) = a.strip_prefix("--perms=") {
            distinct = v
                .parse()
                .map_err(|_| CliError::Usage(format!("bad --perms value {v:?}")))?;
        } else if let Some(v) = a.strip_prefix("--rounds=") {
            rounds = v
                .parse()
                .map_err(|_| CliError::Usage(format!("bad --rounds value {v:?}")))?;
        } else if let Some(v) = a.strip_prefix("--extents=") {
            extents = parse_usize_list(v, "extents")?;
            extents_given = true;
        } else if let Some(v) = a.strip_prefix("--json-out=") {
            json_out = Some(v.to_string());
        } else if a.as_str() == "--autotune" {
            autotune = true;
        } else if a.as_str() == "--tail" {
            tail = true;
        } else if a.as_str() == "--gateway" {
            gateway = true;
        } else if a.as_str() == "--trace" {
            trace = true;
        } else if a.as_str() == "--cpu" {
            cpu = true;
        } else if a.as_str() == "--async" {
            r#async = true;
        } else if let Some(v) = a.strip_prefix("--seconds=") {
            seconds = v
                .parse()
                .map_err(|_| CliError::Usage(format!("bad --seconds value {v:?}")))?;
            seconds_given = true;
        } else if let Some(v) = a.strip_prefix("--overload=") {
            overload = v
                .parse()
                .map_err(|_| CliError::Usage(format!("bad --overload value {v:?}")))?;
            overload_given = true;
        } else if let Some(v) = a.strip_prefix("--metrics-format=") {
            format = match v {
                "text" => MetricsFormat::Text,
                "json" => MetricsFormat::Json,
                "prom" => MetricsFormat::Prom,
                other => {
                    return Err(CliError::Usage(format!(
                        "bad --metrics-format value {other:?} (text|json|prom)"
                    )))
                }
            };
        } else {
            return Err(CliError::Usage(format!(
                "bench-serve does not understand {a:?}"
            )));
        }
    }
    if distinct == 0 || rounds == 0 {
        return Err(CliError::Usage(
            "--perms and --rounds must be positive".into(),
        ));
    }
    if overload_given && !gateway && !r#async {
        return Err(CliError::Usage(
            "--overload only applies with --gateway or --async".into(),
        ));
    }
    if seconds_given && !gateway && !cpu && !r#async {
        return Err(CliError::Usage(
            "--seconds only applies with --gateway, --cpu, or --async".into(),
        ));
    }
    if r#async {
        if cpu || gateway || tail || autotune || trace || extents_given {
            return Err(CliError::Usage(
                "--async runs the fixed duplicate-heavy workload; \
                 --cpu/--gateway/--tail/--autotune/--trace/--extents do not apply"
                    .into(),
            ));
        }
        if !(seconds.is_finite() && seconds > 0.0 && overload.is_finite() && overload > 0.0) {
            return Err(CliError::Usage(
                "--seconds and --overload must be positive".into(),
            ));
        }
        let study = ttlg_bench::async_study::run(seconds, overload);
        let path = write_artifact(json_out, "BENCH_async.json", &study.to_json())?;
        let mut s = study.render();
        writeln!(s, "wrote {path}").unwrap();
        return Ok(s);
    }
    if cpu {
        if gateway || tail || autotune || trace || extents_given {
            return Err(CliError::Usage(
                "--cpu runs the fixed taxonomy sweep; --gateway/--tail/--autotune/--trace/--extents do not apply"
                    .into(),
            ));
        }
        if !(seconds.is_finite() && seconds > 0.0) {
            return Err(CliError::Usage("--seconds must be positive".into()));
        }
        let study = ttlg_bench::cpu_study::run(seconds);
        let path = write_artifact(json_out, "BENCH_cpu.json", &study.to_json())?;
        let mut s = study.render();
        writeln!(s, "wrote {path}").unwrap();
        return Ok(s);
    }
    if trace {
        if gateway || tail || autotune || extents_given {
            return Err(CliError::Usage(
                "--trace runs its own loopback workload; --gateway/--tail/--autotune/--extents do not apply"
                    .into(),
            ));
        }
        if distinct > 24 {
            return Err(CliError::Usage(format!(
                "the trace study uses rank-4 permutations (max 24), --perms={distinct} asked for more"
            )));
        }
        let study = ttlg_bench::trace_study::run(distinct, rounds);
        let path = write_artifact(json_out, "BENCH_trace.json", &study.to_json())?;
        let mut s = study.render();
        writeln!(s, "wrote {path}").unwrap();
        return Ok(s);
    }
    if gateway {
        if tail || autotune || extents_given {
            return Err(CliError::Usage(
                "--gateway runs its own loopback workload; --tail/--autotune/--extents do not apply"
                    .into(),
            ));
        }
        if !(seconds.is_finite() && seconds > 0.0 && overload.is_finite() && overload > 0.0) {
            return Err(CliError::Usage(
                "--seconds and --overload must be positive".into(),
            ));
        }
        let study = ttlg_bench::gateway_study::run(seconds, overload);
        let path = write_artifact(json_out, "BENCH_gateway.json", &study.to_json())?;
        let mut s = study.render();
        writeln!(s, "wrote {path}").unwrap();
        return Ok(s);
    }
    if tail {
        if autotune || extents_given {
            return Err(CliError::Usage(
                "--tail runs the fixed skewed workload; --autotune and --extents do not apply"
                    .into(),
            ));
        }
        let study = ttlg_bench::tail_study::run(rounds);
        let path = write_artifact(json_out, "BENCH_tail.json", &study.to_json())?;
        let mut s = study.render();
        writeln!(s, "wrote {path}").unwrap();
        return Ok(s);
    }
    if autotune {
        if extents_given {
            return Err(CliError::Usage(
                "--autotune runs the fixed rank-4 study workload; --extents does not apply".into(),
            ));
        }
        if distinct > 24 {
            return Err(CliError::Usage(format!(
                "the autotune study uses rank-4 permutations (max 24), --perms={distinct} asked for more"
            )));
        }
        let study = ttlg_bench::autotune_study::run(distinct, rounds);
        let path = write_artifact(json_out, "BENCH_autotune.json", &study.to_json())?;
        let mut s = study.render();
        writeln!(s, "wrote {path}").unwrap();
        return Ok(s);
    }
    let shape = Shape::new(&extents).map_err(|e| CliError::Usage(e.to_string()))?;
    let perms = perms_lex(shape.rank(), distinct);
    if perms.len() < distinct {
        return Err(CliError::Usage(format!(
            "rank {} has only {} permutations, --perms={distinct} asked for more",
            shape.rank(),
            perms.len()
        )));
    }

    // One batch per round: the first round populates the plan cache,
    // later rounds replay the same keys and should be pure hits.
    let input = Arc::new(DenseTensor::<f64>::iota(shape.clone()));
    let reqs: Vec<TransposeRequest<f64>> = perms
        .iter()
        .map(|p| TransposeRequest::new(Arc::clone(&input), p.clone()))
        .collect();
    let service = TransposeService::<f64>::new_k40c();
    let t0 = Instant::now();
    let mut failures = 0usize;
    for _ in 0..rounds {
        failures += service
            .submit_batch(&reqs)
            .iter()
            .filter(|r| r.is_err())
            .count();
    }
    let elapsed = t0.elapsed();

    let total = distinct * rounds;
    let stats = service.cache_stats();

    // The perf-trajectory artifact: written in text mode (the default
    // invocation) or whenever a destination is named explicitly. A
    // prior artifact at the same destination becomes the regression
    // baseline: its throughput and exec p99 are folded into a
    // `baseline_delta` section before it is overwritten.
    let mut baseline_note = String::new();
    let artifact = if json_out.is_some() || format == MetricsFormat::Text {
        let wall_ms = elapsed.as_secs_f64() * 1e3;
        let rps = total as f64 / elapsed.as_secs_f64();
        let prediction = service.metrics().prediction();
        let p99 = service.metrics().exec_latency.quantile_us(0.99);
        let exec_p99_us = if p99.is_finite() { p99 } else { 0.0 };
        let dest = json_out
            .clone()
            .unwrap_or_else(|| "BENCH_serve.json".to_string());
        let baseline = std::fs::read_to_string(&dest)
            .ok()
            .and_then(|text| parse_serve_baseline(&text));
        let mut json = format!(
            "{{\n  \"study\": \"serve\",\n  \"requests\": {total},\n  \
             \"distinct_perms\": {distinct},\n  \"rounds\": {rounds},\n  \
             \"wall_ms\": {wall_ms},\n  \"requests_per_s\": {rps},\n  \
             \"exec_p99_us\": {exec_p99_us},\n  \
             \"failures\": {failures},\n  \"cache_hits\": {},\n  \
             \"cache_misses\": {},\n  \"cache_evictions\": {},\n  \
             \"prediction_samples\": {},\n  \"geo_mean_error\": {}",
            stats.hits,
            stats.misses,
            stats.evictions,
            prediction.total_count(),
            prediction.overall_geo_mean_error(),
        );
        if let Some((base_rps, base_p99)) = baseline {
            let throughput_ratio = if base_rps > 0.0 { rps / base_rps } else { 1.0 };
            let p99_ratio = base_p99
                .filter(|b| *b > 0.0 && exec_p99_us > 0.0)
                .map(|b| exec_p99_us / b);
            write!(
                json,
                ",\n  \"baseline_delta\": {{\n    \
                 \"baseline_requests_per_s\": {base_rps},\n    \
                 \"throughput_ratio\": {throughput_ratio},\n    \
                 \"baseline_exec_p99_us\": {},\n    \
                 \"p99_ratio\": {}\n  }}",
                base_p99.map_or("null".to_string(), |b| b.to_string()),
                p99_ratio.map_or("null".to_string(), |r| r.to_string()),
            )
            .unwrap();
            writeln!(
                baseline_note,
                "baseline  : throughput x{throughput_ratio:.2}{} vs prior artifact",
                p99_ratio.map_or(String::new(), |r| format!(", exec p99 x{r:.2}")),
            )
            .unwrap();
            if throughput_ratio < 0.9 {
                writeln!(
                    baseline_note,
                    "WARNING: throughput regressed {:.0}% vs baseline ({:.0} -> {:.0} req/s)",
                    (1.0 - throughput_ratio) * 100.0,
                    base_rps,
                    rps
                )
                .unwrap();
            }
            if let Some(r) = p99_ratio {
                if r > 1.1 {
                    writeln!(
                        baseline_note,
                        "WARNING: exec p99 regressed {:.0}% vs baseline ({:.1} -> {:.1} us)",
                        (r - 1.0) * 100.0,
                        base_p99.unwrap_or(0.0),
                        exec_p99_us
                    )
                    .unwrap();
                }
            }
        }
        json.push_str("\n}\n");
        Some(write_artifact(json_out, "BENCH_serve.json", &json)?)
    } else {
        None
    };

    // The machine-readable formats are emitted bare so the output can be
    // piped straight into a scraper or parser.
    match format {
        MetricsFormat::Json => return Ok(service.export_json()),
        MetricsFormat::Prom => return Ok(service.export_prometheus()),
        MetricsFormat::Text => {}
    }
    let mut s = String::new();
    writeln!(
        s,
        "workload  : {total} requests = {rounds} rounds x {distinct} permutations of {shape}"
    )
    .unwrap();
    writeln!(
        s,
        "wall-clock: {:.2} ms ({:.0} requests/s)",
        elapsed.as_secs_f64() * 1e3,
        total as f64 / elapsed.as_secs_f64()
    )
    .unwrap();
    writeln!(s, "failures  : {failures}").unwrap();
    writeln!(
        s,
        "plan cache: {} hits, {} misses, {} evictions",
        stats.hits, stats.misses, stats.evictions
    )
    .unwrap();
    if !baseline_note.is_empty() {
        s.push_str(&baseline_note);
    }
    s.push('\n');
    s.push_str(&service.metrics_report());
    if let Some(path) = artifact {
        writeln!(s, "\nwrote {path}").unwrap();
    }
    Ok(s)
}

fn cmd_devices() -> String {
    let mut s = String::new();
    for d in [DeviceConfig::k40c(), DeviceConfig::test_tiny()] {
        writeln!(
            s,
            "{:<24} {:>3} SMs  {:>6.0} MHz  {:>6.0} GB/s peak  {:>3} KiB smem/SM",
            d.name,
            d.num_sms,
            d.clock_ghz * 1000.0,
            d.dram_peak_gbps,
            d.smem_per_sm / 1024
        )
        .unwrap();
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(args: &[&str]) -> Result<String, CliError> {
        run_cli(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn plan_command() {
        let out = run(&["plan", "16,16,16", "2,1,0"]).unwrap();
        assert!(out.contains("schema"));
        assert!(out.contains("Orthogonal"));
    }

    #[test]
    fn explain_command_prints_full_decision_trace() {
        // A 6D Orthogonal-Distinct problem: the trace must show every
        // candidate's slice sizes with predicted times and mark the
        // chosen one.
        let out = run(&["explain", "16,16,16,16,16,16", "5,4,3,2,1,0"]).unwrap();
        assert!(out.contains("decision trace"), "{out}");
        assert!(out.contains("admissible"), "{out}");
        assert!(out.contains("Orthogonal-Distinct"), "{out}");
        assert!(out.contains("slice in="), "{out}");
        assert!(out.contains("pred"), "{out}");
        assert!(out.contains("chosen:"), "{out}");
        assert!(out.contains('*'), "chosen candidate marker: {out}");
        assert!(out.contains("sweep rejections"), "{out}");
    }

    #[test]
    fn run_command_with_verify() {
        let out = run(&["run", "16,8,4", "2,0,1", "--verify"]).unwrap();
        assert!(out.contains("verify    : OK"));
    }

    #[test]
    fn predict_command() {
        let out = run(&["predict", "32,32", "1,0"]).unwrap();
        assert!(out.contains("predicted:"));
    }

    #[test]
    fn compare_command_lists_all_systems() {
        let out = run(&["compare", "16,16,16", "2,1,0"]).unwrap();
        assert!(out.contains("TTLG"));
        assert!(out.contains("cuTT-heuristic"));
        assert!(out.contains("cuTT-measure"));
        assert!(out.contains("TTC"));
        assert!(out.contains("naive"));
    }

    #[test]
    fn profile_command() {
        let out = run(&["profile", "32,32,32", "2,1,0"]).unwrap();
        assert!(out.contains("bottleneck"));
        assert!(out.contains("dram"));
    }

    #[test]
    fn contract_command() {
        let out = run(&["contract", "kil,ljk->ij", "4,6,5", "5,7,4"]).unwrap();
        assert!(out.contains("GEMM"));
        assert!(out.contains("output"));
    }

    #[test]
    fn bench_serve_command() {
        let dir = std::env::temp_dir().join("ttlg-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("serve.json");
        let out = run(&[
            "bench-serve",
            "--perms=4",
            "--rounds=2",
            "--extents=6,5,4",
            &format!("--json-out={}", path.display()),
        ])
        .unwrap();
        assert!(out.contains("8 requests = 2 rounds x 4 permutations"));
        assert!(out.contains("plan cache: 4 hits, 4 misses"));
        assert!(out.contains("ttlg-runtime metrics"));
        assert!(out.contains("failures  : 0"));
        assert!(out.contains("wrote"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"study\": \"serve\""));
        assert!(json.contains("\"requests\": 8"));
        assert!(json.contains("\"geo_mean_error\""));
    }

    #[test]
    fn bench_serve_autotune_writes_artifact() {
        let dir = std::env::temp_dir().join("ttlg-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("autotune.json");
        let out = run(&[
            "bench-serve",
            "--autotune",
            "--perms=3",
            "--rounds=2",
            &format!("--json-out={}", path.display()),
        ])
        .unwrap();
        assert!(out.contains("model-only"), "{out}");
        assert!(out.contains("autotuned"), "{out}");
        assert!(out.contains("wrote"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"geo_error_before\""));
        assert!(json.contains("\"geo_error_after\""));
        assert!(json.contains("\"plans_warmed\": 3"));
    }

    #[test]
    fn bench_serve_cpu_writes_artifact_with_provenance() {
        let dir = std::env::temp_dir().join("ttlg-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cpu.json");
        let out = run(&[
            "bench-serve",
            "--cpu",
            "--seconds=1",
            &format!("--json-out={}", path.display()),
        ])
        .unwrap();
        assert!(out.contains("tiled CPU backend vs naive odometer"), "{out}");
        assert!(out.contains("geo-mean speedup"), "{out}");
        assert!(out.contains("thread scaling"), "{out}");
        assert!(out.contains("wrote"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        // The provenance stamp leads every artifact.
        assert!(json.starts_with("{\n  \"schema_version\": 1,"), "{json}");
        assert!(json.contains("\"host_threads\":"));
        assert!(json.contains("\"artifact\": \"cpu\""));
        assert!(json.contains("\"study\": \"cpu\""));
        assert!(json.contains("\"geo_mean_speedup\""));
        assert!(json.contains("\"classes\""));
        assert!(json.contains("\"scaling\""));
        assert!(json.contains("\"cpu_pred_geo_err\""));
        assert!(json.contains("\"backend_requests_cpu\""));
        // --seconds gates on --gateway or --cpu; --overload stays
        // gateway-only; --cpu rejects the other studies' knobs.
        assert!(matches!(
            run(&["bench-serve", "--seconds=1"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["bench-serve", "--cpu", "--overload=2"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["bench-serve", "--cpu", "--tail"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["bench-serve", "--cpu", "--seconds=0"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn profile_tail_renders_flame_tree() {
        let out = run(&["profile", "--tail", "--rounds=2"]).unwrap();
        assert!(out.contains("phase profile of the trace ring"), "{out}");
        assert!(out.contains("execute"), "{out}");
        assert!(out.contains("p99~"), "{out}");
        assert!(out.contains("slowest retained exemplars:"), "{out}");
        assert!(matches!(
            run(&["profile", "--tail", "--bogus"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["profile", "--tail", "--rounds=0"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn bench_serve_tail_writes_artifact() {
        let dir = std::env::temp_dir().join("ttlg-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tail.json");
        let out = run(&[
            "bench-serve",
            "--tail",
            "--rounds=2",
            &format!("--json-out={}", path.display()),
        ])
        .unwrap();
        assert!(out.contains("tail-latency attribution"), "{out}");
        assert!(out.contains("dominant @p99"), "{out}");
        assert!(out.contains("slo:"), "{out}");
        assert!(out.contains("wrote"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"study\": \"tail\""));
        assert!(json.contains("\"dominant_phase_at_p99\""));
        assert!(json.contains("\"phase_at_p99\""));
        assert!(json.contains("\"exemplars\": [{"));
        assert!(json.contains("\"slo\""));
    }

    #[test]
    fn bench_serve_gateway_writes_artifact() {
        let dir = std::env::temp_dir().join("ttlg-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gateway.json");
        let out = run(&[
            "bench-serve",
            "--gateway",
            "--seconds=0.2",
            "--overload=2.0",
            &format!("--json-out={}", path.display()),
        ])
        .unwrap();
        assert!(out.contains("gateway loopback study"), "{out}");
        assert!(out.contains("shed rate"), "{out}");
        assert!(out.contains("fairness"), "{out}");
        assert!(out.contains("wrote"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"study\": \"gateway\""));
        assert!(json.contains("\"shed_rate\""));
        assert!(json.contains("\"classes\""));
        assert!(json.contains("\"tenants\""));
        // Conflicts and misuse are usage errors, not silent ignores.
        assert!(matches!(
            run(&["bench-serve", "--gateway", "--tail"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["bench-serve", "--seconds=1"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["bench-serve", "--gateway", "--seconds=0"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn bench_serve_async_writes_artifact_with_provenance() {
        let dir = std::env::temp_dir().join("ttlg-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("async.json");
        let out = run(&[
            "bench-serve",
            "--async",
            "--seconds=0.2",
            "--overload=2.0",
            &format!("--json-out={}", path.display()),
        ])
        .unwrap();
        assert!(out.contains("async submission coalescing study"), "{out}");
        assert!(out.contains("fewer kernels"), "{out}");
        assert!(out.contains("wrote"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        // The provenance stamp leads every artifact.
        assert!(json.starts_with("{\n  \"schema_version\": 1,"), "{json}");
        assert!(json.contains("\"host_threads\":"));
        assert!(json.contains("\"artifact\": \"async\""));
        assert!(json.contains("\"study\": \"async\""));
        assert!(json.contains("\"baseline\""));
        assert!(json.contains("\"coalesced\""));
        assert!(json.contains("\"executions_per_request\""));
        assert!(json.contains("\"p99_ratio\""));
        // --async is exclusive with the other studies and validates its
        // knobs like --gateway does.
        assert!(matches!(
            run(&["bench-serve", "--async", "--cpu"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["bench-serve", "--async", "--tail"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["bench-serve", "--async", "--extents=4,4"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["bench-serve", "--async", "--seconds=0"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["bench-serve", "--overload=2"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn serve_check_binds_and_writes_port_file() {
        let dir = std::env::temp_dir().join("ttlg-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("serve.port");
        let out = run(&[
            "serve",
            "--addr=127.0.0.1:0",
            "--workers=2",
            "--check",
            &format!("--port-file={}", path.display()),
        ])
        .unwrap();
        assert!(out.contains("config OK"), "{out}");
        let port: u16 = std::fs::read_to_string(&path)
            .unwrap()
            .trim()
            .parse()
            .expect("port file holds the bound port");
        assert!(port > 0);
        assert!(matches!(
            run(&["serve", "--workers=banana"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["serve", "--workers=0", "--check"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["serve", "--bogus"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn trace_command_renders_flame_tree() {
        let out = run(&["trace", "16,8,4", "2,0,1"]).unwrap();
        assert!(out.contains("request"), "{out}");
        assert!(out.contains("plan"), "{out}");
        assert!(out.contains("execute"), "{out}");
        assert!(out.contains("kernel"), "{out}");
        assert!(out.contains("decision trace"), "{out}");
        assert!(matches!(run(&["trace", "16,8,4"]), Err(CliError::Usage(_))));
        assert!(matches!(
            run(&["trace", "16,8,4", "1,0"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn bench_serve_trace_writes_artifact() {
        let dir = std::env::temp_dir().join("ttlg-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let out = run(&[
            "bench-serve",
            "--trace",
            "--perms=4",
            "--rounds=2",
            &format!("--json-out={}", path.display()),
        ])
        .unwrap();
        assert!(out.contains("tracing & drift-alert study"), "{out}");
        assert!(out.contains("prediction-drift rule"), "{out}");
        assert!(out.contains("wrote"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"study\": \"trace\""));
        assert!(json.contains("\"drift_fired\": true"));
        assert!(json.contains("\"drift_resolved\": true"));
        assert!(json.contains("\"sampled_traces\""));
        assert!(json.contains("\"dropped_traces\""));
        // Conflicts are usage errors, not silent ignores.
        assert!(matches!(
            run(&["bench-serve", "--trace", "--gateway"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["bench-serve", "--trace", "--tail"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["bench-serve", "--trace", "--extents=6,5,4"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["bench-serve", "--trace", "--perms=25"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn bench_serve_tail_rejects_bad_flags() {
        assert!(matches!(
            run(&["bench-serve", "--tail", "--extents=6,5,4"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["bench-serve", "--tail", "--autotune"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn bench_serve_autotune_rejects_bad_flags() {
        assert!(matches!(
            run(&["bench-serve", "--autotune", "--extents=6,5,4"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["bench-serve", "--autotune", "--perms=25"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn bench_serve_prometheus_format() {
        let out = run(&[
            "bench-serve",
            "--perms=4",
            "--rounds=2",
            "--extents=6,5,4",
            "--metrics-format=prom",
        ])
        .unwrap();
        assert!(!out.trim().is_empty(), "metrics must be non-empty");
        assert!(out.contains("# TYPE ttlg_requests_total counter"), "{out}");
        assert!(out.contains("ttlg_requests_total{schema="), "{out}");
        assert!(
            out.contains("ttlg_exec_latency_us_quantile{quantile=\"0.5\"}"),
            "{out}"
        );
        assert!(out.contains("quantile=\"0.95\""), "{out}");
        assert!(out.contains("quantile=\"0.99\""), "{out}");
        assert!(out.contains("ttlg_prediction_samples_total"), "{out}");
        assert!(out.contains("ttlg_prediction_geo_mean_error"), "{out}");
        // Every non-comment line parses as `name{labels} value`.
        for line in out.lines().filter(|l| !l.starts_with('#') && !l.is_empty()) {
            let (_, value) = line.rsplit_once(' ').expect("name value");
            assert!(value.parse::<f64>().is_ok(), "unparsable value: {line}");
        }
    }

    #[test]
    fn bench_serve_json_format() {
        let out = run(&[
            "bench-serve",
            "--perms=2",
            "--rounds=1",
            "--extents=6,5,4",
            "--metrics-format=json",
        ])
        .unwrap();
        assert!(out.starts_with('{') && out.trim_end().ends_with('}'));
        assert!(out.contains("\"ttlg_requests_total\""), "{out}");
        assert!(out.contains("\"histograms\""), "{out}");
        assert!(matches!(
            run(&["bench-serve", "--metrics-format=xml"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn bench_serve_rejects_impossible_perm_count() {
        assert!(matches!(
            run(&["bench-serve", "--perms=9", "--extents=4,4"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["bench-serve", "--bogus"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn devices_command() {
        let out = run(&["devices"]).unwrap();
        assert!(out.contains("K40c"));
    }

    #[test]
    fn serve_check_accepts_history_file() {
        let dir = std::env::temp_dir().join("ttlg-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("serve-check.history");
        let _ = std::fs::remove_file(&path);
        let out = run(&[
            "serve",
            "--addr=127.0.0.1:0",
            "--check",
            &format!("--history-file={}", path.display()),
        ])
        .unwrap();
        assert!(out.contains("config OK"), "{out}");
        assert!(out.contains("0 series restored"), "{out}");
        // A corrupt history file is a hard error, not a silent reset.
        std::fs::write(&path, "not a history file\n").unwrap();
        let err = run(&[
            "serve",
            "--addr=127.0.0.1:0",
            "--check",
            &format!("--history-file={}", path.display()),
        ]);
        assert!(matches!(err, Err(CliError::Failed(_))), "{err:?}");
        let _ = std::fs::remove_file(&path);
    }

    /// `ttlg top --once` renders one dashboard frame from a live serve
    /// endpoint: every row resolves through /v1/query_range and the
    /// alerts footer through /v1/alerts.
    #[test]
    fn top_once_renders_dashboard_frame() {
        use ttlg_serve::{client::HttpClient, Gateway, GatewayConfig};
        let gw = Gateway::start(
            Arc::new(TransposeService::new_k40c()),
            GatewayConfig::default(),
        );
        let mut server =
            ttlg_serve::server::spawn(Arc::clone(&gw), "127.0.0.1:0").expect("bind loopback");
        let mut client = HttpClient::connect(server.addr()).expect("connect");
        for _ in 0..2 {
            let r = client
                .post_json("/v1/transpose", &[], r#"{"extents":[8,8],"perm":[1,0]}"#)
                .expect("transpose");
            assert_eq!(r.status, 200, "{}", r.body_text());
            gw.service().scrape_history_once();
        }
        let out = run(&["top", "--once", &format!("--addr={}", server.addr())]).unwrap();
        assert!(out.contains("ttlg top"), "{out}");
        for row in ["throughput", "exec p99", "shed rate", "uptime", "alerts"] {
            assert!(out.contains(row), "{row} missing from:\n{out}");
        }
        assert!(!out.contains('!'), "no row may error:\n{out}");
        server.stop();
        gw.stop();
        // Flag validation.
        assert!(matches!(run(&["top", "--bogus"]), Err(CliError::Usage(_))));
        assert!(matches!(
            run(&["top", "--interval=0", "--once"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["top", "--addr=not-an-addr", "--once"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn sparkline_scales_and_skips_nonfinite() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[1.0, 1.0]), "▁▁", "flat series stays low");
        let line = sparkline(&[0.0, f64::NAN, 7.0]);
        assert_eq!(line, "▁█", "non-finite skipped, extremes span the bars");
    }

    /// A prior serve artifact at the destination becomes the regression
    /// baseline: the new artifact carries a `baseline_delta` section
    /// and the text output warns when throughput or p99 regress >10%.
    #[test]
    fn bench_serve_reports_baseline_delta_and_warns_on_regression() {
        let dir = std::env::temp_dir().join("ttlg-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("serve-baseline.json");
        // An impossibly fast baseline: any real run regresses >10%.
        std::fs::write(
            &path,
            "{\n  \"schema_version\": 1,\n  \"host_threads\": 8,\n  \
             \"artifact\": \"serve\",\n  \"study\": \"serve\",\n  \
             \"requests_per_s\": 1e12,\n  \"exec_p99_us\": 1e-6\n}\n",
        )
        .unwrap();
        let out = run(&[
            "bench-serve",
            "--perms=4",
            "--rounds=2",
            "--extents=6,5,4",
            &format!("--json-out={}", path.display()),
        ])
        .unwrap();
        assert!(out.contains("baseline  : throughput x"), "{out}");
        assert!(out.contains("WARNING: throughput regressed"), "{out}");
        assert!(out.contains("WARNING: exec p99 regressed"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"exec_p99_us\""), "{json}");
        assert!(json.contains("\"baseline_delta\""), "{json}");
        assert!(json.contains("\"throughput_ratio\""), "{json}");
        assert!(json.contains("\"p99_ratio\""), "{json}");
        // A non-serve artifact at the destination is not a baseline.
        let other = dir.join("serve-baseline-other.json");
        std::fs::write(
            &other,
            "{\n  \"schema_version\": 1,\n  \"artifact\": \"cpu\",\n  \
             \"requests_per_s\": 1e12\n}\n",
        )
        .unwrap();
        let out = run(&[
            "bench-serve",
            "--perms=2",
            "--rounds=1",
            "--extents=6,5,4",
            &format!("--json-out={}", other.display()),
        ])
        .unwrap();
        assert!(!out.contains("baseline  :"), "{out}");
        let json = std::fs::read_to_string(&other).unwrap();
        assert!(!json.contains("baseline_delta"), "{json}");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&other);
    }

    #[test]
    fn usage_errors() {
        assert!(matches!(run(&[]), Err(CliError::Usage(_))));
        assert!(matches!(run(&["bogus"]), Err(CliError::Usage(_))));
        assert!(matches!(run(&["plan", "16,16"]), Err(CliError::Usage(_))));
        assert!(matches!(
            run(&["plan", "16,x", "1,0"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["plan", "16,16", "0,1,2"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["contract", "bad", "1", "2"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn help_prints_usage() {
        assert!(run(&["help"]).unwrap().contains("USAGE"));
    }
}
