//! The `ttlg` command-line tool (thin shell over `ttlg_cli::run_cli`).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match ttlg_cli::run_cli(&args) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}
