//! Workload generators for the paper's experiments.
//!
//! Covers: the all-720-permutations 6D suites (extents all 15/16/17,
//! Figs. 6-11), the model-training dataset of Sec. V (ranks 3-6, five
//! extent-ordering classes, volumes spanning MBs..GBs), the varying-volume
//! sweep (Fig. 13), and a 57-case TTC-style benchmark suite (Fig. 14).
//!
//! The original TTC benchmark list (Springer 2016, `benchmark.py`) is not
//! redistributable here, so [`ttc_benchmark_suite`] deterministically
//! synthesises an equivalent suite: 57 cases, ranks 2-6, ~`target_volume`
//! elements each, with permutations that admit **no index fusion** (the
//! property the paper states for those benchmarks). See DESIGN.md.

use crate::fusion::scaled_rank;
use crate::permutation::Permutation;
use crate::rng::StdRng;
use crate::shape::Shape;

/// A single transposition problem instance.
#[derive(Debug, Clone)]
pub struct Case {
    /// Human-readable label (used in benchmark report rows).
    pub name: String,
    /// Input shape.
    pub shape: Shape,
    /// Permutation to apply.
    pub perm: Permutation,
}

impl Case {
    /// Build a case, panicking on invalid shape/permutation (generator
    /// internals guarantee validity).
    pub fn new(name: impl Into<String>, extents: &[usize], perm: &[usize]) -> Case {
        Case {
            name: name.into(),
            shape: Shape::new(extents).expect("generator produced invalid shape"),
            perm: Permutation::new(perm).expect("generator produced invalid permutation"),
        }
    }

    /// Volume (elements) of the case.
    pub fn volume(&self) -> usize {
        self.shape.volume()
    }

    /// Scaled rank after index fusion.
    pub fn scaled_rank(&self) -> usize {
        scaled_rank(&self.perm)
    }
}

/// All permutations of a rank-`rank` tensor with every extent equal to
/// `extent` — the Figs. 6-11 workload when `rank == 6` and
/// `extent ∈ {15, 16, 17}`. Cases are ordered by (scaled rank, permutation)
/// like the paper's charts (grouped by the scaled-rank "staircase").
pub fn all_permutations_suite(rank: usize, extent: usize) -> Vec<Case> {
    let extents = vec![extent; rank];
    let mut cases: Vec<Case> = Permutation::all(rank)
        .map(|p| {
            let name = format!("perm {} ext {}", p, extent);
            Case {
                name,
                shape: Shape::new(&extents).unwrap(),
                perm: p,
            }
        })
        .collect();
    cases.sort_by_key(|c| (c.scaled_rank(), c.perm.as_slice().to_vec()));
    cases
}

/// Extent-ordering classes from the model-training dataset of Sec. V.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderingClass {
    /// All extents equal.
    AllSame,
    /// Monotonically increasing from the fastest dimension.
    Increasing,
    /// Monotonically decreasing from the fastest dimension.
    Decreasing,
    /// Increasing to the middle dimension, then decreasing.
    IncreaseDecrease,
    /// Decreasing to the middle dimension, then increasing.
    DecreaseIncrease,
}

impl OrderingClass {
    /// All five classes, in the paper's order.
    pub const ALL: [OrderingClass; 5] = [
        OrderingClass::AllSame,
        OrderingClass::Increasing,
        OrderingClass::Decreasing,
        OrderingClass::IncreaseDecrease,
        OrderingClass::DecreaseIncrease,
    ];

    /// Generate `rank` extents with total volume close to `target_volume`
    /// following this ordering class. Extents are >= 2.
    pub fn extents(self, rank: usize, target_volume: usize, rng: &mut StdRng) -> Vec<usize> {
        assert!(rank >= 1);
        let base = (target_volume as f64).powf(1.0 / rank as f64);
        // Per-dimension multiplicative skew in [1/s, s].
        let skew = 1.6f64;
        let factors: Vec<f64> = match self {
            OrderingClass::AllSame => vec![1.0; rank],
            OrderingClass::Increasing => (0..rank).map(|i| skew.powf(lin(i, rank))).collect(),
            OrderingClass::Decreasing => (0..rank).map(|i| skew.powf(-lin(i, rank))).collect(),
            OrderingClass::IncreaseDecrease => (0..rank).map(|i| skew.powf(tri(i, rank))).collect(),
            OrderingClass::DecreaseIncrease => {
                (0..rank).map(|i| skew.powf(-tri(i, rank))).collect()
            }
        };
        let jitter: Vec<f64> = (0..rank).map(|_| rng.gen_range(0.92..1.08)).collect();
        let mut extents: Vec<usize> = factors
            .iter()
            .zip(jitter.iter())
            .map(|(&f, &j)| ((base * f * j).round() as usize).max(2))
            .collect();
        enforce_ordering(self, &mut extents);
        extents
    }
}

/// Map `i in 0..rank` to [-1, 1] linearly.
fn lin(i: usize, rank: usize) -> f64 {
    if rank <= 1 {
        0.0
    } else {
        2.0 * i as f64 / (rank - 1) as f64 - 1.0
    }
}

/// Triangle profile peaking at the centre dimension, in [-1, 1].
fn tri(i: usize, rank: usize) -> f64 {
    if rank <= 1 {
        0.0
    } else {
        1.0 - 2.0 * (lin(i, rank)).abs()
    }
}

/// Nudge extents so the requested ordering strictly holds (ties broken by
/// +1 adjustments); keeps the class property the model dataset relies on.
fn enforce_ordering(class: OrderingClass, extents: &mut [usize]) {
    let n = extents.len();
    if n < 2 {
        return;
    }
    match class {
        OrderingClass::AllSame => {
            let v = extents[0];
            extents.iter_mut().for_each(|e| *e = v);
        }
        OrderingClass::Increasing => {
            for i in 1..n {
                if extents[i] <= extents[i - 1] {
                    extents[i] = extents[i - 1] + 1;
                }
            }
        }
        OrderingClass::Decreasing => {
            for i in 1..n {
                if extents[i] >= extents[i - 1] {
                    extents[i] = extents[i - 1].saturating_sub(1).max(2);
                }
            }
        }
        OrderingClass::IncreaseDecrease => {
            let mid = n / 2;
            for i in 1..=mid {
                if extents[i] <= extents[i - 1] {
                    extents[i] = extents[i - 1] + 1;
                }
            }
            for i in mid + 1..n {
                if extents[i] >= extents[i - 1] {
                    extents[i] = extents[i - 1].saturating_sub(1).max(2);
                }
            }
        }
        OrderingClass::DecreaseIncrease => {
            let mid = n / 2;
            for i in 1..=mid {
                if extents[i] >= extents[i - 1] {
                    extents[i] = extents[i - 1].saturating_sub(1).max(2);
                }
            }
            for i in mid + 1..n {
                if extents[i] <= extents[i - 1] {
                    extents[i] = extents[i - 1] + 1;
                }
            }
        }
    }
}

/// Configuration for the Sec. V model-training dataset generator.
#[derive(Debug, Clone)]
pub struct DatasetConfig {
    /// Tensor ranks to include (paper: 3..=6).
    pub ranks: Vec<usize>,
    /// Target volumes in elements (paper: 16 MB .. 2 GB of doubles; scale
    /// down for quick runs).
    pub volumes: Vec<usize>,
    /// Maximum number of permutations sampled per (rank, volume, class);
    /// `usize::MAX` means all.
    pub max_perms_per_config: usize,
    /// RNG seed so datasets are reproducible.
    pub seed: u64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            ranks: vec![3, 4, 5, 6],
            // elements; with f64 these are 16 MB, 64 MB, 256 MB
            volumes: vec![2 << 20, 8 << 20, 32 << 20],
            max_perms_per_config: 8,
            seed: 0x77C0_FFEE,
        }
    }
}

impl DatasetConfig {
    /// A small configuration for unit tests and quick model retraining.
    pub fn small() -> Self {
        DatasetConfig {
            ranks: vec![3, 4],
            volumes: vec![1 << 16, 1 << 18],
            max_perms_per_config: 4,
            seed: 42,
        }
    }
}

/// Generate the training/evaluation case list of Sec. V: every combination
/// of rank x volume x ordering class, with (a sample of) all permutations
/// of that rank.
pub fn model_dataset(cfg: &DatasetConfig) -> Vec<Case> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut cases = Vec::new();
    for &rank in &cfg.ranks {
        // Materialise all perms once per rank, skipping the identity (it
        // fuses to a pure copy and the paper's kernels never see it).
        let perms: Vec<Permutation> = Permutation::all(rank)
            .filter(|p| !p.is_identity())
            .collect();
        for &vol in &cfg.volumes {
            for class in OrderingClass::ALL {
                let extents = class.extents(rank, vol, &mut rng);
                let chosen: Vec<&Permutation> = if perms.len() <= cfg.max_perms_per_config {
                    perms.iter().collect()
                } else {
                    rng.choose_multiple(&perms, cfg.max_perms_per_config)
                };
                for p in chosen {
                    cases.push(Case {
                        name: format!("r{rank} v{vol} {class:?} perm {p}"),
                        shape: Shape::new(&extents).unwrap(),
                        perm: p.clone(),
                    });
                }
            }
        }
    }
    cases
}

/// Split cases into (train, test) with the paper's 4/5 : 1/5 random split.
pub fn train_test_split(cases: Vec<Case>, seed: u64) -> (Vec<Case>, Vec<Case>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut shuffled = cases;
    rng.shuffle(&mut shuffled);
    let n_test = shuffled.len() / 5;
    let test = shuffled.split_off(shuffled.len() - n_test);
    (shuffled, test)
}

/// The Fig. 13 volume sweep: permutation `0 2 1 3` over cubic-ish 4D shapes
/// `s^4` for `s` in the given list (paper: 15..128).
pub fn volume_sweep(sizes: &[usize]) -> Vec<Case> {
    sizes
        .iter()
        .map(|&s| Case::new(format!("{s} {s} {s} {s}"), &[s, s, s, s], &[0, 2, 1, 3]))
        .collect()
}

/// The two Fig. 12 repeated-use permutations on a 16^6 tensor:
/// `(a)` matching FVI `0 2 5 1 4 3`, `(b)` non-matching `4 1 2 5 3 0`.
pub fn repeated_use_cases(extent: usize) -> [Case; 2] {
    let e = vec![extent; 6];
    [
        Case::new("matching-FVI 0 2 5 1 4 3", &e, &[0, 2, 5, 1, 4, 3]),
        Case::new("non-matching-FVI 4 1 2 5 3 0", &e, &[4, 1, 2, 5, 3, 0]),
    ]
}

/// Deterministic TTC-style benchmark suite: `count` cases (paper: 57),
/// ranks cycling 2..=6, each with ~`target_volume` elements, permutations
/// chosen so **no index fusion is possible** (scaled rank == rank), as the
/// paper states for the TTC benchmark set.
pub fn ttc_benchmark_suite(count: usize, target_volume: usize, seed: u64) -> Vec<Case> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cases = Vec::with_capacity(count);
    let ranks = [2usize, 3, 4, 5, 6];
    let mut k = 0usize;
    while cases.len() < count {
        let rank = ranks[k % ranks.len()];
        k += 1;
        // Random non-fusible, non-identity permutation.
        let perm = loop {
            let mut m: Vec<usize> = (0..rank).collect();
            rng.shuffle(&mut m);
            let p = Permutation::new(&m).unwrap();
            if !p.is_identity() && scaled_rank(&p) == rank {
                break p;
            }
        };
        let class = OrderingClass::ALL[rng.gen_range(0..OrderingClass::ALL.len())];
        let extents = class.extents(rank, target_volume, &mut rng);
        cases.push(Case {
            name: format!("ttc-{:02} r{rank} perm {perm}", cases.len()),
            shape: Shape::new(&extents).unwrap(),
            perm,
        });
    }
    cases
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_permutations_suite_has_720_cases_for_rank6() {
        let suite = all_permutations_suite(6, 16);
        assert_eq!(suite.len(), 720);
        assert!(suite.iter().all(|c| c.volume() == 16usize.pow(6)));
        // Sorted by scaled rank (the staircase).
        let ranks: Vec<usize> = suite.iter().map(|c| c.scaled_rank()).collect();
        assert!(ranks.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(ranks[0], 1); // identity fuses fully
        assert_eq!(*ranks.last().unwrap(), 6);
    }

    #[test]
    fn ordering_classes_produce_requested_shapes() {
        let mut rng = StdRng::seed_from_u64(7);
        for rank in [3usize, 4, 5, 6] {
            let inc = OrderingClass::Increasing.extents(rank, 1 << 20, &mut rng);
            assert!(inc.windows(2).all(|w| w[0] < w[1]), "{inc:?}");
            let dec = OrderingClass::Decreasing.extents(rank, 1 << 20, &mut rng);
            assert!(dec.windows(2).all(|w| w[0] > w[1]), "{dec:?}");
            let same = OrderingClass::AllSame.extents(rank, 1 << 20, &mut rng);
            assert!(same.windows(2).all(|w| w[0] == w[1]), "{same:?}");
        }
    }

    #[test]
    fn ordering_classes_hit_target_volume_roughly() {
        let mut rng = StdRng::seed_from_u64(3);
        let target = 1 << 20;
        for class in OrderingClass::ALL {
            let e = class.extents(5, target, &mut rng);
            let vol: usize = e.iter().product();
            let ratio = vol as f64 / target as f64;
            assert!((0.2..5.0).contains(&ratio), "{class:?}: {e:?} vol {vol}");
        }
    }

    #[test]
    fn model_dataset_is_deterministic_and_nonempty() {
        let cfg = DatasetConfig::small();
        let a = model_dataset(&cfg);
        let b = model_dataset(&cfg);
        assert!(!a.is_empty());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.shape.extents(), y.shape.extents());
        }
        // identity never included
        assert!(a.iter().all(|c| !c.perm.is_identity()));
    }

    #[test]
    fn train_test_split_is_four_fifths() {
        let cfg = DatasetConfig::small();
        let cases = model_dataset(&cfg);
        let n = cases.len();
        let (train, test) = train_test_split(cases, 1);
        assert_eq!(test.len(), n / 5);
        assert_eq!(train.len(), n - n / 5);
    }

    #[test]
    fn volume_sweep_builds_cubes() {
        let sweep = volume_sweep(&[15, 16, 31, 32]);
        assert_eq!(sweep.len(), 4);
        assert_eq!(sweep[2].shape.extents(), &[31, 31, 31, 31]);
        assert_eq!(sweep[0].perm.as_slice(), &[0, 2, 1, 3]);
    }

    #[test]
    fn repeated_use_cases_match_paper_perms() {
        let [a, b] = repeated_use_cases(16);
        assert!(a.perm.fvi_matches());
        assert!(!b.perm.fvi_matches());
        assert_eq!(a.volume(), 16usize.pow(6));
    }

    #[test]
    fn ttc_suite_properties() {
        let suite = ttc_benchmark_suite(57, 1 << 20, 99);
        assert_eq!(suite.len(), 57);
        for c in &suite {
            assert_eq!(c.scaled_rank(), c.shape.rank(), "{}", c.name);
            assert!(!c.perm.is_identity());
            assert!((2..=6).contains(&c.shape.rank()));
        }
        // deterministic
        let again = ttc_benchmark_suite(57, 1 << 20, 99);
        for (x, y) in suite.iter().zip(again.iter()) {
            assert_eq!(x.shape.extents(), y.shape.extents());
            assert_eq!(x.perm.as_slice(), y.perm.as_slice());
        }
    }
}
