//! A small deterministic PRNG for workload generation and tests.
//!
//! The workspace builds fully offline, so the `rand` crate is not
//! available; this module provides the subset the generators and tests
//! need: a seedable xoshiro256++ generator with uniform ranges, slice
//! shuffling, and sampling without replacement. The API deliberately
//! mirrors the `rand` names used before the migration (`seed_from_u64`,
//! `gen_range`, `shuffle`, `choose_multiple`) so call sites read the
//! same.
//!
//! Determinism is part of the contract: the same seed always yields the
//! same stream, on every platform, so datasets and benchmark suites are
//! reproducible.

/// Seedable xoshiro256++ generator (public-domain algorithm by Blackman
/// and Vigna), seeded through SplitMix64 as its authors recommend.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Build a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> StdRng {
        // SplitMix64 expansion of the seed into the 256-bit state.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        StdRng { s }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample from a half-open range; implemented for the
    /// numeric range types the workspace uses.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Uniform `usize` in `[0, bound)`; `bound` must be nonzero.
    /// Debiased via rejection sampling on the top bits.
    fn bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range on an empty range");
        // Lemire-style widening multiply with rejection.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Fisher–Yates shuffle of a slice in place.
    pub fn shuffle<T>(&mut self, v: &mut [T]) {
        for i in (1..v.len()).rev() {
            let j = self.bounded(i as u64 + 1) as usize;
            v.swap(i, j);
        }
    }

    /// Sample `amount` distinct elements (by reference) without
    /// replacement, in selection order. If `amount >= len`, every element
    /// is returned (shuffled).
    pub fn choose_multiple<'a, T>(&mut self, v: &'a [T], amount: usize) -> Vec<&'a T> {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        self.shuffle(&mut idx);
        idx.truncate(amount.min(v.len()));
        idx.into_iter().map(|i| &v[i]).collect()
    }
}

/// Range types [`StdRng::gen_range`] accepts.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one uniform sample.
    fn sample(self, rng: &mut StdRng) -> Self::Output;
}

impl SampleRange for std::ops::Range<usize> {
    type Output = usize;
    fn sample(self, rng: &mut StdRng) -> usize {
        assert!(self.start < self.end, "gen_range on an empty range");
        self.start + rng.bounded((self.end - self.start) as u64) as usize
    }
}

impl SampleRange for std::ops::Range<u64> {
    type Output = u64;
    fn sample(self, rng: &mut StdRng) -> u64 {
        assert!(self.start < self.end, "gen_range on an empty range");
        self.start + rng.bounded(self.end - self.start)
    }
}

impl SampleRange for std::ops::RangeInclusive<usize> {
    type Output = usize;
    fn sample(self, rng: &mut StdRng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range on an empty range");
        lo + rng.bounded((hi - lo + 1) as u64) as usize
    }
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "gen_range on an empty range");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let u = rng.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let v = rng.gen_range(5usize..=5);
            assert_eq!(v, 5);
            let f = rng.gen_range(0.92f64..1.08);
            assert!((0.92..1.08).contains(&f));
        }
    }

    #[test]
    fn bounded_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        let expect = n / 8;
        for &c in &counts {
            assert!(
                (c as i64 - expect as i64).unsigned_abs() < (expect / 10) as u64,
                "bucket count {c} too far from {expect}"
            );
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // 50! >> 2^64 but identity after a shuffle of 50 is astronomically
        // unlikely; catching a non-shuffling bug is the point.
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_multiple_is_distinct_and_capped() {
        let mut rng = StdRng::seed_from_u64(9);
        let v: Vec<usize> = (0..20).collect();
        let picked = rng.choose_multiple(&v, 8);
        assert_eq!(picked.len(), 8);
        let mut vals: Vec<usize> = picked.iter().map(|&&x| x).collect();
        vals.sort_unstable();
        vals.dedup();
        assert_eq!(vals.len(), 8);
        assert_eq!(rng.choose_multiple(&v, 99).len(), 20);
    }
}
