//! Element trait: the scalar types a tensor can hold.
//!
//! The paper evaluates `float` (4 B) and `double` (8 B); its reported
//! bandwidth formula `2 * volume * 8 / time` uses 8-byte elements, so the
//! default element type across the benchmarks is `f64`.

/// A scalar element that can live in a [`crate::DenseTensor`].
///
/// The trait is deliberately tiny: TTLG only ever *moves* elements, never
/// computes with them, so all we need is `Copy`, a zero value, a way to
/// fabricate distinct test values, and the byte width (which drives the
/// GPU-transaction accounting: a 128-byte transaction holds `128 / BYTES`
/// elements).
pub trait Element: Copy + Send + Sync + PartialEq + std::fmt::Debug + 'static {
    /// Size of the element in bytes, as seen by the memory system.
    const BYTES: usize;

    /// The additive-identity element (used for zero-initialised outputs).
    fn zero() -> Self;

    /// A deterministic value derived from a linear index; used to fill
    /// tensors so that every element is distinguishable in correctness
    /// checks.
    fn from_index(idx: usize) -> Self;
}

impl Element for f32 {
    const BYTES: usize = 4;

    #[inline]
    fn zero() -> Self {
        0.0
    }

    #[inline]
    fn from_index(idx: usize) -> Self {
        // f32 mantissa holds 24 bits exactly; wrap so equality stays exact.
        (idx % (1 << 24)) as f32
    }
}

impl Element for f64 {
    const BYTES: usize = 8;

    #[inline]
    fn zero() -> Self {
        0.0
    }

    #[inline]
    fn from_index(idx: usize) -> Self {
        // f64 mantissa holds 53 bits exactly; tensors here are far smaller.
        idx as f64
    }
}

impl Element for u32 {
    const BYTES: usize = 4;

    #[inline]
    fn zero() -> Self {
        0
    }

    #[inline]
    fn from_index(idx: usize) -> Self {
        idx as u32
    }
}

impl Element for u64 {
    const BYTES: usize = 8;

    #[inline]
    fn zero() -> Self {
        0
    }

    #[inline]
    fn from_index(idx: usize) -> Self {
        idx as u64
    }
}

/// Number of elements of type `E` that fit in one 128-byte GPU transaction.
#[inline]
pub fn elems_per_transaction<E: Element>() -> usize {
    128 / E::BYTES
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_widths() {
        assert_eq!(f32::BYTES, 4);
        assert_eq!(f64::BYTES, 8);
        assert_eq!(u32::BYTES, 4);
        assert_eq!(u64::BYTES, 8);
    }

    #[test]
    fn elems_per_transaction_matches_paper() {
        // "the transaction size is 128 bytes, all the 32 elements can be
        // moved in a single transaction in case of float (two transactions
        // in case of double)"
        assert_eq!(elems_per_transaction::<f32>(), 32);
        assert_eq!(elems_per_transaction::<f64>(), 16);
    }

    #[test]
    fn from_index_is_injective_on_small_ranges() {
        for i in 0..10_000usize {
            assert_eq!(f64::from_index(i), i as f64);
            assert_eq!(u32::from_index(i), i as u32);
        }
    }

    #[test]
    fn f32_from_index_wraps_at_mantissa_limit() {
        assert_eq!(f32::from_index(1 << 24), 0.0);
        assert_eq!(f32::from_index((1 << 24) + 5), 5.0);
    }

    #[test]
    fn zero_values() {
        assert_eq!(f32::zero(), 0.0f32);
        assert_eq!(f64::zero(), 0.0f64);
        assert_eq!(u32::zero(), 0u32);
        assert_eq!(u64::zero(), 0u64);
    }
}
