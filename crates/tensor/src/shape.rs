//! Tensor shapes and row-of-strides math.
//!
//! Dimension 0 is the **fastest-varying** dimension (Fortran/MATLAB order,
//! matching the paper's abstract notation): `strides[0] == 1` and
//! `strides[k] == product(extent[0..k])`.

use crate::error::{Error, Result};

/// The extents of a dense tensor. Immutable after construction.
///
/// ```
/// use ttlg_tensor::Shape;
/// let s = Shape::new(&[4, 3, 5]).unwrap(); // dim 0 fastest-varying
/// assert_eq!(s.volume(), 60);
/// assert_eq!(s.strides(), vec![1, 4, 12]);
/// assert_eq!(s.linearize(&[1, 2, 3]), 1 + 2 * 4 + 3 * 12);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    extents: Vec<usize>,
}

impl std::fmt::Debug for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Shape{:?}", self.extents)
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let strs: Vec<String> = self.extents.iter().map(|e| e.to_string()).collect();
        write!(f, "[{}]", strs.join(" "))
    }
}

impl Shape {
    /// Build a shape from extents (dimension 0 fastest-varying).
    ///
    /// Every extent must be >= 1, there must be at least one dimension and
    /// the volume must not overflow `usize`.
    pub fn new(extents: &[usize]) -> Result<Self> {
        if extents.is_empty() || extents.contains(&0) {
            return Err(Error::EmptyShape);
        }
        let mut vol: usize = 1;
        for &e in extents {
            vol = vol.checked_mul(e).ok_or(Error::VolumeOverflow)?;
        }
        Ok(Shape {
            extents: extents.to_vec(),
        })
    }

    /// Number of dimensions.
    #[inline]
    pub fn rank(&self) -> usize {
        self.extents.len()
    }

    /// Extent of dimension `d` (0 = fastest varying).
    #[inline]
    pub fn extent(&self, d: usize) -> usize {
        self.extents[d]
    }

    /// All extents, fastest-varying first.
    #[inline]
    pub fn extents(&self) -> &[usize] {
        &self.extents
    }

    /// Total number of elements.
    #[inline]
    pub fn volume(&self) -> usize {
        self.extents.iter().product()
    }

    /// Strides for this shape (fastest-varying first): `strides[0] == 1`,
    /// `strides[k] == extent[0] * ... * extent[k-1]`.
    pub fn strides(&self) -> Vec<usize> {
        let mut s = Vec::with_capacity(self.rank());
        let mut acc = 1usize;
        for &e in &self.extents {
            s.push(acc);
            acc *= e;
        }
        s
    }

    /// Stride of a single dimension without materialising the whole vector.
    #[inline]
    pub fn stride(&self, d: usize) -> usize {
        self.extents[..d].iter().product()
    }

    /// Linear offset of a multi-index (must have `rank()` entries, each in
    /// range).
    #[inline]
    pub fn linearize(&self, idx: &[usize]) -> usize {
        debug_assert_eq!(idx.len(), self.rank());
        let mut off = 0usize;
        let mut stride = 1usize;
        for (i, &e) in self.extents.iter().enumerate() {
            debug_assert!(
                idx[i] < e,
                "index {} out of range for dim {i} (extent {e})",
                idx[i]
            );
            off += idx[i] * stride;
            stride *= e;
        }
        off
    }

    /// Inverse of [`Shape::linearize`]: decompose a linear offset into a
    /// multi-index (fastest-varying first). This is the `decode` of the
    /// paper's pseudocode — the expensive mod/div chain the kernels try to
    /// avoid in inner loops.
    pub fn delinearize(&self, mut off: usize) -> Vec<usize> {
        debug_assert!(off < self.volume());
        let mut idx = Vec::with_capacity(self.rank());
        for &e in &self.extents {
            idx.push(off % e);
            off /= e;
        }
        idx
    }

    /// In-place variant of [`Shape::delinearize`], for hot loops that reuse
    /// a scratch buffer.
    pub fn delinearize_into(&self, mut off: usize, out: &mut [usize]) {
        debug_assert_eq!(out.len(), self.rank());
        for (slot, &e) in out.iter_mut().zip(self.extents.iter()) {
            *slot = off % e;
            off /= e;
        }
    }

    /// Volume of the leading (fastest-varying) `k` dimensions.
    #[inline]
    pub fn prefix_volume(&self, k: usize) -> usize {
        self.extents[..k].iter().product()
    }

    /// Shape in bytes for elements of width `elem_bytes`.
    #[inline]
    pub fn bytes(&self, elem_bytes: usize) -> usize {
        self.volume() * elem_bytes
    }
}

impl From<Shape> for Vec<usize> {
    fn from(s: Shape) -> Self {
        s.extents
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_bad_shapes() {
        assert_eq!(Shape::new(&[]), Err(Error::EmptyShape));
        assert_eq!(Shape::new(&[4, 0, 2]), Err(Error::EmptyShape));
        assert_eq!(Shape::new(&[usize::MAX, 2]), Err(Error::VolumeOverflow));
    }

    #[test]
    fn strides_fastest_first() {
        let s = Shape::new(&[4, 3, 5]).unwrap();
        assert_eq!(s.strides(), vec![1, 4, 12]);
        assert_eq!(s.stride(0), 1);
        assert_eq!(s.stride(1), 4);
        assert_eq!(s.stride(2), 12);
        assert_eq!(s.volume(), 60);
    }

    #[test]
    fn linearize_roundtrip() {
        let s = Shape::new(&[3, 4, 5]).unwrap();
        for off in 0..s.volume() {
            let idx = s.delinearize(off);
            assert_eq!(s.linearize(&idx), off);
        }
    }

    #[test]
    fn delinearize_into_matches_delinearize() {
        let s = Shape::new(&[7, 2, 9]).unwrap();
        let mut buf = vec![0usize; 3];
        for off in 0..s.volume() {
            s.delinearize_into(off, &mut buf);
            assert_eq!(buf, s.delinearize(off));
        }
    }

    #[test]
    fn linearize_is_row0_fastest() {
        let s = Shape::new(&[4, 3]).unwrap();
        // (1, 0) is adjacent to (0, 0); (0, 1) is 4 apart.
        assert_eq!(s.linearize(&[1, 0]), 1);
        assert_eq!(s.linearize(&[0, 1]), 4);
    }

    #[test]
    fn prefix_volume() {
        let s = Shape::new(&[16, 2, 32, 32]).unwrap();
        assert_eq!(s.prefix_volume(0), 1);
        assert_eq!(s.prefix_volume(1), 16);
        assert_eq!(s.prefix_volume(2), 32);
        assert_eq!(s.prefix_volume(4), 32768);
    }

    #[test]
    fn display_and_debug() {
        let s = Shape::new(&[16, 16, 16]).unwrap();
        assert_eq!(s.to_string(), "[16 16 16]");
        assert_eq!(format!("{s:?}"), "Shape[16, 16, 16]");
    }

    #[test]
    fn bytes_accounts_element_width() {
        let s = Shape::new(&[10, 10]).unwrap();
        assert_eq!(s.bytes(8), 800);
        assert_eq!(s.bytes(4), 400);
    }
}
