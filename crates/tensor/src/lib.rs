//! # ttlg-tensor
//!
//! Foundation crate for TTLG-rs: dense tensors, shapes and strides,
//! index permutations, index fusion ("scaled rank"), a parallel naive
//! reference transpose, and the workload generators used throughout the
//! paper's evaluation (IPDPS 2018).
//!
//! ## Layout convention
//!
//! Following the paper (which uses the MATLAB/Fortran abstract notation),
//! **dimension 0 is the fastest-varying dimension**: element
//! `(i0, i1, ..., i_{d-1})` of a tensor with extents `(n0, n1, ...)` lives at
//! linear offset `i0 + i1*n0 + i2*n0*n1 + ...`.
//!
//! ## Permutation convention
//!
//! A transposition is described by a [`Permutation`] `p` with
//! `p[i] = j` meaning *the i-th dimension of the output corresponds to the
//! j-th dimension of the input* — exactly the paper's convention for its
//! figures (e.g. permutation `0 2 1 3`). So
//! `out[k0, k1, ..] = in[k_{p^{-1}(0)}, ..]`, equivalently
//! `out[i_{p[0]}, i_{p[1]}, ...] = in[i_0, i_1, ...]`.

pub mod element;
pub mod error;
pub mod fusion;
pub mod generator;
pub mod parallel;
pub mod permutation;
pub mod reference;
pub mod rng;
pub mod shape;
pub mod tensor;

pub use element::Element;
pub use error::{Error, Result};
pub use fusion::{fuse, FusedProblem};
pub use permutation::Permutation;
pub use shape::Shape;
pub use tensor::DenseTensor;

/// Warp size on every GPU generation the paper considers (and the constant
/// `WS` in all of the paper's pseudocode).
pub const WARP_SIZE: usize = 32;
