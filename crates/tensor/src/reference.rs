//! Naive reference transposition — the ground truth every kernel is checked
//! against, and the "d-nested loop" baseline the paper's introduction
//! describes.

use crate::element::Element;
use crate::error::{Error, Result};
use crate::parallel;
use crate::permutation::Permutation;
#[cfg(test)]
use crate::shape::Shape;
use crate::tensor::DenseTensor;

/// Transpose `input` by `perm` into a freshly allocated tensor:
/// `out[i_{p[0]}, i_{p[1]}, ...] = in[i_0, i_1, ...]`.
pub fn transpose_reference<E: Element>(
    input: &DenseTensor<E>,
    perm: &Permutation,
) -> Result<DenseTensor<E>> {
    let out_shape = perm.apply_to_shape(input.shape())?;
    let mut out = DenseTensor::zeros(out_shape);
    transpose_reference_into(input, perm, &mut out)?;
    Ok(out)
}

/// Transpose into a pre-allocated output tensor (its shape must equal
/// `perm.apply_to_shape(input.shape())`).
pub fn transpose_reference_into<E: Element>(
    input: &DenseTensor<E>,
    perm: &Permutation,
    out: &mut DenseTensor<E>,
) -> Result<()> {
    let expected = perm.apply_to_shape(input.shape())?;
    if out.shape() != &expected {
        return Err(Error::DataLengthMismatch {
            expected: expected.volume(),
            actual: out.volume(),
        });
    }
    let in_shape = input.shape().clone();
    let out_shape = out.shape().clone();
    let rank = in_shape.rank();

    // Strides of the *input* reordered to output-dimension order: walking
    // output dim i moves the input offset by in_stride[perm[i]].
    let in_strides = in_shape.strides();
    let perm_strides: Vec<usize> = perm.as_slice().iter().map(|&j| in_strides[j]).collect();

    let src = input.data();
    let dst = out.data_mut();
    let vol = out_shape.volume();

    // Parallelise over contiguous stretches of the output so stores are
    // sequential; each worker walks the output index space with an odometer
    // and accumulates the matching input offset incrementally.
    let parts = if vol >= 1 << 16 {
        parallel::default_threads()
    } else {
        1
    };
    parallel::parallel_fill(dst, parts, |_, start, chunk| {
        let mut out_idx = vec![0usize; rank];
        out_shape.delinearize_into(start, &mut out_idx);
        let mut in_off: usize = out_idx
            .iter()
            .zip(perm_strides.iter())
            .map(|(&i, &s)| i * s)
            .sum();
        for slot in chunk.iter_mut() {
            *slot = src[in_off];
            // Odometer increment over the output index space, updating the
            // input offset in O(1) amortised.
            for d in 0..rank {
                out_idx[d] += 1;
                in_off += perm_strides[d];
                if out_idx[d] < out_shape.extent(d) {
                    break;
                }
                in_off -= perm_strides[d] * out_shape.extent(d);
                out_idx[d] = 0;
            }
        }
    });
    Ok(())
}

/// Fully sequential elementary implementation used to validate the
/// odometer-based one (tests only — O(rank) mod/div per element).
pub fn transpose_elementary<E: Element>(
    input: &DenseTensor<E>,
    perm: &Permutation,
) -> Result<DenseTensor<E>> {
    let out_shape = perm.apply_to_shape(input.shape())?;
    let mut out = DenseTensor::zeros(out_shape.clone());
    let rank = input.rank();
    let mut in_idx = vec![0usize; rank];
    let mut out_idx = vec![0usize; rank];
    for off in 0..input.volume() {
        input.shape().delinearize_into(off, &mut in_idx);
        perm.apply_to_index(&in_idx, &mut out_idx);
        let o = out_shape.linearize(&out_idx);
        out.data_mut()[o] = input.data()[off];
    }
    Ok(out)
}

/// Check two tensors are element-wise identical, returning the first
/// mismatching linear offset if any.
pub fn first_mismatch<E: Element>(a: &DenseTensor<E>, b: &DenseTensor<E>) -> Option<usize> {
    if a.shape() != b.shape() {
        return Some(0);
    }
    a.data()
        .iter()
        .zip(b.data().iter())
        .position(|(x, y)| x != y)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(extents: &[usize]) -> DenseTensor<u32> {
        DenseTensor::iota(Shape::new(extents).unwrap())
    }

    #[test]
    fn matrix_transpose_2d() {
        let t = mk(&[3, 2]); // 3 fast, 2 slow: [[0,1,2],[3,4,5]] conceptually
        let p = Permutation::reversal(2);
        let out = transpose_reference(&t, &p).unwrap();
        assert_eq!(out.shape().extents(), &[2, 3]);
        // out[j, i] = in[i, j]
        for i in 0..3 {
            for j in 0..2 {
                assert_eq!(out.get(&[j, i]), t.get(&[i, j]));
            }
        }
    }

    #[test]
    fn identity_is_copy() {
        let t = mk(&[4, 5, 6]);
        let out = transpose_reference(&t, &Permutation::identity(3)).unwrap();
        assert_eq!(out.data(), t.data());
    }

    #[test]
    fn agrees_with_elementary_all_rank3_perms() {
        let t = mk(&[4, 3, 5]);
        for p in Permutation::all(3) {
            let fast = transpose_reference(&t, &p).unwrap();
            let slow = transpose_elementary(&t, &p).unwrap();
            assert_eq!(first_mismatch(&fast, &slow), None, "perm {p}");
        }
    }

    #[test]
    fn agrees_with_elementary_all_rank4_perms_awkward_extents() {
        let t = mk(&[7, 1, 5, 3]);
        for p in Permutation::all(4) {
            let fast = transpose_reference(&t, &p).unwrap();
            let slow = transpose_elementary(&t, &p).unwrap();
            assert_eq!(first_mismatch(&fast, &slow), None, "perm {p}");
        }
    }

    #[test]
    fn large_tensor_parallel_path() {
        // Big enough to trigger the parallel path (vol >= 1<<16).
        let t = mk(&[64, 32, 64]);
        let p = Permutation::new(&[2, 0, 1]).unwrap();
        let fast = transpose_reference(&t, &p).unwrap();
        let slow = transpose_elementary(&t, &p).unwrap();
        assert_eq!(first_mismatch(&fast, &slow), None);
    }

    #[test]
    fn into_rejects_wrong_shape() {
        let t = mk(&[3, 4]);
        let p = Permutation::reversal(2);
        let mut bad = DenseTensor::zeros(Shape::new(&[3, 4]).unwrap());
        assert!(transpose_reference_into(&t, &p, &mut bad).is_err());
    }

    #[test]
    fn transpose_twice_with_inverse_is_identity() {
        let t = mk(&[5, 6, 7]);
        let p = Permutation::new(&[1, 2, 0]).unwrap();
        let once = transpose_reference(&t, &p).unwrap();
        let back = transpose_reference(&once, &p.inverse()).unwrap();
        assert_eq!(first_mismatch(&back, &t), None);
    }

    #[test]
    fn first_mismatch_detects_difference() {
        let a = mk(&[4, 4]);
        let mut b = a.clone();
        assert_eq!(first_mismatch(&a, &b), None);
        b.data_mut()[7] = 999;
        assert_eq!(first_mismatch(&a, &b), Some(7));
        let c = mk(&[2, 8]);
        assert_eq!(first_mismatch(&a, &c), Some(0)); // shape mismatch
    }
}
