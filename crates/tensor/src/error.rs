//! Error type shared across the TTLG-rs workspace foundation.

use std::fmt;

/// Errors produced by shape/permutation/tensor construction and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A permutation was not a bijection over `0..rank`.
    InvalidPermutation {
        /// The offending permutation, as given.
        perm: Vec<usize>,
    },
    /// Permutation rank and shape rank disagree.
    RankMismatch {
        /// Rank implied by the shape.
        shape_rank: usize,
        /// Rank implied by the permutation.
        perm_rank: usize,
    },
    /// A shape had a zero extent or no dimensions where one was required.
    EmptyShape,
    /// Tensor data length does not match the shape volume.
    DataLengthMismatch {
        /// Expected number of elements (shape volume).
        expected: usize,
        /// Actual buffer length.
        actual: usize,
    },
    /// A tensor volume would overflow `usize`.
    VolumeOverflow,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidPermutation { perm } => {
                write!(
                    f,
                    "invalid permutation {perm:?}: not a bijection over 0..rank"
                )
            }
            Error::RankMismatch {
                shape_rank,
                perm_rank,
            } => write!(
                f,
                "rank mismatch: shape has rank {shape_rank}, permutation has rank {perm_rank}"
            ),
            Error::EmptyShape => write!(f, "shape must have at least one dimension of extent >= 1"),
            Error::DataLengthMismatch { expected, actual } => write!(
                f,
                "data length mismatch: shape volume is {expected}, buffer has {actual} elements"
            ),
            Error::VolumeOverflow => write!(f, "tensor volume overflows usize"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = Error::InvalidPermutation {
            perm: vec![0, 0, 1],
        };
        assert!(e.to_string().contains("[0, 0, 1]"));
        let e = Error::RankMismatch {
            shape_rank: 3,
            perm_rank: 4,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('4'));
        let e = Error::DataLengthMismatch {
            expected: 10,
            actual: 9,
        };
        assert!(e.to_string().contains("10") && e.to_string().contains('9'));
        assert!(!Error::EmptyShape.to_string().is_empty());
        assert!(!Error::VolumeOverflow.to_string().is_empty());
    }

    #[test]
    fn error_is_std_error() {
        fn takes_std_error<E: std::error::Error>(_e: E) {}
        takes_std_error(Error::EmptyShape);
    }
}
