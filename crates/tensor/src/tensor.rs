//! Dense tensors backed by a contiguous buffer (dimension 0 fastest).

use crate::element::Element;
use crate::error::{Error, Result};
use crate::parallel;
use crate::shape::Shape;

/// A dense, row-0-fastest tensor owning its storage.
#[derive(Clone, Debug, PartialEq)]
pub struct DenseTensor<E: Element> {
    shape: Shape,
    data: Vec<E>,
}

impl<E: Element> DenseTensor<E> {
    /// Allocate a zero-filled tensor.
    pub fn zeros(shape: Shape) -> Self {
        let vol = shape.volume();
        DenseTensor {
            shape,
            data: vec![E::zero(); vol],
        }
    }

    /// Build from existing data; the buffer length must equal the shape
    /// volume.
    pub fn from_data(shape: Shape, data: Vec<E>) -> Result<Self> {
        if data.len() != shape.volume() {
            return Err(Error::DataLengthMismatch {
                expected: shape.volume(),
                actual: data.len(),
            });
        }
        Ok(DenseTensor { shape, data })
    }

    /// A tensor whose element at linear offset `k` is `E::from_index(k)` —
    /// every element distinct (up to the element type's range), which makes
    /// transposition bugs loud in tests. Filled in parallel for large
    /// volumes.
    pub fn iota(shape: Shape) -> Self {
        let vol = shape.volume();
        let mut data = vec![E::zero(); vol];
        if vol >= 1 << 20 {
            parallel::parallel_fill(&mut data, parallel::default_threads(), |_, off, chunk| {
                for (k, slot) in chunk.iter_mut().enumerate() {
                    *slot = E::from_index(off + k);
                }
            });
        } else {
            for (k, slot) in data.iter_mut().enumerate() {
                *slot = E::from_index(k);
            }
        }
        DenseTensor { shape, data }
    }

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Rank (number of dimensions).
    #[inline]
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total element count.
    #[inline]
    pub fn volume(&self) -> usize {
        self.data.len()
    }

    /// Size of the payload in bytes.
    #[inline]
    pub fn bytes(&self) -> usize {
        self.data.len() * E::BYTES
    }

    /// Read-only view of the linearized storage.
    #[inline]
    pub fn data(&self) -> &[E] {
        &self.data
    }

    /// Mutable view of the linearized storage.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [E] {
        &mut self.data
    }

    /// Element at a multi-index.
    #[inline]
    pub fn get(&self, idx: &[usize]) -> E {
        self.data[self.shape.linearize(idx)]
    }

    /// Write an element at a multi-index.
    #[inline]
    pub fn set(&mut self, idx: &[usize], v: E) {
        let off = self.shape.linearize(idx);
        self.data[off] = v;
    }

    /// Consume the tensor, returning its storage.
    pub fn into_data(self) -> Vec<E> {
        self.data
    }

    /// Reinterpret the tensor with a different shape of identical volume
    /// (a free operation on a dense row-0-fastest layout).
    pub fn reshape(self, shape: Shape) -> Result<Self> {
        if shape.volume() != self.data.len() {
            return Err(Error::DataLengthMismatch {
                expected: shape.volume(),
                actual: self.data.len(),
            });
        }
        Ok(DenseTensor {
            shape,
            data: self.data,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_right_volume() {
        let t: DenseTensor<f64> = DenseTensor::zeros(Shape::new(&[3, 4]).unwrap());
        assert_eq!(t.volume(), 12);
        assert!(t.data().iter().all(|&x| x == 0.0));
        assert_eq!(t.bytes(), 96);
    }

    #[test]
    fn iota_is_linear_index() {
        let t: DenseTensor<u32> = DenseTensor::iota(Shape::new(&[4, 5]).unwrap());
        for k in 0..20 {
            assert_eq!(t.data()[k], k as u32);
        }
    }

    #[test]
    fn iota_parallel_path_matches_sequential() {
        // Cross the 1<<20 threshold to exercise parallel_fill.
        let shape = Shape::new(&[1 << 11, 1 << 10]).unwrap();
        let t: DenseTensor<u32> = DenseTensor::iota(shape);
        for (k, &v) in t.data().iter().step_by(4097).enumerate() {
            assert_eq!(v, (k * 4097) as u32);
        }
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t: DenseTensor<f64> = DenseTensor::zeros(Shape::new(&[3, 4, 5]).unwrap());
        t.set(&[2, 3, 4], 99.0);
        assert_eq!(t.get(&[2, 3, 4]), 99.0);
        // linear position: 2 + 3*3 + 4*12 = 59
        assert_eq!(t.data()[59], 99.0);
    }

    #[test]
    fn from_data_validates_length() {
        let s = Shape::new(&[2, 2]).unwrap();
        assert!(DenseTensor::from_data(s.clone(), vec![1.0f64; 3]).is_err());
        assert!(DenseTensor::from_data(s, vec![1.0f64; 4]).is_ok());
    }

    #[test]
    fn reshape_preserves_data() {
        let t: DenseTensor<u32> = DenseTensor::iota(Shape::new(&[6, 4]).unwrap());
        let r = t.clone().reshape(Shape::new(&[3, 8]).unwrap()).unwrap();
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(Shape::new(&[5, 5]).unwrap()).is_err());
    }
}
