//! Index permutations.
//!
//! `perm[i] = j` means *output dimension `i` is input dimension `j`* — the
//! paper's convention ("P\[i\] = j means the i-th dimension in the output
//! corresponds to the j-th dimension in the input").

use crate::error::{Error, Result};
use crate::shape::Shape;

/// A permutation of `0..rank`.
///
/// ```
/// use ttlg_tensor::{Permutation, Shape};
/// // out dim i = in dim perm[i]: [a,b,c] => [c,a,b]
/// let p = Permutation::new(&[2, 0, 1]).unwrap();
/// let s = Shape::new(&[4, 5, 6]).unwrap();
/// assert_eq!(p.apply_to_shape(&s).unwrap().extents(), &[6, 4, 5]);
/// assert!(p.compose(&p.inverse()).unwrap().is_identity());
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Permutation {
    map: Vec<usize>,
}

impl std::fmt::Debug for Permutation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Perm{:?}", self.map)
    }
}

impl std::fmt::Display for Permutation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let strs: Vec<String> = self.map.iter().map(|e| e.to_string()).collect();
        write!(f, "{}", strs.join(" "))
    }
}

impl Permutation {
    /// Validate and build a permutation from `perm[i] = j` entries.
    pub fn new(map: &[usize]) -> Result<Self> {
        let n = map.len();
        let mut seen = vec![false; n];
        for &j in map {
            if j >= n || seen[j] {
                return Err(Error::InvalidPermutation { perm: map.to_vec() });
            }
            seen[j] = true;
        }
        Ok(Permutation { map: map.to_vec() })
    }

    /// The identity permutation of the given rank.
    pub fn identity(rank: usize) -> Self {
        Permutation {
            map: (0..rank).collect(),
        }
    }

    /// Full reversal `[d-1, d-2, ..., 0]` (the classic transpose).
    pub fn reversal(rank: usize) -> Self {
        Permutation {
            map: (0..rank).rev().collect(),
        }
    }

    /// Number of dimensions permuted.
    #[inline]
    pub fn rank(&self) -> usize {
        self.map.len()
    }

    /// `perm[i]`: which input dimension feeds output dimension `i`.
    #[inline]
    pub fn output_dim_source(&self, i: usize) -> usize {
        self.map[i]
    }

    /// Raw mapping slice.
    #[inline]
    pub fn as_slice(&self) -> &[usize] {
        &self.map
    }

    /// Whether this is the identity (no data movement needed beyond a copy).
    pub fn is_identity(&self) -> bool {
        self.map.iter().enumerate().all(|(i, &j)| i == j)
    }

    /// The inverse permutation: if `self[i] = j`, then `inv[j] = i`.
    /// Output dim of input dim `j` is `inverse()[j]`.
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0usize; self.map.len()];
        for (i, &j) in self.map.iter().enumerate() {
            inv[j] = i;
        }
        Permutation { map: inv }
    }

    /// Compose: apply `self` after `other` (`(self∘other)[i] = other[self[i]]`).
    ///
    /// If `other` maps tensor A to tensor B and `self` maps B to C, the
    /// composition maps A to C.
    pub fn compose(&self, other: &Permutation) -> Result<Permutation> {
        if self.rank() != other.rank() {
            return Err(Error::RankMismatch {
                shape_rank: other.rank(),
                perm_rank: self.rank(),
            });
        }
        let map: Vec<usize> = self.map.iter().map(|&i| other.map[i]).collect();
        Ok(Permutation { map })
    }

    /// Shape of the output tensor for an input of shape `shape`:
    /// `out_extent[i] = in_extent[perm[i]]`.
    pub fn apply_to_shape(&self, shape: &Shape) -> Result<Shape> {
        if self.rank() != shape.rank() {
            return Err(Error::RankMismatch {
                shape_rank: shape.rank(),
                perm_rank: self.rank(),
            });
        }
        let ext: Vec<usize> = self.map.iter().map(|&j| shape.extent(j)).collect();
        Shape::new(&ext)
    }

    /// Permute a multi-index from input order to output order:
    /// `out_idx[i] = in_idx[perm[i]]`.
    pub fn apply_to_index(&self, in_idx: &[usize], out_idx: &mut [usize]) {
        debug_assert_eq!(in_idx.len(), self.rank());
        debug_assert_eq!(out_idx.len(), self.rank());
        for (o, &j) in out_idx.iter_mut().zip(self.map.iter()) {
            *o = in_idx[j];
        }
    }

    /// Whether the fastest-varying index matches between input and output
    /// (the paper's *FVI Match* family: `i0 == rho(i0)`).
    #[inline]
    pub fn fvi_matches(&self) -> bool {
        self.map[0] == 0
    }

    /// Iterate over all permutations of `0..rank` in lexicographic order.
    /// Used by the all-720-permutations experiments (rank 6).
    pub fn all(rank: usize) -> AllPermutations {
        AllPermutations {
            next: Some((0..rank).collect()),
        }
    }
}

/// Iterator over all permutations of a given rank, lexicographic order.
pub struct AllPermutations {
    next: Option<Vec<usize>>,
}

impl Iterator for AllPermutations {
    type Item = Permutation;

    fn next(&mut self) -> Option<Permutation> {
        let cur = self.next.take()?;
        let result = Permutation { map: cur.clone() };
        // Classic next-permutation step.
        let mut v = cur;
        let n = v.len();
        if n > 1 {
            let mut i = n - 1;
            while i > 0 && v[i - 1] >= v[i] {
                i -= 1;
            }
            if i == 0 {
                self.next = None;
            } else {
                let mut j = n - 1;
                while v[j] <= v[i - 1] {
                    j -= 1;
                }
                v.swap(i - 1, j);
                v[i..].reverse();
                self.next = Some(v);
            }
        } else {
            self.next = None;
        }
        Some(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates() {
        assert!(Permutation::new(&[0, 2, 1]).is_ok());
        assert!(Permutation::new(&[0, 0, 1]).is_err());
        assert!(Permutation::new(&[0, 3, 1]).is_err());
        assert!(Permutation::new(&[]).is_ok()); // degenerate but harmless
    }

    #[test]
    fn identity_and_reversal() {
        assert!(Permutation::identity(4).is_identity());
        let r = Permutation::reversal(4);
        assert_eq!(r.as_slice(), &[3, 2, 1, 0]);
        assert!(!r.is_identity());
    }

    #[test]
    fn inverse_composes_to_identity() {
        let p = Permutation::new(&[2, 0, 3, 1]).unwrap();
        let inv = p.inverse();
        assert!(p.compose(&inv).unwrap().is_identity());
        assert!(inv.compose(&p).unwrap().is_identity());
    }

    #[test]
    fn apply_to_shape_permutes_extents() {
        let s = Shape::new(&[8, 2, 8, 4]).unwrap();
        // [a b c d] => [c b d a]
        let p = Permutation::new(&[2, 1, 3, 0]).unwrap();
        let out = p.apply_to_shape(&s).unwrap();
        assert_eq!(out.extents(), &[8, 2, 4, 8]);
    }

    #[test]
    fn apply_to_index_matches_shape_rule() {
        let p = Permutation::new(&[2, 0, 1]).unwrap();
        let mut out = [0usize; 3];
        p.apply_to_index(&[10, 20, 30], &mut out);
        assert_eq!(out, [30, 10, 20]);
    }

    #[test]
    fn fvi_match_detection() {
        assert!(Permutation::new(&[0, 3, 2, 1]).unwrap().fvi_matches());
        assert!(!Permutation::new(&[3, 1, 2, 0]).unwrap().fvi_matches());
    }

    #[test]
    fn all_permutations_count_and_uniqueness() {
        let perms: Vec<Permutation> = Permutation::all(4).collect();
        assert_eq!(perms.len(), 24);
        let set: std::collections::HashSet<Vec<usize>> =
            perms.iter().map(|p| p.as_slice().to_vec()).collect();
        assert_eq!(set.len(), 24);
        // first is identity, last is reversal (lexicographic order)
        assert!(perms[0].is_identity());
        assert_eq!(perms[23].as_slice(), &[3, 2, 1, 0]);
    }

    #[test]
    fn all_permutations_rank6_is_720() {
        assert_eq!(Permutation::all(6).count(), 720);
    }

    #[test]
    fn rank_mismatch_errors() {
        let s = Shape::new(&[2, 3]).unwrap();
        let p = Permutation::new(&[0, 2, 1]).unwrap();
        assert!(matches!(
            p.apply_to_shape(&s),
            Err(Error::RankMismatch { .. })
        ));
    }

    #[test]
    fn transpose_semantics_2d() {
        // out[i, j] = in[j, i] under reversal: out extent swaps.
        let s = Shape::new(&[4, 3]).unwrap();
        let p = Permutation::reversal(2);
        let out = p.apply_to_shape(&s).unwrap();
        assert_eq!(out.extents(), &[3, 4]);
    }
}
