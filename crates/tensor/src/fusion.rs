//! Index fusion ("scaled rank").
//!
//! The paper (Sec. III, Fig. 3): *"index fusion refers to fusing the indices
//! that occur consecutively both in the input and in the output tensors"*.
//! E.g. for `[i0,i1,i2,i3] => [i3,i1,i2,i0]`, dims 1 and 2 appear adjacent
//! and in the same order in both tensors, so they fuse into one virtual
//! dimension of extent `n1*n2`; the problem becomes the rank-3 transposition
//! `[i0',i1',i2'] => [i2',i1',i0']`. The rank after fusion is the *scaled
//! rank* used to group the 720-permutation charts (Figs. 6-11).

use crate::error::Result;
use crate::permutation::Permutation;
use crate::shape::Shape;

/// The result of fusing a transposition problem.
#[derive(Debug, Clone)]
pub struct FusedProblem {
    /// Shape of the fused input tensor.
    pub shape: Shape,
    /// Permutation on the fused dimensions.
    pub perm: Permutation,
    /// For each fused input dimension, the contiguous run of original input
    /// dimensions it covers (in input order, fastest-varying first).
    pub groups: Vec<Vec<usize>>,
}

impl FusedProblem {
    /// Rank after fusion — the paper's *scaled rank*.
    #[inline]
    pub fn scaled_rank(&self) -> usize {
        self.shape.rank()
    }
}

/// Fuse consecutive indices of `(shape, perm)`.
///
/// ```
/// use ttlg_tensor::{fuse, Permutation, Shape};
/// // [i0,i1,i2,i3] => [i3,i1,i2,i0]: dims 1,2 fuse -> scaled rank 3.
/// let s = Shape::new(&[5, 6, 7, 8]).unwrap();
/// let p = Permutation::new(&[3, 1, 2, 0]).unwrap();
/// let f = fuse(&s, &p).unwrap();
/// assert_eq!(f.scaled_rank(), 3);
/// assert_eq!(f.shape.extents(), &[5, 42, 8]);
/// ```
///
/// Two input dimensions `j` and `j+1` fuse when they are also adjacent and
/// in the same order in the output, i.e. there is an output position `i`
/// with `perm[i] == j` and `perm[i+1] == j+1`. Fusion is applied
/// transitively to maximal runs. An identity permutation fuses to rank 1.
pub fn fuse(shape: &Shape, perm: &Permutation) -> Result<FusedProblem> {
    let n = shape.rank();
    assert_eq!(perm.rank(), n, "shape and permutation rank must agree");

    // Find maximal runs in output order where the source input dims are
    // consecutive ascending.
    let mut runs: Vec<Vec<usize>> = Vec::new();
    let p = perm.as_slice();
    let mut i = 0;
    while i < n {
        let mut run = vec![p[i]];
        while i + 1 < n && p[i + 1] == p[i] + 1 {
            i += 1;
            run.push(p[i]);
        }
        runs.push(run);
        i += 1;
    }

    // Order the runs by their first input dimension: that is the fused
    // input order. Each run is contiguous in the input by construction.
    let mut groups = runs.clone();
    groups.sort_by_key(|r| r[0]);

    // Fused input shape: product of extents in each group.
    let fused_extents: Vec<usize> = groups
        .iter()
        .map(|g| g.iter().map(|&d| shape.extent(d)).product())
        .collect();
    let fused_shape = Shape::new(&fused_extents)?;

    // Fused permutation: output run k corresponds to the group with the
    // same leading input dim.
    let mut group_of_leading = std::collections::HashMap::new();
    for (gi, g) in groups.iter().enumerate() {
        group_of_leading.insert(g[0], gi);
    }
    let fused_map: Vec<usize> = runs.iter().map(|r| group_of_leading[&r[0]]).collect();
    let fused_perm = Permutation::new(&fused_map)?;

    Ok(FusedProblem {
        shape: fused_shape,
        perm: fused_perm,
        groups,
    })
}

/// Scaled rank without materialising the fused problem.
pub fn scaled_rank(perm: &Permutation) -> usize {
    let p = perm.as_slice();
    let n = p.len();
    if n == 0 {
        return 0;
    }
    let mut rank = 1;
    for i in 1..n {
        if p[i] != p[i - 1] + 1 {
            rank += 1;
        }
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(extents: &[usize], perm: &[usize]) -> (Shape, Permutation) {
        (
            Shape::new(extents).unwrap(),
            Permutation::new(perm).unwrap(),
        )
    }

    #[test]
    fn paper_example_rank4_to_rank3() {
        // [i0,i1,i2,i3] => [i3,i1,i2,i0]; i1,i2 fuse.
        let (s, p) = mk(&[5, 6, 7, 8], &[3, 1, 2, 0]);
        let f = fuse(&s, &p).unwrap();
        assert_eq!(f.scaled_rank(), 3);
        assert_eq!(f.shape.extents(), &[5, 42, 8]);
        assert_eq!(f.perm.as_slice(), &[2, 1, 0]);
        assert_eq!(f.groups, vec![vec![0], vec![1, 2], vec![3]]);
    }

    #[test]
    fn identity_fuses_to_rank1() {
        let (s, p) = mk(&[4, 5, 6], &[0, 1, 2]);
        let f = fuse(&s, &p).unwrap();
        assert_eq!(f.scaled_rank(), 1);
        assert_eq!(f.shape.extents(), &[120]);
        assert!(f.perm.is_identity());
    }

    #[test]
    fn reversal_never_fuses() {
        let (s, p) = mk(&[2, 3, 4, 5], &[3, 2, 1, 0]);
        let f = fuse(&s, &p).unwrap();
        assert_eq!(f.scaled_rank(), 4);
        assert_eq!(f.shape.extents(), s.extents());
        assert_eq!(f.perm.as_slice(), &[3, 2, 1, 0]);
    }

    #[test]
    fn paper_scaled_rank_example() {
        // Permutation (0 2 1 3 4 6 5) of rank 7: dims 3,4 contiguous in both
        // => scaled rank 6 (stated in Sec. VI for a similar 6D case).
        let p = Permutation::new(&[0, 2, 1, 3, 4, 6, 5]).unwrap();
        assert_eq!(scaled_rank(&p), 6);
    }

    #[test]
    fn scaled_rank_agrees_with_fuse() {
        let s = Shape::new(&[3, 4, 5, 6, 7]).unwrap();
        for p in Permutation::all(5) {
            let f = fuse(&s, &p).unwrap();
            assert_eq!(f.scaled_rank(), scaled_rank(&p), "perm {p}");
        }
    }

    #[test]
    fn fusion_preserves_volume() {
        let s = Shape::new(&[3, 4, 5, 6]).unwrap();
        for p in Permutation::all(4) {
            let f = fuse(&s, &p).unwrap();
            assert_eq!(f.shape.volume(), s.volume());
        }
    }

    #[test]
    fn fused_perm_is_valid_and_consistent() {
        let s = Shape::new(&[2, 3, 4, 5, 6, 7]).unwrap();
        for p in Permutation::all(6) {
            let f = fuse(&s, &p).unwrap();
            // applying fused perm to fused shape must equal fusing the
            // output shape's grouped extents
            let fused_out = f.perm.apply_to_shape(&f.shape).unwrap();
            let orig_out = p.apply_to_shape(&s).unwrap();
            assert_eq!(fused_out.volume(), orig_out.volume());
        }
    }

    #[test]
    fn groups_cover_all_dims_exactly_once() {
        let s = Shape::new(&[2, 3, 4, 5, 6]).unwrap();
        for p in Permutation::all(5) {
            let f = fuse(&s, &p).unwrap();
            let mut all: Vec<usize> = f.groups.iter().flatten().copied().collect();
            all.sort_unstable();
            assert_eq!(all, (0..5).collect::<Vec<_>>());
            // each group is a contiguous ascending run
            for g in &f.groups {
                for w in g.windows(2) {
                    assert_eq!(w[1], w[0] + 1);
                }
            }
        }
    }

    #[test]
    fn trailing_fusion() {
        // [a,b,c] => [c,a,b]: a,b adjacent in both => fuse.
        let (s, p) = mk(&[4, 5, 6], &[2, 0, 1]);
        let f = fuse(&s, &p).unwrap();
        assert_eq!(f.scaled_rank(), 2);
        assert_eq!(f.shape.extents(), &[20, 6]);
        assert_eq!(f.perm.as_slice(), &[1, 0]);
    }
}
