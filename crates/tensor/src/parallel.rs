//! A minimal data-parallel runtime built on crossbeam scoped threads.
//!
//! The workspace's allowed dependency list does not include rayon, so this
//! module provides the small subset we need: a chunked parallel-for over an
//! index range with dynamic (atomic counter) load balancing, and a parallel
//! map-reduce. Work items are claimed in fixed-size chunks to amortise the
//! atomic traffic.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use: the number of logical CPUs, capped so
/// that small test machines do not oversubscribe.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(64)
}

/// Run `body(i)` for every `i in 0..n`, in parallel, with dynamic chunked
/// scheduling. `body` must be `Sync` since multiple workers call it.
pub fn parallel_for<F>(n: usize, chunk: usize, body: F)
where
    F: Fn(usize) + Sync,
{
    parallel_for_threads(n, chunk, default_threads(), body)
}

/// [`parallel_for`] with an explicit worker count (1 = sequential).
pub fn parallel_for_threads<F>(n: usize, chunk: usize, threads: usize, body: F)
where
    F: Fn(usize) + Sync,
{
    if n == 0 {
        return;
    }
    let chunk = chunk.max(1);
    let threads = threads.max(1).min(n.div_ceil(chunk));
    if threads == 1 {
        for i in 0..n {
            body(i);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    crossbeam::scope(|s| {
        for _ in 0..threads {
            s.spawn(|_| loop {
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + chunk).min(n);
                for i in start..end {
                    body(i);
                }
            });
        }
    })
    .expect("parallel_for worker panicked");
}

/// Parallel map-reduce over `0..n`: each worker folds chunks locally with
/// `fold`, and the per-worker accumulators are combined with `combine`.
pub fn parallel_map_reduce<T, FInit, FFold, FCombine>(
    n: usize,
    chunk: usize,
    init: FInit,
    fold: FFold,
    combine: FCombine,
) -> T
where
    T: Send,
    FInit: Fn() -> T + Sync,
    FFold: Fn(T, usize) -> T + Sync,
    FCombine: Fn(T, T) -> T + Sync,
{
    let threads = default_threads().max(1);
    if n == 0 {
        return init();
    }
    let chunk = chunk.max(1);
    let threads = threads.min(n.div_ceil(chunk));
    if threads == 1 {
        let mut acc = init();
        for i in 0..n {
            acc = fold(acc, i);
        }
        return acc;
    }
    let next = AtomicUsize::new(0);
    let partials = parking_lot_free_collect(threads, |_| {
        let mut acc = init();
        loop {
            let start = next.fetch_add(chunk, Ordering::Relaxed);
            if start >= n {
                break;
            }
            let end = (start + chunk).min(n);
            for i in start..end {
                acc = fold(acc, i);
            }
        }
        acc
    });
    let mut iter = partials.into_iter();
    let first = iter.next().expect("at least one worker");
    iter.fold(first, |a, b| combine(a, b))
}

/// Spawn `threads` scoped workers running `f(worker_idx)` and collect their
/// results in worker order.
fn parking_lot_free_collect<T: Send, F: Fn(usize) -> T + Sync>(threads: usize, f: F) -> Vec<T> {
    let mut out: Vec<Option<T>> = (0..threads).map(|_| None).collect();
    crossbeam::scope(|s| {
        let mut handles = Vec::with_capacity(threads);
        for w in 0..threads {
            let f = &f;
            handles.push(s.spawn(move |_| f(w)));
        }
        for (w, h) in handles.into_iter().enumerate() {
            out[w] = Some(h.join().expect("worker panicked"));
        }
    })
    .expect("scope failed");
    out.into_iter().map(|o| o.expect("worker result missing")).collect()
}

/// Split a mutable slice into exact `chunk_len`-sized sub-slices (last one
/// possibly shorter) and run `body(chunk_idx, sub_slice)` on each in
/// parallel. Unlike [`parallel_fill`], chunk boundaries are exact, so
/// callers can rely on alignment (e.g. whole matrix columns).
pub fn parallel_chunks_mut<T: Send, F>(data: &mut [T], chunk_len: usize, body: F)
where
    F: Fn(usize, &mut [T]) + Sync,
{
    if data.is_empty() {
        return;
    }
    let chunk_len = chunk_len.max(1);
    let chunks: Vec<(usize, &mut [T])> = data.chunks_mut(chunk_len).enumerate().collect();
    let n = chunks.len();
    let threads = default_threads().min(n);
    if threads <= 1 {
        for (i, c) in chunks {
            body(i, c);
        }
        return;
    }
    let queue = std::sync::Mutex::new(chunks);
    crossbeam::scope(|s| {
        for _ in 0..threads {
            s.spawn(|_| loop {
                let item = queue.lock().expect("queue poisoned").pop();
                match item {
                    Some((i, c)) => body(i, c),
                    None => break,
                }
            });
        }
    })
    .expect("parallel_chunks_mut worker panicked");
}

/// Split a mutable slice into `parts` nearly-equal sub-slices and run
/// `body(part_idx, sub_slice)` on each in parallel. Useful for filling
/// large buffers.
pub fn parallel_fill<T: Send, F>(data: &mut [T], parts: usize, body: F)
where
    F: Fn(usize, usize, &mut [T]) + Sync,
{
    let n = data.len();
    if n == 0 {
        return;
    }
    let parts = parts.max(1).min(n);
    let base = n / parts;
    let rem = n % parts;
    crossbeam::scope(|s| {
        let mut rest = data;
        let mut offset = 0usize;
        for p in 0..parts {
            let len = base + usize::from(p < rem);
            let (head, tail) = rest.split_at_mut(len);
            let body = &body;
            let off = offset;
            s.spawn(move |_| body(p, off, head));
            rest = tail;
            offset += len;
        }
    })
    .expect("parallel_fill worker panicked");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parallel_for_visits_every_index_once() {
        let n = 10_000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(n, 64, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_empty_and_single() {
        parallel_for(0, 16, |_| panic!("must not be called"));
        let count = AtomicUsize::new(0);
        parallel_for(1, 16, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn sequential_fallback_matches() {
        let sum = AtomicU64::new(0);
        parallel_for_threads(100, 10, 1, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn map_reduce_sums_correctly() {
        let total =
            parallel_map_reduce(100_000, 128, || 0u64, |acc, i| acc + i as u64, |a, b| a + b);
        assert_eq!(total, 100_000u64 * 99_999 / 2);
    }

    #[test]
    fn map_reduce_empty_returns_init() {
        let v = parallel_map_reduce(0, 8, || 42u32, |a, _| a + 1, |a, b| a + b);
        assert_eq!(v, 42);
    }

    #[test]
    fn parallel_fill_writes_disjoint_ranges() {
        let mut data = vec![0usize; 1000];
        parallel_fill(&mut data, 7, |_, off, chunk| {
            for (k, slot) in chunk.iter_mut().enumerate() {
                *slot = off + k;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i);
        }
    }

    #[test]
    fn parallel_chunks_mut_exact_boundaries() {
        let mut data = vec![0usize; 103];
        parallel_chunks_mut(&mut data, 10, |i, chunk| {
            assert!(chunk.len() == 10 || (i == 10 && chunk.len() == 3));
            for v in chunk.iter_mut() {
                *v = i + 1;
            }
        });
        for (k, &v) in data.iter().enumerate() {
            assert_eq!(v, k / 10 + 1);
        }
    }

    #[test]
    fn parallel_chunks_mut_empty_and_tiny() {
        let mut empty: Vec<u32> = vec![];
        parallel_chunks_mut(&mut empty, 8, |_, _| panic!("must not run"));
        let mut one = vec![7u32];
        parallel_chunks_mut(&mut one, 100, |i, c| {
            assert_eq!(i, 0);
            c[0] = 9;
        });
        assert_eq!(one[0], 9);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
