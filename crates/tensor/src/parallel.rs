//! A minimal data-parallel runtime built on std scoped threads.
//!
//! The workspace builds with no external dependencies, so this module
//! provides the small subset of rayon we need: a chunked parallel-for over
//! an index range with dynamic (atomic counter) load balancing, and a
//! parallel map-reduce. Work items are claimed in fixed-size chunks to
//! amortise the atomic traffic.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    static THREAD_CAP: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads to use: the number of logical CPUs, capped so
/// that small test machines do not oversubscribe, and further capped by
/// any enclosing [`with_thread_cap`] scope.
pub fn default_threads() -> usize {
    let base = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(64);
    THREAD_CAP
        .with(|c| c.get())
        .map_or(base, |cap| base.min(cap))
}

/// Run `f` with [`default_threads`] capped at `cap` on this thread.
///
/// Callers that already parallelize at a coarser grain (e.g. a service
/// executing several requests concurrently) use this to stop the inner
/// parallel loops from multiplying the worker count into
/// oversubscription. The cap is thread-local and restored on exit (also
/// on panic); it does not propagate into threads spawned inside `f`.
pub fn with_thread_cap<R>(cap: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_CAP.with(|c| c.set(self.0));
        }
    }
    let prev = THREAD_CAP.with(|c| c.replace(Some(cap.max(1))));
    let _restore = Restore(prev);
    f()
}

/// Run `body(i)` for every `i in 0..n`, in parallel, with dynamic chunked
/// scheduling. `body` must be `Sync` since multiple workers call it.
pub fn parallel_for<F>(n: usize, chunk: usize, body: F)
where
    F: Fn(usize) + Sync,
{
    parallel_for_threads(n, chunk, default_threads(), body)
}

/// [`parallel_for`] with an explicit worker count (1 = sequential).
pub fn parallel_for_threads<F>(n: usize, chunk: usize, threads: usize, body: F)
where
    F: Fn(usize) + Sync,
{
    if n == 0 {
        return;
    }
    let chunk = chunk.max(1);
    let threads = threads.max(1).min(n.div_ceil(chunk));
    if threads == 1 {
        for i in 0..n {
            body(i);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + chunk).min(n);
                for i in start..end {
                    body(i);
                }
            });
        }
    });
}

/// Parallel map-reduce over `0..n`: each worker folds chunks locally with
/// `fold`, and the per-worker accumulators are combined with `combine`.
pub fn parallel_map_reduce<T, FInit, FFold, FCombine>(
    n: usize,
    chunk: usize,
    init: FInit,
    fold: FFold,
    combine: FCombine,
) -> T
where
    T: Send,
    FInit: Fn() -> T + Sync,
    FFold: Fn(T, usize) -> T + Sync,
    FCombine: Fn(T, T) -> T + Sync,
{
    let threads = default_threads().max(1);
    if n == 0 {
        return init();
    }
    let chunk = chunk.max(1);
    let threads = threads.min(n.div_ceil(chunk));
    if threads == 1 {
        let mut acc = init();
        for i in 0..n {
            acc = fold(acc, i);
        }
        return acc;
    }
    let next = AtomicUsize::new(0);
    let partials = spawn_and_collect(threads, |_| {
        let mut acc = init();
        loop {
            let start = next.fetch_add(chunk, Ordering::Relaxed);
            if start >= n {
                break;
            }
            let end = (start + chunk).min(n);
            for i in start..end {
                acc = fold(acc, i);
            }
        }
        acc
    });
    let mut iter = partials.into_iter();
    let first = iter.next().expect("at least one worker");
    iter.fold(first, &combine)
}

/// Spawn `threads` scoped workers running `f(worker_idx)` and collect their
/// results in worker order.
fn spawn_and_collect<T: Send, F: Fn(usize) -> T + Sync>(threads: usize, f: F) -> Vec<T> {
    let mut out: Vec<Option<T>> = (0..threads).map(|_| None).collect();
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(threads);
        for w in 0..threads {
            let f = &f;
            handles.push(s.spawn(move || f(w)));
        }
        for (w, h) in handles.into_iter().enumerate() {
            out[w] = Some(h.join().expect("worker panicked"));
        }
    });
    out.into_iter()
        .map(|o| o.expect("worker result missing"))
        .collect()
}

/// Split a mutable slice into exact `chunk_len`-sized sub-slices (last one
/// possibly shorter) and run `body(chunk_idx, sub_slice)` on each in
/// parallel. Unlike [`parallel_fill`], chunk boundaries are exact, so
/// callers can rely on alignment (e.g. whole matrix columns).
pub fn parallel_chunks_mut<T: Send, F>(data: &mut [T], chunk_len: usize, body: F)
where
    F: Fn(usize, &mut [T]) + Sync,
{
    if data.is_empty() {
        return;
    }
    let chunk_len = chunk_len.max(1);
    let chunks: Vec<(usize, &mut [T])> = data.chunks_mut(chunk_len).enumerate().collect();
    let n = chunks.len();
    let threads = default_threads().min(n);
    if threads <= 1 {
        for (i, c) in chunks {
            body(i, c);
        }
        return;
    }
    let queue = std::sync::Mutex::new(chunks);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let item = queue.lock().expect("queue poisoned").pop();
                match item {
                    Some((i, c)) => body(i, c),
                    None => break,
                }
            });
        }
    });
}

/// Split a mutable slice into `parts` nearly-equal sub-slices and run
/// `body(part_idx, sub_slice)` on each in parallel. Useful for filling
/// large buffers.
pub fn parallel_fill<T: Send, F>(data: &mut [T], parts: usize, body: F)
where
    F: Fn(usize, usize, &mut [T]) + Sync,
{
    let n = data.len();
    if n == 0 {
        return;
    }
    let parts = parts.max(1).min(n);
    let base = n / parts;
    let rem = n % parts;
    std::thread::scope(|s| {
        let mut rest = data;
        let mut offset = 0usize;
        for p in 0..parts {
            let len = base + usize::from(p < rem);
            let (head, tail) = rest.split_at_mut(len);
            let body = &body;
            let off = offset;
            s.spawn(move || body(p, off, head));
            rest = tail;
            offset += len;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parallel_for_visits_every_index_once() {
        let n = 10_000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(n, 64, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_empty_and_single() {
        parallel_for(0, 16, |_| panic!("must not be called"));
        let count = AtomicUsize::new(0);
        parallel_for(1, 16, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn sequential_fallback_matches() {
        let sum = AtomicU64::new(0);
        parallel_for_threads(100, 10, 1, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn map_reduce_sums_correctly() {
        let total =
            parallel_map_reduce(100_000, 128, || 0u64, |acc, i| acc + i as u64, |a, b| a + b);
        assert_eq!(total, 100_000u64 * 99_999 / 2);
    }

    #[test]
    fn map_reduce_empty_returns_init() {
        let v = parallel_map_reduce(0, 8, || 42u32, |a, _| a + 1, |a, b| a + b);
        assert_eq!(v, 42);
    }

    #[test]
    fn parallel_fill_writes_disjoint_ranges() {
        let mut data = vec![0usize; 1000];
        parallel_fill(&mut data, 7, |_, off, chunk| {
            for (k, slot) in chunk.iter_mut().enumerate() {
                *slot = off + k;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i);
        }
    }

    #[test]
    fn parallel_chunks_mut_exact_boundaries() {
        let mut data = vec![0usize; 103];
        parallel_chunks_mut(&mut data, 10, |i, chunk| {
            assert!(chunk.len() == 10 || (i == 10 && chunk.len() == 3));
            for v in chunk.iter_mut() {
                *v = i + 1;
            }
        });
        for (k, &v) in data.iter().enumerate() {
            assert_eq!(v, k / 10 + 1);
        }
    }

    #[test]
    fn parallel_chunks_mut_empty_and_tiny() {
        let mut empty: Vec<u32> = vec![];
        parallel_chunks_mut(&mut empty, 8, |_, _| panic!("must not run"));
        let mut one = vec![7u32];
        parallel_chunks_mut(&mut one, 100, |i, c| {
            assert_eq!(i, 0);
            c[0] = 9;
        });
        assert_eq!(one[0], 9);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn thread_cap_scopes_and_restores() {
        let uncapped = default_threads();
        with_thread_cap(1, || {
            assert_eq!(default_threads(), 1);
            // Nested caps apply innermost-first and restore outward.
            with_thread_cap(2, || assert!(default_threads() <= 2));
            assert_eq!(default_threads(), 1);
        });
        assert_eq!(default_threads(), uncapped);
        // A cap above the machine's parallelism changes nothing.
        with_thread_cap(usize::MAX, || assert_eq!(default_threads(), uncapped));
    }

    #[test]
    fn thread_cap_restored_after_panic() {
        let uncapped = default_threads();
        let result = std::panic::catch_unwind(|| with_thread_cap(1, || panic!("boom")));
        assert!(result.is_err());
        assert_eq!(default_threads(), uncapped);
    }
}
