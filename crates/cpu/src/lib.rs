//! # ttlg-cpu
//!
//! A real (wall-clock) CPU transposition backend, in the style of HPTT
//! (Springer et al., see PAPERS.md): blocked, cache-tiled loops with an
//! explicit square macro-kernel for the transposed-2D base case, and
//! multithreading over outer tile blocks with per-thread disjoint output
//! ranges.
//!
//! Unlike every other executor in this workspace, nothing here is
//! simulated — [`execute`] moves host bytes and its cost is the time it
//! takes. The planner (`ttlg::Transposer` with `Backend::Cpu`) builds a
//! [`CpuPlan`] once per problem and replays it per request.
//!
//! ## Plan shape
//!
//! Planning normalizes the permutation before any loop runs
//! ([`CpuPlan::new`]):
//!
//! 1. **Drop** extent-1 dimensions (they contribute nothing to layout).
//! 2. **Fuse** input dimensions that stay consecutive in the output into
//!    one wider dimension (dense strides make every such pair contiguous
//!    on both sides).
//! 3. **Peel** the leading fused dimension when it is fixed by the
//!    permutation (`perm[0] == 0`) into a contiguous *run* of `R`
//!    elements — the unit every inner loop copies with `memcpy`.
//!
//! What remains is either the identity (a parallel block copy) or a
//! reduced permutation with `perm[0] != 0`, executed as a 2D tiling over
//! the plane spanned by the fastest-varying **input** dimension and the
//! fastest-varying **output** dimension — exactly the two axes the
//! paper's schemas fight to keep innermost — with all other dimensions
//! walked by an odometer around the tiles. Tiles are sized so the
//! working set (`2 * tile_a * tile_b * R * elem_bytes`) stays inside L1;
//! the default edge of 32 keeps an 8-byte-element tile at 16 KiB.

mod exec;
mod plan;

pub use exec::{execute, execute_threads};
pub use plan::{pick_tile, CpuPlan, PlanKind, DEFAULT_TILE};
