//! The executor: real data movement driven by a [`CpuPlan`].

use crate::plan::{CpuPlan, PlanKind};
use ttlg_tensor::{parallel, Element};

/// Below this volume the thread-spawn cost outweighs any split: run
/// sequentially regardless of the plan's thread count.
const PARALLEL_MIN_VOLUME: usize = 1 << 15;

/// Raw output pointer shared across workers. Safety: the tile blocks
/// partition the output index space (each output element belongs to
/// exactly one `(outer, a, b)` triple), so concurrent workers write
/// disjoint offsets.
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    // Method (not field) access so closures capture the Sync wrapper,
    // not the raw pointer inside it.
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Execute the plan with its own thread setting.
pub fn execute<E: Element>(plan: &CpuPlan, src: &[E], dst: &mut [E]) {
    execute_threads(plan, src, dst, plan.threads);
}

/// Execute with an explicit worker count (still capped by the machine
/// and any enclosing [`parallel::with_thread_cap`] scope).
pub fn execute_threads<E: Element>(plan: &CpuPlan, src: &[E], dst: &mut [E], threads: usize) {
    assert_eq!(src.len(), plan.volume, "input length != plan volume");
    assert_eq!(dst.len(), plan.volume, "output length != plan volume");
    let threads = if plan.volume < PARALLEL_MIN_VOLUME {
        1
    } else {
        threads.max(1).min(parallel::default_threads())
    };
    match plan.kind {
        PlanKind::Copy => copy_blocks(src, dst, threads),
        PlanKind::Tiled => tiled(plan, src, dst, threads),
    }
}

/// Identity after normalization: split the output into per-thread
/// contiguous ranges and memcpy each.
fn copy_blocks<E: Element>(src: &[E], dst: &mut [E], threads: usize) {
    if threads <= 1 {
        dst.copy_from_slice(src);
        return;
    }
    parallel::parallel_fill(dst, threads, |_, off, chunk| {
        chunk.copy_from_slice(&src[off..off + chunk.len()]);
    });
}

/// Edge of the register-blocked micro-tile used for scalar (`run == 1`)
/// planes: 8x8 fully unrolls, so the staging array lives in registers
/// and both memory streams are contiguous 8-element rows.
const MICRO: usize = 8;

/// The 8x8 register-staged transpose at the heart of the scalar plane.
/// Loads are contiguous along `a` (input rows), stores contiguous along
/// `b` (output rows); the transposition itself happens in the staging
/// array, which the optimizer keeps in registers once the constant-
/// bound loops unroll.
///
/// # Safety
/// The caller guarantees every `s_base + bb*sb_in + aa` is in bounds of
/// the source and every `d_base + aa*sa_out + bb` is an output offset
/// owned exclusively by this block.
#[inline]
unsafe fn micro8x8<E: Element>(
    sp: *const E,
    dp: *mut E,
    s_base: usize,
    d_base: usize,
    sb_in: usize,
    sa_out: usize,
) {
    let mut buf = [E::zero(); MICRO * MICRO];
    for bb in 0..MICRO {
        let s = s_base + bb * sb_in;
        for aa in 0..MICRO {
            buf[aa * MICRO + bb] = unsafe { *sp.add(s + aa) };
        }
    }
    for aa in 0..MICRO {
        let d = d_base + aa * sa_out;
        for bb in 0..MICRO {
            unsafe { *dp.add(d + bb) = buf[aa * MICRO + bb] };
        }
    }
}

/// Staging capacity for the short-run micro-tile: 8x8 runs of up to
/// [`STAGE_MAX_RUN`] elements.
const STAGE_CAP: usize = MICRO * MICRO * STAGE_MAX_RUN;

/// Longest run the staged short-run micro-tile handles; longer runs go
/// straight through `memcpy`, which amortizes its call cost past this.
const STAGE_MAX_RUN: usize = 16;

/// The short-run analogue of [`micro8x8`]: an 8x8 block of `run`-element
/// super-elements, staged so both memory streams move `8 * run`
/// contiguous elements at a time (one block-copy per input row in, one
/// row of eight runs per output row out) instead of `run`-sized pieces.
///
/// # Safety
/// As for [`micro8x8`]: the caller guarantees all eight input rows
/// (`s_base + bb*sb`, `8 * run` elements each) are in bounds and all
/// eight output rows (`d_base + aa*sa`) are this block's alone.
#[inline]
unsafe fn micro8x8_runs<E: Element>(
    sp: *const E,
    dp: *mut E,
    s_base: usize,
    d_base: usize,
    sb: usize,
    sa: usize,
    run: usize,
) {
    debug_assert!(run <= STAGE_MAX_RUN);
    let mut buf = [E::zero(); STAGE_CAP];
    for bb in 0..MICRO {
        unsafe {
            std::ptr::copy_nonoverlapping(
                sp.add(s_base + bb * sb),
                buf.as_mut_ptr().add(bb * MICRO * run),
                MICRO * run,
            );
        }
    }
    for aa in 0..MICRO {
        let d = d_base + aa * sa;
        for bb in 0..MICRO {
            let s = (bb * MICRO + aa) * run;
            for r in 0..run {
                unsafe { *dp.add(d + bb * run + r) = buf[s + r] };
            }
        }
    }
}

/// The tiled 2D core. Blocks are `(outer combination, a-tile, b-tile)`
/// triples. Scalar planes (`run == 1`) walk each tile in 8x8
/// register-staged micro-tiles; short-run planes (`run <= 16`) use the
/// staged run-block variant so both streams stay `8 * run` elements
/// wide; long runs keep the write stream contiguous (`b` innermost)
/// with one `memcpy` per run. Either way the tile working set stays
/// L1-resident.
fn tiled<E: Element>(plan: &CpuPlan, src: &[E], dst: &mut [E], threads: usize) {
    let run = plan.run;
    let (na, nb) = (plan.na, plan.nb);
    let (ta, tb) = (plan.tile_a, plan.tile_b);
    let nta = na.div_ceil(ta);
    let ntb = nb.div_ceil(tb);
    let outer_vol: usize = plan.outer_ext.iter().product::<usize>().max(1);
    let blocks = nta * ntb * outer_vol;
    let dst_ptr = SendPtr(dst.as_mut_ptr());
    let src_ptr = src.as_ptr() as usize;
    let len = src.len();

    let body = |block: usize| {
        let tb_i = block % ntb;
        let rest = block / ntb;
        let ta_i = rest % nta;
        let mut outer = rest / nta;

        // Odometer-free decode of the outer combination (it runs once
        // per block, not per element).
        let mut in_base = 0usize;
        let mut out_base = 0usize;
        for (d, &e) in plan.outer_ext.iter().enumerate() {
            let i = outer % e;
            outer /= e;
            in_base += i * plan.outer_in[d];
            out_base += i * plan.outer_out[d];
        }

        let a0 = ta_i * ta;
        let a1 = (a0 + ta).min(na);
        let b0 = tb_i * tb;
        let b1 = (b0 + tb).min(nb);
        let sp = src_ptr as *const E;
        let dp = dst_ptr.get();
        // Offsets in R units: input = in_base + b*sb_in + a (a has
        // input stride 1), output = out_base + b + a*sa_out.
        if run == 1 {
            let mut b = b0;
            while b < b1 {
                let hb = (b1 - b).min(MICRO);
                let mut a = a0;
                while a < a1 {
                    let wa = (a1 - a).min(MICRO);
                    let s_base = in_base + b * plan.sb_in + a;
                    let d_base = out_base + b + a * plan.sa_out;
                    debug_assert!(s_base + (hb - 1) * plan.sb_in + wa <= len);
                    if hb == MICRO && wa == MICRO {
                        // SAFETY: full block in bounds (checked above in
                        // debug builds); output offsets are this block's
                        // alone (see SendPtr).
                        unsafe { micro8x8(sp, dp, s_base, d_base, plan.sb_in, plan.sa_out) };
                    } else {
                        for bb in 0..hb {
                            let s = s_base + bb * plan.sb_in;
                            let d = d_base + bb;
                            for aa in 0..wa {
                                // SAFETY: as above, edge remainder.
                                unsafe { *dp.add(d + aa * plan.sa_out) = *sp.add(s + aa) };
                            }
                        }
                    }
                    a += wa;
                }
                b += hb;
            }
        } else if run <= STAGE_MAX_RUN {
            let sb = plan.sb_in * run;
            let sa = plan.sa_out * run;
            let mut b = b0;
            while b < b1 {
                let hb = (b1 - b).min(MICRO);
                let mut a = a0;
                while a < a1 {
                    let wa = (a1 - a).min(MICRO);
                    let s_base = (in_base + b * plan.sb_in + a) * run;
                    let d_base = (out_base + b + a * plan.sa_out) * run;
                    debug_assert!(s_base + (hb - 1) * sb + wa * run <= len);
                    if hb == MICRO && wa == MICRO {
                        // SAFETY: full block in bounds (checked above in
                        // debug builds); output runs are this block's
                        // alone (see SendPtr).
                        unsafe { micro8x8_runs(sp, dp, s_base, d_base, sb, sa, run) };
                    } else {
                        for bb in 0..hb {
                            let s = s_base + bb * sb;
                            let d = d_base + bb * run;
                            for aa in 0..wa {
                                for r in 0..run {
                                    // SAFETY: as above, edge remainder.
                                    unsafe { *dp.add(d + aa * sa + r) = *sp.add(s + aa * run + r) };
                                }
                            }
                        }
                    }
                    a += wa;
                }
                b += hb;
            }
        } else {
            let sb = plan.sb_in * run;
            for a in a0..a1 {
                let mut s = (in_base + b0 * plan.sb_in + a) * run;
                let mut d = (out_base + b0 + a * plan.sa_out) * run;
                for _ in b0..b1 {
                    debug_assert!(s + run <= len);
                    // SAFETY: disjoint output runs per block; bounds
                    // checked above in debug builds.
                    unsafe { std::ptr::copy_nonoverlapping(sp.add(s), dp.add(d), run) };
                    s += sb;
                    d += run;
                }
            }
        }
    };

    if threads <= 1 || blocks == 1 {
        for b in 0..blocks {
            body(b);
        }
    } else {
        // Claim a handful of blocks per atomic fetch to amortize the
        // counter traffic without starving the tail.
        let chunk = (blocks / (threads * 8)).clamp(1, 64);
        parallel::parallel_for_threads(blocks, chunk, threads, body);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::pick_tile;
    use ttlg_tensor::reference::{first_mismatch, transpose_reference};
    use ttlg_tensor::rng::StdRng;
    use ttlg_tensor::{DenseTensor, Element, Permutation, Shape};

    fn check<E: Element>(extents: &[usize], perm: &[usize], tile: usize, threads: usize) {
        let shape = Shape::new(extents).unwrap();
        let p = Permutation::new(perm).unwrap();
        let input: DenseTensor<E> = DenseTensor::iota(shape.clone());
        let expect = transpose_reference(&input, &p).unwrap();
        let plan = CpuPlan::new(extents, perm, tile, threads);
        let mut out = DenseTensor::<E>::zeros(p.apply_to_shape(&shape).unwrap());
        execute(&plan, input.data(), out.data_mut());
        assert_eq!(
            first_mismatch(&out, &expect),
            None,
            "extents {extents:?} perm {perm:?} tile {tile} threads {threads}"
        );
    }

    #[test]
    fn all_rank2_and_rank3_perms_exact() {
        for p in Permutation::all(2) {
            check::<u32>(&[37, 19], p.as_slice(), 32, 2);
        }
        for p in Permutation::all(3) {
            check::<u64>(&[13, 7, 11], p.as_slice(), 16, 2);
        }
    }

    #[test]
    fn all_rank4_perms_awkward_extents() {
        for p in Permutation::all(4) {
            check::<u32>(&[9, 1, 6, 5], p.as_slice(), 8, 2);
        }
    }

    #[test]
    fn randomized_ranks_2_to_6_all_dtypes_bit_equal() {
        // The satellite contract: bit-equality with the reference across
        // randomized shapes (degenerate 1-extents included), every
        // Element impl, identity permutations included.
        let mut rng = StdRng::seed_from_u64(0xC0DE_0C9D ^ 0x9E37);
        for case in 0..40 {
            let rank = rng.gen_range(2..7usize);
            let extents: Vec<usize> = (0..rank)
                .map(|_| {
                    if rng.gen_range(0..5usize) == 0 {
                        1 // degenerate dimension
                    } else {
                        rng.gen_range(2..9usize)
                    }
                })
                .collect();
            let mut perm: Vec<usize> = (0..rank).collect();
            if case % 7 != 0 {
                rng.shuffle(&mut perm); // case % 7 == 0 keeps the identity
            }
            let tile = [8, 16, 32][rng.gen_range(0..3usize)];
            let threads = rng.gen_range(1..5usize);
            check::<f32>(&extents, &perm, tile, threads);
            check::<f64>(&extents, &perm, tile, threads);
            check::<u32>(&extents, &perm, tile, threads);
            check::<u64>(&extents, &perm, tile, threads);
        }
    }

    #[test]
    fn parallel_path_matches_sequential() {
        // Big enough to cross PARALLEL_MIN_VOLUME so real workers spawn.
        let extents = [64, 48, 16];
        let perm = [2, 0, 1];
        let shape = Shape::new(&extents).unwrap();
        let p = Permutation::new(&perm).unwrap();
        let input: DenseTensor<u64> = DenseTensor::iota(shape.clone());
        let plan = CpuPlan::new(&extents, &perm, 32, 4);
        let out_shape = p.apply_to_shape(&shape).unwrap();
        let mut seq = DenseTensor::<u64>::zeros(out_shape.clone());
        let mut par = DenseTensor::<u64>::zeros(out_shape);
        execute_threads(&plan, input.data(), seq.data_mut(), 1);
        execute_threads(&plan, input.data(), par.data_mut(), 4);
        assert_eq!(first_mismatch(&seq, &par), None);
    }

    #[test]
    fn identity_large_uses_copy_path() {
        let extents = [128, 32, 16];
        check::<f64>(&extents, &[0, 1, 2], pick_tile(8), 4);
    }

    #[test]
    #[should_panic(expected = "input length")]
    fn rejects_wrong_input_length() {
        let plan = CpuPlan::new(&[4, 4], &[1, 0], 32, 1);
        let src = vec![0.0f64; 15];
        let mut dst = vec![0.0f64; 16];
        execute(&plan, &src, &mut dst);
    }
}
