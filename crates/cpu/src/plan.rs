//! Loop-order normalization and the executable CPU plan.

/// Default square tile edge: a 32x32 tile of 8-byte elements touches
/// 2 * 32 * 32 * 8 = 16 KiB — half a typical 32 KiB L1d, leaving room
//  for the streams around it.
pub const DEFAULT_TILE: usize = 32;

/// Tile edge sized to the element width so the tile working set stays
/// L1-resident regardless of dtype.
pub fn pick_tile(elem_bytes: usize) -> usize {
    match elem_bytes {
        0..=4 => 64,
        _ => DEFAULT_TILE,
    }
}

/// What the normalized problem collapsed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanKind {
    /// The permutation is the identity after normalization: one parallel
    /// block copy.
    Copy,
    /// A genuine transposition: the tiled 2D core over (input FVI,
    /// output FVI) with an outer odometer.
    Tiled,
}

/// An executable CPU transposition plan (see the crate docs for the
/// normalization pipeline). All strides below are in units of the
/// contiguous run `R`, not elements.
#[derive(Debug, Clone)]
pub struct CpuPlan {
    /// Total elements moved (original volume).
    pub volume: usize,
    /// Copy or tiled.
    pub kind: PlanKind,
    /// Contiguous run length peeled off the front, in elements (>= 1).
    pub run: usize,
    /// Extent of the reduced fastest-varying input dimension `a`.
    pub na: usize,
    /// Extent of the reduced input dimension feeding output dim 0 (`b`).
    pub nb: usize,
    /// Input stride of `b` (R units).
    pub sb_in: usize,
    /// Output stride of `a` (R units).
    pub sa_out: usize,
    /// Extents of the outer (non-plane) reduced dimensions.
    pub outer_ext: Vec<usize>,
    /// Input strides of the outer dimensions (R units).
    pub outer_in: Vec<usize>,
    /// Output strides of the outer dimensions (R units).
    pub outer_out: Vec<usize>,
    /// Tile edge along `a`.
    pub tile_a: usize,
    /// Tile edge along `b`.
    pub tile_b: usize,
    /// Worker threads the executor should use (capped by the machine).
    pub threads: usize,
}

impl CpuPlan {
    /// Normalize `(extents, perm)` and lay out the tiled loop nest.
    /// `tile` is the nominal square tile edge (shrunk automatically when
    /// the run `R` would blow the L1 budget); `threads` the requested
    /// parallelism. Extents and permutation must describe a valid dense
    /// problem (`perm` a permutation of `0..rank`, extents nonzero).
    pub fn new(extents: &[usize], perm: &[usize], tile: usize, threads: usize) -> CpuPlan {
        assert_eq!(extents.len(), perm.len(), "rank mismatch");
        let volume: usize = extents.iter().product();

        // 1. Drop extent-1 dimensions.
        let keep: Vec<usize> = (0..extents.len()).filter(|&d| extents[d] > 1).collect();
        let mut new_index = vec![usize::MAX; extents.len()];
        for (new, &old) in keep.iter().enumerate() {
            new_index[old] = new;
        }
        let mut ext: Vec<usize> = keep.iter().map(|&d| extents[d]).collect();
        let mut p: Vec<usize> = perm
            .iter()
            .filter(|&&d| extents[d] > 1)
            .map(|&d| new_index[d])
            .collect();

        // 2. Fuse input dimensions that stay consecutive in the output:
        // output position j folds into j-1 when p[j] == p[j-1] + 1.
        if !p.is_empty() {
            let mut fused_into_prev = vec![false; ext.len()];
            for j in 1..p.len() {
                if p[j] == p[j - 1] + 1 {
                    fused_into_prev[p[j]] = true;
                }
            }
            let leaders: Vec<usize> = (0..ext.len()).filter(|&d| !fused_into_prev[d]).collect();
            let mut fused_ext = Vec::with_capacity(leaders.len());
            for (g, &lead) in leaders.iter().enumerate() {
                let end = leaders.get(g + 1).copied().unwrap_or(ext.len());
                fused_ext.push(ext[lead..end].iter().product::<usize>());
            }
            let mut group_of = vec![usize::MAX; ext.len()];
            for (g, &lead) in leaders.iter().enumerate() {
                let end = leaders.get(g + 1).copied().unwrap_or(ext.len());
                for slot in group_of.iter_mut().take(end).skip(lead) {
                    *slot = g;
                }
            }
            ext = fused_ext;
            p = p
                .iter()
                .filter(|&&d| !fused_into_prev[d])
                .map(|&d| group_of[d])
                .collect();
        }

        // 3. Peel the contiguous run: after fusion, out dim 0 == in dim 0
        // means that whole fused axis moves as one memcpy unit.
        let mut run = 1usize;
        if p.first() == Some(&0) {
            run = ext[0];
            ext.remove(0);
            p.remove(0);
            for d in p.iter_mut() {
                *d -= 1;
            }
        }

        let threads = threads.max(1);
        if p.is_empty() {
            return CpuPlan {
                volume,
                kind: PlanKind::Copy,
                run: volume,
                na: 1,
                nb: 1,
                sb_in: 0,
                sa_out: 0,
                outer_ext: Vec::new(),
                outer_in: Vec::new(),
                outer_out: Vec::new(),
                tile_a: 1,
                tile_b: 1,
                threads,
            };
        }

        // Strides of the reduced problem, in units of R.
        let rank = ext.len();
        let mut in_strides = vec![1usize; rank];
        for d in 1..rank {
            in_strides[d] = in_strides[d - 1] * ext[d - 1];
        }
        let mut pos_in_out = vec![0usize; rank];
        for (j, &d) in p.iter().enumerate() {
            pos_in_out[d] = j;
        }
        let mut out_strides_by_pos = vec![1usize; rank];
        for j in 1..rank {
            out_strides_by_pos[j] = out_strides_by_pos[j - 1] * ext[p[j - 1]];
        }
        let out_stride_of = |d: usize| out_strides_by_pos[pos_in_out[d]];

        // The 2D plane: `a` = input FVI (reduced dim 0), `b` = the input
        // dim the output FVI reads (p[0] != 0 by construction).
        let b_dim = p[0];
        let na = ext[0];
        let nb = ext[b_dim];
        let sb_in = in_strides[b_dim];
        let sa_out = out_stride_of(0);

        let mut outer_ext = Vec::new();
        let mut outer_in = Vec::new();
        let mut outer_out = Vec::new();
        for d in 0..rank {
            if d != 0 && d != b_dim {
                outer_ext.push(ext[d]);
                outer_in.push(in_strides[d]);
                outer_out.push(out_stride_of(d));
            }
        }

        // Shrink the tile edge as the run grows so the working set
        // (2 * ta * tb * R * elem) keeps its L1 budget; never below 4.
        let tile = tile.max(4);
        let shrink = (run as f64).sqrt().ceil() as usize;
        let edge = (tile / shrink.max(1)).max(4);
        CpuPlan {
            volume,
            kind: PlanKind::Tiled,
            run,
            na,
            nb,
            sb_in,
            sa_out,
            outer_ext,
            outer_in,
            outer_out,
            tile_a: edge.min(na),
            tile_b: edge.min(nb),
            threads,
        }
    }

    /// Number of independent tile blocks the executor parallelizes over
    /// (1 for the copy kind: the copy splits by output range instead).
    pub fn block_count(&self) -> usize {
        match self.kind {
            PlanKind::Copy => 1,
            PlanKind::Tiled => {
                self.na.div_ceil(self.tile_a)
                    * self.nb.div_ceil(self.tile_b)
                    * self.outer_ext.iter().product::<usize>().max(1)
            }
        }
    }

    /// Contiguous bytes moved per inner copy on the input side.
    pub fn input_run_bytes(&self, elem_bytes: usize) -> usize {
        self.run * elem_bytes
    }

    /// Total bytes crossing memory (read + write).
    pub fn bytes_moved(&self, elem_bytes: usize) -> usize {
        2 * self.volume * elem_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_collapses_to_copy() {
        let p = CpuPlan::new(&[8, 4, 3], &[0, 1, 2], 32, 4);
        assert_eq!(p.kind, PlanKind::Copy);
        assert_eq!(p.run, 96);
        assert_eq!(p.block_count(), 1);
    }

    #[test]
    fn unit_extents_are_dropped() {
        // [1, N] with perm [1, 0] is layout-identical to a copy.
        let p = CpuPlan::new(&[1, 9], &[1, 0], 32, 1);
        assert_eq!(p.kind, PlanKind::Copy);
        let q = CpuPlan::new(&[4, 1, 5], &[2, 1, 0], 32, 1);
        assert_eq!(q.kind, PlanKind::Tiled);
        assert_eq!((q.na, q.nb), (4, 5));
        assert_eq!(q.run, 1);
    }

    #[test]
    fn fvi_match_peels_a_run() {
        // perm[0] == 0: the fastest dim rides along as a memcpy run.
        let p = CpuPlan::new(&[16, 4, 5], &[0, 2, 1], 32, 1);
        assert_eq!(p.kind, PlanKind::Tiled);
        assert_eq!(p.run, 16);
        assert_eq!((p.na, p.nb), (4, 5));
        assert_eq!(p.sb_in, 4);
        assert_eq!(p.sa_out, 5);
    }

    #[test]
    fn consecutive_dims_fuse() {
        // [a, b, c] with perm [2, 0, 1]: dims 0,1 stay adjacent in the
        // output, so they fuse into one axis of extent a*b.
        let p = CpuPlan::new(&[4, 6, 5], &[2, 0, 1], 32, 1);
        assert_eq!(p.kind, PlanKind::Tiled);
        assert_eq!(p.run, 1);
        assert_eq!((p.na, p.nb), (24, 5));
        assert!(p.outer_ext.is_empty());
    }

    #[test]
    fn matrix_transpose_plane() {
        let p = CpuPlan::new(&[100, 60], &[1, 0], 32, 2);
        assert_eq!(p.kind, PlanKind::Tiled);
        assert_eq!((p.na, p.nb), (100, 60));
        assert_eq!(p.sb_in, 100);
        assert_eq!(p.sa_out, 60);
        assert_eq!(p.block_count(), 4 * 2);
        assert_eq!(p.bytes_moved(8), 2 * 6000 * 8);
    }

    #[test]
    fn outer_dims_carry_both_strides() {
        let p = CpuPlan::new(&[8, 6, 5, 3], &[2, 1, 0, 3], 32, 1);
        assert_eq!(p.kind, PlanKind::Tiled);
        assert_eq!((p.na, p.nb), (8, 5));
        // Outer dims: input dim 1 (extent 6) and dim 3 (extent 3).
        assert_eq!(p.outer_ext, vec![6, 3]);
        assert_eq!(p.outer_in, vec![8, 240]);
        // out layout: [5, 6, 8, 3] -> dim1 at out pos 1 (stride 5),
        // dim3 at out pos 3 (stride 240).
        assert_eq!(p.outer_out, vec![5, 240]);
    }

    #[test]
    fn run_shrinks_the_tile() {
        let long = CpuPlan::new(&[256, 32, 32], &[0, 2, 1], 32, 1);
        assert_eq!(long.run, 256);
        // run=256 shrinks the tile all the way to the 4-element floor.
        assert!(long.tile_a <= 4);
        let unit = CpuPlan::new(&[32, 32], &[1, 0], 32, 1);
        assert_eq!((unit.tile_a, unit.tile_b), (32, 32));
    }

    #[test]
    fn tile_edges_never_exceed_extents() {
        let p = CpuPlan::new(&[3, 200], &[1, 0], 64, 1);
        assert_eq!(p.tile_a, 3);
        assert_eq!(p.tile_b, 64);
    }

    #[test]
    fn pick_tile_by_width() {
        assert_eq!(pick_tile(4), 64);
        assert_eq!(pick_tile(8), 32);
    }
}
