//! A structurally faithful cuTT (CUDA Tensor Transpose, Hynninen & Lyakh
//! 2017) on the simulated device.
//!
//! Kernel menu (cuTT's terminology):
//! * **Trivial** — identity permutation, plain copy.
//! * **TiledCopy** — matching FVI with extent >= 32: direct coalesced copy.
//! * **Tiled** — 32x32 shared-memory tiles over the single pair
//!   `(input dim 0, output dim 0)`; no multi-dimension combining (that is
//!   TTLG's advantage on small extents).
//! * **Packed / PackedSplit** — a full set of leading input+output ranks
//!   staged through shared memory, the largest rank split when the slice
//!   exceeds shared memory.
//!
//! Plan selection: **heuristic** mode picks by cheap rules (the spirit of
//! cuTT's MWP-CWP-based heuristic); **measure** mode builds every
//! candidate plan, times each on the device, and keeps the best — paying
//! the measured time as plan overhead, and enjoying the slight cache-warm
//! advantage on subsequent runs that the paper observed.
//!
//! cuTT computes indices in-kernel (no texture-resident offset arrays);
//! see [`crate`] docs for how the statistics are transformed accordingly.

use crate::BaselineReport;
use ttlg::kernels::{
    CopyKernel, FviMatchLargeKernel, OaChoice, OdChoice, OrthogonalArbitraryKernel,
    OrthogonalDistinctKernel,
};
use ttlg::Problem;
use ttlg_gpu_sim::{
    timing, Accounting, BlockIo, BlockKernel, DeviceConfig, ExecMode, Executor, Launch,
    TimingModel, TransactionStats,
};
use ttlg_tensor::{DenseTensor, Element, Permutation, Shape, WARP_SIZE};

/// Plan-selection mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CuttMode {
    /// Cheap rule-based choice.
    Heuristic,
    /// Build and time every candidate, keep the best.
    Measure,
}

/// Heuristic plan-construction overhead, ns: one analytic-model pass plus
/// the buffer allocations the paper says are part of plan overhead.
const HEURISTIC_PLAN_NS: f64 = 240_000.0;
/// Per-candidate plan-build overhead in measure mode (allocation, kernel
/// setup), ns.
const MEASURE_BUILD_NS: f64 = 60_000.0;
/// Cache-warm advantage of measure mode once the winning kernel was
/// already executed during planning (the paper: "cuTT measure timings had
/// a very slight advantage ... even if the same kernel is chosen").
const MEASURE_WARM_SCALE: f64 = 0.998;

/// The concrete kernel behind a plan.
enum CuttKernel<E: Element> {
    Copy(CopyKernel<E>),
    Direct(FviMatchLargeKernel<E>),
    Tiled(OrthogonalDistinctKernel<E>),
    /// Full-rank packing (the slice holds whole dimensions).
    Packed(OrthogonalArbitraryKernel<E>),
    /// Packing with the largest rank split to fit shared memory.
    PackedSplit(OrthogonalArbitraryKernel<E>),
}

impl<E: Element> CuttKernel<E> {
    fn is_packed(&self) -> bool {
        matches!(self, CuttKernel::Packed(_) | CuttKernel::PackedSplit(_))
    }
}

impl<E: Element> BlockKernel<E> for CuttKernel<E> {
    fn name(&self) -> &str {
        match self {
            CuttKernel::Copy(_) => "cutt-Trivial",
            CuttKernel::Direct(_) => "cutt-TiledCopy",
            CuttKernel::Tiled(_) => "cutt-Tiled",
            CuttKernel::Packed(_) => "cutt-Packed",
            CuttKernel::PackedSplit(_) => "cutt-PackedSplit",
        }
    }

    fn launch(&self) -> Launch {
        match self {
            CuttKernel::Copy(k) => k.launch(),
            CuttKernel::Direct(k) => k.launch(),
            CuttKernel::Tiled(k) => k.launch(),
            CuttKernel::Packed(k) => k.launch(),
            CuttKernel::PackedSplit(k) => k.launch(),
        }
    }

    fn run_block(&self, block: usize, io: &BlockIo<'_, E>, acct: &mut Accounting) {
        match self {
            CuttKernel::Copy(k) => k.run_block(block, io, acct),
            CuttKernel::Direct(k) => k.run_block(block, io, acct),
            CuttKernel::Tiled(k) => k.run_block(block, io, acct),
            CuttKernel::Packed(k) => k.run_block(block, io, acct),
            CuttKernel::PackedSplit(k) => k.run_block(block, io, acct),
        }
    }

    fn block_class(&self, block: usize) -> u32 {
        match self {
            CuttKernel::Copy(k) => k.block_class(block),
            CuttKernel::Direct(k) => k.block_class(block),
            CuttKernel::Tiled(k) => k.block_class(block),
            CuttKernel::Packed(k) => k.block_class(block),
            CuttKernel::PackedSplit(k) => k.block_class(block),
        }
    }
}

/// Replace texture traffic by cuTT's in-kernel index arithmetic: per
/// element, roughly `4 * rank` integer mul/shift operations of address
/// math, and on the packed kernels one real mod/div pair per dimension
/// for the scatter position (TTLG's offset arrays exist precisely to
/// avoid this cost).
fn de_texture(mut stats: TransactionStats, rank: usize, packed: bool) -> TransactionStats {
    stats.tex_load_tx = 0;
    stats.index_instr += 4 * rank as u64 * stats.elements_moved;
    if packed {
        stats.special_instr += rank as u64 * stats.elements_moved;
    }
    stats
}

/// A built cuTT plan.
pub struct CuttPlan<E: Element> {
    problem: Problem,
    kernel: CuttKernel<E>,
    label: String,
    plan_time_ns: f64,
    exec_scale: f64,
}

impl<E: Element> CuttPlan<E> {
    /// Human-readable kernel label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Plan-construction overhead, ns.
    pub fn plan_time_ns(&self) -> f64 {
        self.plan_time_ns
    }
}

/// The cuTT library object.
pub struct CuttLibrary {
    executor: Executor,
    timing: TimingModel,
}

impl CuttLibrary {
    /// Build for a device.
    pub fn new(device: DeviceConfig) -> Self {
        CuttLibrary {
            executor: Executor::new(device.clone()),
            timing: TimingModel::new(device),
        }
    }

    /// Build a plan.
    pub fn plan<E: Element>(
        &self,
        shape: &Shape,
        perm: &Permutation,
        mode: CuttMode,
    ) -> CuttPlan<E> {
        let p = Problem::new(shape, perm).expect("valid problem");
        let smem = self.executor.device().smem_per_sm;
        let mut cands: Vec<CuttKernel<E>> = Vec::new();

        let mk_packed = |c: OaChoice| {
            let kernel = OrthogonalArbitraryKernel::new(&p, c, smem);
            if is_split(&p, &c) {
                CuttKernel::PackedSplit(kernel)
            } else {
                CuttKernel::Packed(kernel)
            }
        };
        if p.is_copy() {
            cands.push(CuttKernel::Copy(CopyKernel::new(p.volume())));
        } else if p.perm.fvi_matches() {
            if p.extent(0) >= WARP_SIZE {
                cands.push(CuttKernel::Direct(FviMatchLargeKernel::new(&p)));
            }
            for c in packed_choices::<E>(&p, smem) {
                cands.push(mk_packed(c));
            }
        } else {
            let n0 = p.extent(0);
            let j0 = p.perm.output_dim_source(0);
            let tiled_choice = OdChoice {
                in_dims: 1,
                block_a: n0.min(WARP_SIZE),
                out_dims: 1,
                block_b: p.extent(j0).min(WARP_SIZE),
            };
            // cuTT's heuristic reaches for the Tiled kernel once both
            // tile axes are at least half a tile wide.
            let tiled_first = n0 >= WARP_SIZE / 2 && p.extent(j0) >= WARP_SIZE / 2;
            if tiled_first && tiled_choice.is_valid(&p) {
                cands.push(CuttKernel::Tiled(OrthogonalDistinctKernel::new(
                    &p,
                    tiled_choice,
                )));
            }
            for c in packed_choices::<E>(&p, smem) {
                cands.push(mk_packed(c));
            }
            if !tiled_first && tiled_choice.is_valid(&p) {
                cands.push(CuttKernel::Tiled(OrthogonalDistinctKernel::new(
                    &p,
                    tiled_choice,
                )));
            }
        }
        assert!(!cands.is_empty(), "cuTT always has a Packed fallback");

        match mode {
            CuttMode::Heuristic => {
                let kernel = cands.remove(0);
                CuttPlan {
                    label: kernel.name().to_string(),
                    kernel,
                    problem: p,
                    plan_time_ns: HEURISTIC_PLAN_NS,
                    exec_scale: 1.0,
                }
            }
            CuttMode::Measure => {
                let mut best: Option<(f64, CuttKernel<E>)> = None;
                let mut plan_time = self.timing.plan_overhead_ns();
                for kernel in cands {
                    let outcome = self.executor.analyze(&kernel).expect("plan launches");
                    let stats = de_texture(outcome.stats, p.rank(), kernel.is_packed());
                    let t = self.timing.time(&stats, &outcome.launch).time_ns;
                    plan_time += t + MEASURE_BUILD_NS;
                    if best.as_ref().map(|(bt, _)| t < *bt).unwrap_or(true) {
                        best = Some((t, kernel));
                    }
                }
                let (_, kernel) = best.expect("at least one candidate");
                CuttPlan {
                    label: kernel.name().to_string(),
                    kernel,
                    problem: p,
                    plan_time_ns: plan_time,
                    exec_scale: MEASURE_WARM_SCALE,
                }
            }
        }
    }

    /// Time a plan without moving data.
    pub fn time_plan<E: Element>(&self, plan: &CuttPlan<E>) -> BaselineReport {
        let outcome = self
            .executor
            .analyze(&plan.kernel)
            .expect("kernel launches");
        self.report(plan, outcome.stats)
    }

    /// Execute a plan with data.
    pub fn execute<E: Element>(
        &self,
        plan: &CuttPlan<E>,
        input: &DenseTensor<E>,
    ) -> (DenseTensor<E>, BaselineReport) {
        let out_shape = plan
            .problem
            .orig_perm
            .apply_to_shape(&plan.problem.orig_shape)
            .expect("valid");
        let mut out = DenseTensor::zeros(out_shape);
        let outcome = self
            .executor
            .run(
                &plan.kernel,
                input.data(),
                out.data_mut(),
                ExecMode::Execute {
                    check_disjoint_writes: false,
                },
            )
            .expect("kernel launches");
        let report = self.report(plan, outcome.stats);
        (out, report)
    }

    fn report<E: Element>(&self, plan: &CuttPlan<E>, stats: TransactionStats) -> BaselineReport {
        let stats = de_texture(stats, plan.problem.rank(), plan.kernel.is_packed());
        let mut t = self.timing.time(&stats, &plan.kernel.launch());
        t.time_ns *= plan.exec_scale;
        BaselineReport {
            kind: plan.label.clone(),
            kernel_time_ns: t.time_ns,
            bandwidth_gbps: timing::bandwidth_gbps(plan.problem.volume(), E::BYTES, t.time_ns),
            plan_time_ns: plan.plan_time_ns,
            stats,
            timing: t,
        }
    }
}

/// Whether a packed choice had to split a rank (blocking below the full
/// extent) to fit shared memory — cuTT's PackedSplit case.
fn is_split(p: &Problem, c: &OaChoice) -> bool {
    let xa = c.in_dims - 1;
    if c.block_a < p.extent(xa) {
        return true;
    }
    let jb = p.perm.output_dim_source(c.out_dims - 1);
    jb >= c.in_dims && c.block_b < p.extent(jb)
}

/// cuTT's packed-slice choices: full leading input ranks to reach the warp
/// size, full leading output ranks to reach the warp size, largest staged
/// rank split (halved) until the slice fits shared memory. Returns one
/// primary choice plus (for measure mode) a deeper-staging variant.
fn packed_choices<E: Element>(p: &Problem, smem_limit: usize) -> Vec<OaChoice> {
    let mut out = Vec::new();
    let base = OaChoice::default_for::<E>(p, smem_limit);
    if let Some(mut c) = base {
        // cuTT packs whole ranks: prefer the unblocked-input variant when
        // it fits.
        let full_a = OaChoice {
            block_a: p.extent(c.in_dims - 1),
            ..c
        };
        if full_a.is_valid(p) && full_a.fits_smem(p, E::BYTES, smem_limit) {
            c = full_a;
        }
        out.push(c);
        // Deeper output staging as a measured alternative.
        if c.out_dims < p.rank() {
            let deeper = OaChoice {
                out_dims: c.out_dims + 1,
                block_b: p.extent(p.perm.output_dim_source(c.out_dims)),
                ..c
            };
            if deeper.is_valid(p) && deeper.fits_smem(p, E::BYTES, smem_limit) {
                out.push(deeper);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttlg_tensor::reference;

    fn check(extents: &[usize], perm: &[usize], mode: CuttMode) -> BaselineReport {
        let shape = Shape::new(extents).unwrap();
        let perm = Permutation::new(perm).unwrap();
        let lib = CuttLibrary::new(DeviceConfig::k40c());
        let plan = lib.plan::<u64>(&shape, &perm, mode);
        let input: DenseTensor<u64> = DenseTensor::iota(shape);
        let (out, report) = lib.execute(&plan, &input);
        let expect = reference::transpose_reference(&input, &perm).unwrap();
        assert_eq!(out.data(), expect.data(), "case {extents:?}");
        report
    }

    #[test]
    fn correct_across_kernel_kinds() {
        // Trivial
        check(&[16, 16, 16], &[0, 1, 2], CuttMode::Heuristic);
        // TiledCopy
        check(&[64, 8, 8], &[0, 2, 1], CuttMode::Heuristic);
        // Tiled
        check(&[64, 48], &[1, 0], CuttMode::Heuristic);
        // Packed (small extents)
        check(&[8, 8, 8, 8], &[3, 1, 2, 0], CuttMode::Heuristic);
        // FVI match small -> Packed
        check(&[8, 8, 8, 8], &[0, 3, 2, 1], CuttMode::Heuristic);
    }

    #[test]
    fn measure_mode_correct_and_at_least_as_fast() {
        for (e, q) in [
            (vec![16usize, 16, 16, 16], vec![3usize, 1, 2, 0]),
            (vec![64, 48], vec![1, 0]),
            (vec![8, 8, 8, 8], vec![0, 3, 2, 1]),
        ] {
            let h = check(&e, &q, CuttMode::Heuristic);
            let m = check(&e, &q, CuttMode::Measure);
            assert!(
                m.kernel_time_ns <= h.kernel_time_ns + 1e-6,
                "measure should not lose: {} vs {}",
                m.kernel_time_ns,
                h.kernel_time_ns
            );
            assert!(
                m.plan_time_ns > h.plan_time_ns,
                "measure planning is expensive"
            );
        }
    }

    #[test]
    fn packed_split_engages_when_ranks_do_not_fit() {
        // Big ranks: full packing would blow 48 KiB, forcing a split.
        let shape = Shape::new(&[128, 128, 64]).unwrap();
        let perm = Permutation::new(&[2, 0, 1]).unwrap();
        let lib = CuttLibrary::new(DeviceConfig::k40c());
        let plan = lib.plan::<f64>(&shape, &perm, CuttMode::Measure);
        // whichever wins, a PackedSplit candidate must exist and run
        // correctly when selected; verify correctness either way.
        let input: DenseTensor<u64> = DenseTensor::iota(shape.clone());
        let plan_u: CuttPlan<u64> = lib.plan::<u64>(&shape, &perm, CuttMode::Measure);
        let (out, _) = lib.execute(&plan_u, &input);
        let expect = ttlg_tensor::reference::transpose_reference(&input, &perm).unwrap();
        assert_eq!(out.data(), expect.data());
        assert!(!plan.label().is_empty());
    }

    #[test]
    fn plan_time_structure() {
        let shape = Shape::new(&[32, 32, 32]).unwrap();
        let perm = Permutation::new(&[2, 1, 0]).unwrap();
        let lib = CuttLibrary::new(DeviceConfig::k40c());
        let h = lib.plan::<f64>(&shape, &perm, CuttMode::Heuristic);
        let m = lib.plan::<f64>(&shape, &perm, CuttMode::Measure);
        assert!(h.plan_time_ns() < 500_000.0);
        assert!(m.plan_time_ns() > h.plan_time_ns());
        assert!(!m.label().is_empty());
    }

    #[test]
    fn de_texture_moves_traffic() {
        let stats = TransactionStats {
            tex_load_tx: 100,
            elements_moved: 1000,
            ..Default::default()
        };
        let s = de_texture(stats, 4, true);
        assert_eq!(s.tex_load_tx, 0);
        assert_eq!(s.index_instr, 16_000);
        assert_eq!(s.special_instr, 4000);
        let s2 = de_texture(stats, 4, false);
        assert_eq!(s2.special_instr, 0);
    }
}
