//! The naive d-nested-loop GPU transposition, wrapped as a baseline
//! library with the same run/report interface as the others — plus its
//! CPU twin [`NaiveCpuTranspose`], the wall-clock baseline the tiled
//! CPU backend is measured against.

use crate::BaselineReport;
use std::time::Instant;
use ttlg::kernels::NaiveKernel;
use ttlg::Problem;
use ttlg_gpu_sim::{
    timing, DeviceConfig, ExecMode, Executor, KernelTiming, TimingModel, TransactionStats,
};
use ttlg_tensor::{DenseTensor, Element, Permutation, Shape};

/// Naive transposition "library".
pub struct NaiveTranspose {
    executor: Executor,
    timing: TimingModel,
}

impl NaiveTranspose {
    /// Build for a device.
    pub fn new(device: DeviceConfig) -> Self {
        NaiveTranspose {
            executor: Executor::new(device.clone()),
            timing: TimingModel::new(device),
        }
    }

    /// Time a transposition without moving data.
    pub fn time<E: Element>(&self, shape: &Shape, perm: &Permutation) -> BaselineReport {
        let p = Problem::new(shape, perm).expect("valid problem");
        let k = NaiveKernel::<E>::new(&p);
        let outcome = self.executor.analyze(&k).expect("naive kernel launches");
        let t = self.timing.time(&outcome.stats, &outcome.launch);
        BaselineReport {
            kind: "naive".into(),
            kernel_time_ns: t.time_ns,
            bandwidth_gbps: timing::bandwidth_gbps(p.volume(), E::BYTES, t.time_ns),
            plan_time_ns: 0.0,
            stats: outcome.stats,
            timing: t,
        }
    }

    /// Execute (with data) and report.
    pub fn execute<E: Element>(
        &self,
        input: &DenseTensor<E>,
        perm: &Permutation,
    ) -> (DenseTensor<E>, BaselineReport) {
        let p = Problem::new(input.shape(), perm).expect("valid problem");
        let k = NaiveKernel::<E>::new(&p);
        let out_shape = perm.apply_to_shape(input.shape()).expect("valid perm");
        let mut out = DenseTensor::zeros(out_shape);
        let outcome = self
            .executor
            .run(
                &k,
                input.data(),
                out.data_mut(),
                ExecMode::Execute {
                    check_disjoint_writes: false,
                },
            )
            .expect("naive kernel launches");
        let t = self.timing.time(&outcome.stats, &outcome.launch);
        let report = BaselineReport {
            kind: "naive".into(),
            kernel_time_ns: t.time_ns,
            bandwidth_gbps: timing::bandwidth_gbps(p.volume(), E::BYTES, t.time_ns),
            plan_time_ns: 0.0,
            stats: outcome.stats,
            timing: t,
        };
        (out, report)
    }
}

/// Naive single-threaded CPU transposition, wall-clock timed: one
/// scalar element move per step of a d-digit odometer over the output
/// index space (sequential stores, strided gathers) — the CPU analogue
/// of the d-nested-loop kernel of the paper's introduction. No tiling,
/// no run coalescing, no threads: exactly what `ttlg-cpu` has to beat.
#[derive(Debug, Default)]
pub struct NaiveCpuTranspose;

impl NaiveCpuTranspose {
    /// Build the baseline (stateless).
    pub fn new() -> Self {
        NaiveCpuTranspose
    }

    /// Execute on real data and report wall-clock time/bandwidth.
    pub fn execute<E: Element>(
        &self,
        input: &DenseTensor<E>,
        perm: &Permutation,
    ) -> (DenseTensor<E>, BaselineReport) {
        let out_shape = perm.apply_to_shape(input.shape()).expect("valid perm");
        let rank = input.shape().rank();
        let in_strides = input.shape().strides();
        // Walking output dim d moves the input offset by the stride of
        // the input dimension it came from.
        let perm_strides: Vec<usize> = perm.as_slice().iter().map(|&j| in_strides[j]).collect();
        let out_ext: Vec<usize> = (0..rank).map(|d| out_shape.extent(d)).collect();
        let vol = input.volume();
        let mut out = DenseTensor::zeros(out_shape);
        let src = input.data();
        let t0 = Instant::now();
        {
            let dst = out.data_mut();
            let mut idx = vec![0usize; rank];
            let mut in_off = 0usize;
            for slot in dst.iter_mut().take(vol) {
                *slot = src[in_off];
                for d in 0..rank {
                    idx[d] += 1;
                    in_off += perm_strides[d];
                    if idx[d] < out_ext[d] {
                        break;
                    }
                    in_off -= perm_strides[d] * out_ext[d];
                    idx[d] = 0;
                }
            }
        }
        let wall_ns = (t0.elapsed().as_nanos() as f64).max(1.0);
        // Cache-line traffic stands in for DRAM transactions so the
        // shared report shape stays meaningful (64 B lines, read+write).
        let line_tx = (vol * E::BYTES).div_ceil(64) as u64;
        let report = BaselineReport {
            kind: "naive-cpu".into(),
            kernel_time_ns: wall_ns,
            bandwidth_gbps: timing::bandwidth_gbps(vol, E::BYTES, wall_ns),
            plan_time_ns: 0.0,
            stats: TransactionStats {
                dram_load_tx: line_tx,
                dram_store_tx: line_tx,
                elements_moved: vol as u64,
                ..Default::default()
            },
            timing: KernelTiming {
                time_ns: wall_ns,
                dram_ns: wall_ns,
                smem_ns: 0.0,
                instr_ns: 0.0,
                launch_ns: 0.0,
                mlp: 1.0,
                tail: 1.0,
            },
        };
        (out, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttlg_tensor::reference;

    #[test]
    fn executes_correctly_and_slowly() {
        let shape = Shape::new(&[32, 32, 32]).unwrap();
        let perm = Permutation::new(&[2, 1, 0]).unwrap();
        let input: DenseTensor<u64> = DenseTensor::iota(shape.clone());
        let nv = NaiveTranspose::new(DeviceConfig::k40c());
        let (out, report) = nv.execute(&input, &perm);
        let expect = reference::transpose_reference(&input, &perm).unwrap();
        assert_eq!(out.data(), expect.data());

        // And it is slower than TTLG on the same problem.
        let t = ttlg::Transposer::new_k40c();
        let plan = t
            .plan::<u64>(&shape, &perm, &ttlg::TransposeOptions::default())
            .unwrap();
        let ttlg_report = t.time_plan(&plan).unwrap();
        assert!(
            report.kernel_time_ns > 1.5 * ttlg_report.kernel_time_ns,
            "naive {} vs ttlg {}",
            report.kernel_time_ns,
            ttlg_report.kernel_time_ns
        );
    }

    #[test]
    fn cpu_naive_is_correct_and_wall_clock_timed() {
        let shape = Shape::new(&[48, 32, 24]).unwrap();
        let perm = Permutation::new(&[2, 0, 1]).unwrap();
        let input: DenseTensor<u32> = DenseTensor::iota(shape);
        let (out, report) = NaiveCpuTranspose::new().execute(&input, &perm);
        let expect = reference::transpose_reference(&input, &perm).unwrap();
        assert_eq!(out.data(), expect.data());
        assert_eq!(report.kind, "naive-cpu");
        assert!(report.kernel_time_ns >= 1.0);
        assert!(report.bandwidth_gbps > 0.0);
        assert!(report.stats.dram_load_tx > 0);
    }

    #[test]
    fn time_matches_execute() {
        let shape = Shape::new(&[16, 16, 16]).unwrap();
        let perm = Permutation::new(&[1, 2, 0]).unwrap();
        let nv = NaiveTranspose::new(DeviceConfig::k40c());
        let r1 = nv.time::<u64>(&shape, &perm);
        let input: DenseTensor<u64> = DenseTensor::iota(shape);
        let (_, r2) = nv.execute(&input, &perm);
        assert_eq!(r1.stats.dram_load_tx, r2.stats.dram_load_tx);
    }
}
