//! The naive d-nested-loop GPU transposition, wrapped as a baseline
//! library with the same run/report interface as the others.

use crate::BaselineReport;
use ttlg::kernels::NaiveKernel;
use ttlg::Problem;
use ttlg_gpu_sim::{timing, DeviceConfig, ExecMode, Executor, TimingModel};
use ttlg_tensor::{DenseTensor, Element, Permutation, Shape};

/// Naive transposition "library".
pub struct NaiveTranspose {
    executor: Executor,
    timing: TimingModel,
}

impl NaiveTranspose {
    /// Build for a device.
    pub fn new(device: DeviceConfig) -> Self {
        NaiveTranspose {
            executor: Executor::new(device.clone()),
            timing: TimingModel::new(device),
        }
    }

    /// Time a transposition without moving data.
    pub fn time<E: Element>(&self, shape: &Shape, perm: &Permutation) -> BaselineReport {
        let p = Problem::new(shape, perm).expect("valid problem");
        let k = NaiveKernel::<E>::new(&p);
        let outcome = self.executor.analyze(&k).expect("naive kernel launches");
        let t = self.timing.time(&outcome.stats, &outcome.launch);
        BaselineReport {
            kind: "naive".into(),
            kernel_time_ns: t.time_ns,
            bandwidth_gbps: timing::bandwidth_gbps(p.volume(), E::BYTES, t.time_ns),
            plan_time_ns: 0.0,
            stats: outcome.stats,
            timing: t,
        }
    }

    /// Execute (with data) and report.
    pub fn execute<E: Element>(
        &self,
        input: &DenseTensor<E>,
        perm: &Permutation,
    ) -> (DenseTensor<E>, BaselineReport) {
        let p = Problem::new(input.shape(), perm).expect("valid problem");
        let k = NaiveKernel::<E>::new(&p);
        let out_shape = perm.apply_to_shape(input.shape()).expect("valid perm");
        let mut out = DenseTensor::zeros(out_shape);
        let outcome = self
            .executor
            .run(
                &k,
                input.data(),
                out.data_mut(),
                ExecMode::Execute {
                    check_disjoint_writes: false,
                },
            )
            .expect("naive kernel launches");
        let t = self.timing.time(&outcome.stats, &outcome.launch);
        let report = BaselineReport {
            kind: "naive".into(),
            kernel_time_ns: t.time_ns,
            bandwidth_gbps: timing::bandwidth_gbps(p.volume(), E::BYTES, t.time_ns),
            plan_time_ns: 0.0,
            stats: outcome.stats,
            timing: t,
        };
        (out, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttlg_tensor::reference;

    #[test]
    fn executes_correctly_and_slowly() {
        let shape = Shape::new(&[32, 32, 32]).unwrap();
        let perm = Permutation::new(&[2, 1, 0]).unwrap();
        let input: DenseTensor<u64> = DenseTensor::iota(shape.clone());
        let nv = NaiveTranspose::new(DeviceConfig::k40c());
        let (out, report) = nv.execute(&input, &perm);
        let expect = reference::transpose_reference(&input, &perm).unwrap();
        assert_eq!(out.data(), expect.data());

        // And it is slower than TTLG on the same problem.
        let t = ttlg::Transposer::new_k40c();
        let plan = t
            .plan::<u64>(&shape, &perm, &ttlg::TransposeOptions::default())
            .unwrap();
        let ttlg_report = t.time_plan(&plan).unwrap();
        assert!(
            report.kernel_time_ns > 1.5 * ttlg_report.kernel_time_ns,
            "naive {} vs ttlg {}",
            report.kernel_time_ns,
            ttlg_report.kernel_time_ns
        );
    }

    #[test]
    fn time_matches_execute() {
        let shape = Shape::new(&[16, 16, 16]).unwrap();
        let perm = Permutation::new(&[1, 2, 0]).unwrap();
        let nv = NaiveTranspose::new(DeviceConfig::k40c());
        let r1 = nv.time::<u64>(&shape, &perm);
        let input: DenseTensor<u64> = DenseTensor::iota(shape);
        let (_, r2) = nv.execute(&input, &perm);
        assert_eq!(r1.stats.dram_load_tx, r2.stats.dram_load_tx);
    }
}
