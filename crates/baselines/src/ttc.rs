//! A TTC-style ahead-of-time transposition code generator (Springer,
//! Sankaran & Bientinesi, ARRAY 2016) on the simulated device.
//!
//! TTC generates a fixed kernel for one (size, permutation) pair by
//! exhaustively measuring candidate implementations offline (the paper
//! quotes ~8 s of code generation per input) — so it has **no online plan
//! time**, and only the repeated-use comparison includes it.
//!
//! Structural differences from the libraries (kept deliberately, they
//! produce the performance gap the paper reports):
//! * no index fusion — the generated loop nest works on the raw rank;
//! * a single 32x32 (or 16-wide) tile over the pair
//!   `(input dim 0, output dim 0)` with an **unpadded** shared tile
//!   (bank-conflicted column reads);
//! * in-kernel index arithmetic (constant-folded at codegen: cheaper per
//!   element than cuTT's dynamic arithmetic).

use crate::BaselineReport;
use ttlg::kernels::{
    CopyKernel, FviMatchLargeKernel, NaiveKernel, OdChoice, OrthogonalDistinctKernel,
};
use ttlg::Problem;
use ttlg_gpu_sim::{
    timing, Accounting, BlockIo, BlockKernel, DeviceConfig, ExecMode, Executor, Launch,
    TimingModel, TransactionStats,
};
use ttlg_tensor::{DenseTensor, Element, Permutation, Shape, WARP_SIZE};

/// Offline code-generation cost the paper reports (~8 s per input).
pub const CODEGEN_TIME_NS: f64 = 8.0e9;

enum TtcKernel<E: Element> {
    Copy(CopyKernel<E>),
    Direct(FviMatchLargeKernel<E>),
    Tiled(OrthogonalDistinctKernel<E>),
    Loop(NaiveKernel<E>),
}

impl<E: Element> BlockKernel<E> for TtcKernel<E> {
    fn name(&self) -> &str {
        match self {
            TtcKernel::Copy(_) => "ttc-copy",
            TtcKernel::Direct(_) => "ttc-direct",
            TtcKernel::Tiled(_) => "ttc-tiled",
            TtcKernel::Loop(_) => "ttc-loopnest",
        }
    }

    fn launch(&self) -> Launch {
        match self {
            TtcKernel::Copy(k) => k.launch(),
            TtcKernel::Direct(k) => k.launch(),
            TtcKernel::Tiled(k) => k.launch(),
            TtcKernel::Loop(k) => k.launch(),
        }
    }

    fn run_block(&self, block: usize, io: &BlockIo<'_, E>, acct: &mut Accounting) {
        match self {
            TtcKernel::Copy(k) => k.run_block(block, io, acct),
            TtcKernel::Direct(k) => k.run_block(block, io, acct),
            TtcKernel::Tiled(k) => k.run_block(block, io, acct),
            TtcKernel::Loop(k) => k.run_block(block, io, acct),
        }
    }

    fn block_class(&self, block: usize) -> u32 {
        match self {
            TtcKernel::Copy(k) => k.block_class(block),
            TtcKernel::Direct(k) => k.block_class(block),
            TtcKernel::Tiled(k) => k.block_class(block),
            TtcKernel::Loop(k) => k.block_class(block),
        }
    }
}

/// Generated code has constant strides, so most index arithmetic folds to
/// ~2 int ops per rank per element; remainder handling keeps a couple of
/// real mod/div per element. No texture-resident offset arrays.
fn de_texture(mut stats: TransactionStats, rank: usize) -> TransactionStats {
    stats.tex_load_tx = 0;
    stats.index_instr += 2 * rank as u64 * stats.elements_moved;
    stats.special_instr += 2 * stats.elements_moved;
    stats
}

/// A generated executable for one (shape, permutation) pair.
pub struct TtcExecutable<E: Element> {
    problem: Problem,
    kernel: TtcKernel<E>,
    label: String,
    /// Offline codegen cost (not charged at runtime).
    pub codegen_time_ns: f64,
}

impl<E: Element> TtcExecutable<E> {
    /// Which candidate won the offline search.
    pub fn label(&self) -> &str {
        &self.label
    }
}

/// The TTC generator.
pub struct TtcGenerator {
    executor: Executor,
    timing: TimingModel,
}

impl TtcGenerator {
    /// Build for a device.
    pub fn new(device: DeviceConfig) -> Self {
        TtcGenerator {
            executor: Executor::new(device.clone()),
            timing: TimingModel::new(device),
        }
    }

    /// Offline code generation: enumerate candidates, measure all, keep
    /// the best. No fusion — TTC works on the raw rank.
    pub fn generate<E: Element>(&self, shape: &Shape, perm: &Permutation) -> TtcExecutable<E> {
        let p = Problem::new_unfused(shape, perm).expect("valid problem");
        let smem = self.executor.device().smem_per_sm;
        let mut cands: Vec<TtcKernel<E>> = Vec::new();

        let _ = smem;
        if p.perm.is_identity() {
            cands.push(TtcKernel::Copy(CopyKernel::new(p.volume())));
        } else if p.perm.fvi_matches() {
            if p.extent(0) >= WARP_SIZE {
                cands.push(TtcKernel::Direct(FviMatchLargeKernel::new(&p)));
            }
            // TTC has no specialized small-matching-FVI scheme: the
            // generated loop nest with vectorized stores is the fallback.
            cands.push(TtcKernel::Loop(NaiveKernel::new(&p)));
        } else {
            let n0 = p.extent(0);
            let j0 = p.perm.output_dim_source(0);
            for (ba, bb) in [(32usize, 32usize), (16, 32), (32, 16), (16, 16)] {
                let c = OdChoice {
                    in_dims: 1,
                    block_a: n0.min(ba),
                    out_dims: 1,
                    block_b: p.extent(j0).min(bb),
                };
                if c.is_valid(&p) {
                    // unpadded tile: the generated code skips the +1 column
                    cands.push(TtcKernel::Tiled(
                        OrthogonalDistinctKernel::new_with_padding(&p, c, false),
                    ));
                }
            }
            cands.push(TtcKernel::Loop(NaiveKernel::new(&p)));
        }
        assert!(!cands.is_empty(), "TTC always has a candidate");

        // Deduplicate identical blockings, then measure all.
        let mut best: Option<(f64, TtcKernel<E>)> = None;
        for kernel in cands {
            let outcome = self.executor.analyze(&kernel).expect("candidate launches");
            let stats = de_texture(outcome.stats, p.rank());
            let t = self.timing.time(&stats, &outcome.launch).time_ns;
            if best.as_ref().map(|(bt, _)| t < *bt).unwrap_or(true) {
                best = Some((t, kernel));
            }
        }
        let (_, kernel) = best.expect("at least one candidate");
        TtcExecutable {
            label: kernel.name().to_string(),
            kernel,
            problem: p,
            codegen_time_ns: CODEGEN_TIME_NS,
        }
    }

    /// Time an executable without moving data.
    pub fn time<E: Element>(&self, exe: &TtcExecutable<E>) -> BaselineReport {
        let outcome = self.executor.analyze(&exe.kernel).expect("kernel launches");
        self.report(exe, outcome.stats)
    }

    /// Execute with data.
    pub fn execute<E: Element>(
        &self,
        exe: &TtcExecutable<E>,
        input: &DenseTensor<E>,
    ) -> (DenseTensor<E>, BaselineReport) {
        let out_shape = exe
            .problem
            .orig_perm
            .apply_to_shape(&exe.problem.orig_shape)
            .expect("valid");
        let mut out = DenseTensor::zeros(out_shape);
        let outcome = self
            .executor
            .run(
                &exe.kernel,
                input.data(),
                out.data_mut(),
                ExecMode::Execute {
                    check_disjoint_writes: false,
                },
            )
            .expect("kernel launches");
        let report = self.report(exe, outcome.stats);
        (out, report)
    }

    fn report<E: Element>(
        &self,
        exe: &TtcExecutable<E>,
        stats: TransactionStats,
    ) -> BaselineReport {
        let stats = de_texture(stats, exe.problem.rank());
        let t = self.timing.time(&stats, &exe.kernel.launch());
        BaselineReport {
            kind: exe.label.clone(),
            kernel_time_ns: t.time_ns,
            bandwidth_gbps: timing::bandwidth_gbps(exe.problem.volume(), E::BYTES, t.time_ns),
            plan_time_ns: 0.0,
            stats,
            timing: t,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cutt::{CuttLibrary, CuttMode};
    use ttlg_tensor::reference;

    fn check(extents: &[usize], perm: &[usize]) -> BaselineReport {
        let shape = Shape::new(extents).unwrap();
        let perm = Permutation::new(perm).unwrap();
        let gen = TtcGenerator::new(DeviceConfig::k40c());
        let exe = gen.generate::<u64>(&shape, &perm);
        let input: DenseTensor<u64> = DenseTensor::iota(shape);
        let (out, report) = gen.execute(&exe, &input);
        let expect = reference::transpose_reference(&input, &perm).unwrap();
        assert_eq!(out.data(), expect.data(), "case {extents:?}");
        report
    }

    #[test]
    fn correct_across_kinds() {
        check(&[16, 16, 16], &[0, 1, 2]);
        check(&[64, 8, 8], &[0, 2, 1]);
        check(&[64, 48], &[1, 0]);
        check(&[8, 8, 8, 8], &[3, 1, 2, 0]);
        check(&[16, 16, 16, 16], &[2, 1, 3, 0]);
    }

    #[test]
    fn codegen_cost_reported_offline() {
        let shape = Shape::new(&[32, 32]).unwrap();
        let perm = Permutation::new(&[1, 0]).unwrap();
        let gen = TtcGenerator::new(DeviceConfig::k40c());
        let exe = gen.generate::<f64>(&shape, &perm);
        assert_eq!(exe.codegen_time_ns, CODEGEN_TIME_NS);
        let r = gen.time(&exe);
        assert_eq!(r.plan_time_ns, 0.0);
    }

    #[test]
    fn ttc_slower_than_cutt_on_fusable_6d(// the Fig. 6 shape: TTC pays for skipping fusion and padding
    ) {
        let shape = Shape::new(&[16, 16, 16, 16]).unwrap();
        let perm = Permutation::new(&[3, 2, 0, 1]).unwrap(); // 0,1 fusable
        let gen = TtcGenerator::new(DeviceConfig::k40c());
        let exe = gen.generate::<f64>(&shape, &perm);
        let ttc = gen.time(&exe);
        let cutt = CuttLibrary::new(DeviceConfig::k40c());
        let plan = cutt.plan::<f64>(&shape, &perm, CuttMode::Measure);
        let cm = cutt.time_plan(&plan);
        assert!(
            ttc.kernel_time_ns >= cm.kernel_time_ns,
            "ttc {} vs cutt-measure {}",
            ttc.kernel_time_ns,
            cm.kernel_time_ns
        );
    }
}
