//! # ttlg-baselines
//!
//! Reimplementations of the systems the TTLG paper compares against,
//! running on the same transaction-level GPU model so the comparisons are
//! apples-to-apples:
//!
//! * [`cutt`] — a structurally faithful cuTT (Hynninen & Lyakh 2017):
//!   Trivial / TiledCopy / Tiled / Packed / PackedSplit kernels, with the
//!   **heuristic** plan mode (cheap analytic choice) and the **measure**
//!   plan mode (build and run all candidate plans, keep the best —
//!   expensive plan time, slightly better kernels, plus the small
//!   cache-warm advantage the paper observed).
//! * [`ttc`] — a TTC-style ahead-of-time code generator (Springer et al.
//!   2016): exhaustive candidate measurement offline (the paper quotes
//!   ~8 s of codegen per input), no index fusion, unpadded tiles.
//! * [`naive`] — the d-nested-loop kernel of the paper's introduction.
//!
//! Fidelity notes (see DESIGN.md): cuTT computes element indices in-kernel
//! (warp-parallel integer arithmetic) instead of TTLG's texture-resident
//! offset arrays. We reuse TTLG's kernel bodies for data movement (they
//! are the same loads/stores) and post-transform the transaction
//! statistics: texture traffic is replaced by the equivalent in-kernel
//! index arithmetic. That keeps correctness exact and shifts the cost to
//! the pipe cuTT actually burdens.

pub mod cutt;
pub mod naive;
pub mod ttc;

use ttlg_gpu_sim::{KernelTiming, TransactionStats};

/// A timed baseline run, in the paper's reporting units.
#[derive(Debug, Clone)]
pub struct BaselineReport {
    /// Which kernel/plan the baseline chose (for logs).
    pub kind: String,
    /// Kernel execution time, ns.
    pub kernel_time_ns: f64,
    /// The paper's bandwidth metric, GB/s.
    pub bandwidth_gbps: f64,
    /// Plan-construction time, ns (0 for precompiled generators).
    pub plan_time_ns: f64,
    /// Measured transaction statistics.
    pub stats: TransactionStats,
    /// Timing decomposition.
    pub timing: KernelTiming,
}
