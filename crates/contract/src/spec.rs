//! Einsum-style contraction specifications.
//!
//! A spec is a string `"<A indices>,<B indices>-><C indices>"` with
//! single-character index labels, e.g. `"kil,ljk->ij"`. Index positions
//! follow this workspace's layout convention: the **first** label is the
//! fastest-varying dimension.
//!
//! Semantics: `C[out...] = sum over contracted labels of A[...] * B[...]`
//! where the contracted labels are exactly those appearing in both inputs
//! and not in the output. Labels may not repeat within one tensor (no
//! traces), and every output label must come from at least one input —
//! the classic binary-einsum subset TTGT handles.

use std::collections::BTreeSet;

/// A parsed, validated contraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContractionSpec {
    /// Index labels of `A`, fastest-varying first.
    pub a: Vec<char>,
    /// Index labels of `B`.
    pub b: Vec<char>,
    /// Index labels of `C` (the requested output order).
    pub c: Vec<char>,
    /// Labels free in `A` (appear in A and C).
    pub m_labels: Vec<char>,
    /// Labels free in `B` (appear in B and C).
    pub n_labels: Vec<char>,
    /// Contracted labels (appear in A and B, not in C).
    pub k_labels: Vec<char>,
}

/// Spec parsing/validation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The string is not of the form `x,y->z`.
    Syntax,
    /// A label repeats within one tensor.
    RepeatedLabel(char),
    /// An output label appears in no input.
    UnknownOutput(char),
    /// An output label appears in both inputs (would be a batch index;
    /// not supported by this TTGT subset).
    BatchLabel(char),
    /// A label appears in exactly one input and not in the output
    /// (an implicit sum over a free index; not supported).
    DanglingLabel(char),
    /// A tensor has no indices.
    Empty,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Syntax => write!(f, "expected \"<a>,<b>-><c>\""),
            SpecError::RepeatedLabel(c) => write!(f, "label '{c}' repeats within one tensor"),
            SpecError::UnknownOutput(c) => write!(f, "output label '{c}' not found in inputs"),
            SpecError::BatchLabel(c) => {
                write!(
                    f,
                    "label '{c}' appears in both inputs and the output (batch indices unsupported)"
                )
            }
            SpecError::DanglingLabel(c) => {
                write!(
                    f,
                    "label '{c}' appears in one input only and not in the output"
                )
            }
            SpecError::Empty => write!(f, "each tensor needs at least one index"),
        }
    }
}

impl std::error::Error for SpecError {}

fn unique(labels: &[char]) -> Result<(), SpecError> {
    let mut seen = BTreeSet::new();
    for &c in labels {
        if !seen.insert(c) {
            return Err(SpecError::RepeatedLabel(c));
        }
    }
    Ok(())
}

impl ContractionSpec {
    /// Parse `"kil,ljk->ij"`.
    pub fn parse(s: &str) -> Result<ContractionSpec, SpecError> {
        let (inputs, out) = s.split_once("->").ok_or(SpecError::Syntax)?;
        let (a, b) = inputs.split_once(',').ok_or(SpecError::Syntax)?;
        let a: Vec<char> = a.trim().chars().collect();
        let b: Vec<char> = b.trim().chars().collect();
        let c: Vec<char> = out.trim().chars().collect();
        if a.is_empty() || b.is_empty() || c.is_empty() {
            return Err(SpecError::Empty);
        }
        unique(&a)?;
        unique(&b)?;
        unique(&c)?;

        let in_a: BTreeSet<char> = a.iter().copied().collect();
        let in_b: BTreeSet<char> = b.iter().copied().collect();
        let in_c: BTreeSet<char> = c.iter().copied().collect();

        for &l in &c {
            if !in_a.contains(&l) && !in_b.contains(&l) {
                return Err(SpecError::UnknownOutput(l));
            }
            if in_a.contains(&l) && in_b.contains(&l) {
                return Err(SpecError::BatchLabel(l));
            }
        }
        for &l in in_a.union(&in_b) {
            let shared = in_a.contains(&l) && in_b.contains(&l);
            if !shared && !in_c.contains(&l) {
                return Err(SpecError::DanglingLabel(l));
            }
        }

        // Keep output order for the free labels; A-order for contracted.
        let m_labels: Vec<char> = c.iter().copied().filter(|l| in_a.contains(l)).collect();
        let n_labels: Vec<char> = c.iter().copied().filter(|l| in_b.contains(l)).collect();
        let k_labels: Vec<char> = a
            .iter()
            .copied()
            .filter(|l| in_b.contains(l) && !in_c.contains(l))
            .collect();

        Ok(ContractionSpec {
            a,
            b,
            c,
            m_labels,
            n_labels,
            k_labels,
        })
    }

    /// Position of label `l` in tensor-A order.
    pub fn a_pos(&self, l: char) -> usize {
        self.a.iter().position(|&x| x == l).expect("label in A")
    }

    /// Position of label `l` in tensor-B order.
    pub fn b_pos(&self, l: char) -> usize {
        self.b.iter().position(|&x| x == l).expect("label in B")
    }

    /// GEMM sizes (M, N, K) for given per-label extents.
    pub fn gemm_sizes(&self, extent_of: &dyn Fn(char) -> usize) -> (usize, usize, usize) {
        let m = self.m_labels.iter().map(|&l| extent_of(l)).product();
        let n = self.n_labels.iter().map(|&l| extent_of(l)).product();
        let k = self.k_labels.iter().map(|&l| extent_of(l)).product();
        (m, n, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_style_spec() {
        let s = ContractionSpec::parse("kil,ljk->ij").unwrap();
        assert_eq!(s.a, vec!['k', 'i', 'l']);
        assert_eq!(s.b, vec!['l', 'j', 'k']);
        assert_eq!(s.m_labels, vec!['i']);
        assert_eq!(s.n_labels, vec!['j']);
        assert_eq!(s.k_labels, vec!['k', 'l']);
    }

    #[test]
    fn matrix_multiply() {
        let s = ContractionSpec::parse("mk,kn->mn").unwrap();
        assert_eq!(s.m_labels, vec!['m']);
        assert_eq!(s.n_labels, vec!['n']);
        assert_eq!(s.k_labels, vec!['k']);
    }

    #[test]
    fn multi_index_free_modes() {
        let s = ContractionSpec::parse("abk,kcd->acbd").unwrap();
        assert_eq!(s.m_labels, vec!['a', 'b']); // output order among A-free
        assert_eq!(s.n_labels, vec!['c', 'd']);
        assert_eq!(s.k_labels, vec!['k']);
    }

    #[test]
    fn rejects_bad_specs() {
        assert_eq!(
            ContractionSpec::parse("abc").unwrap_err(),
            SpecError::Syntax
        );
        assert_eq!(
            ContractionSpec::parse("aa,ab->b").unwrap_err(),
            SpecError::RepeatedLabel('a')
        );
        assert_eq!(
            ContractionSpec::parse("ab,bc->ax").unwrap_err(),
            SpecError::UnknownOutput('x')
        );
        assert_eq!(
            ContractionSpec::parse("ab,bc->abc").unwrap_err(),
            SpecError::BatchLabel('b')
        );
        assert_eq!(
            ContractionSpec::parse("ab,bc->c").unwrap_err(),
            SpecError::DanglingLabel('a')
        );
        assert_eq!(
            ContractionSpec::parse(",b->b").unwrap_err(),
            SpecError::Empty
        );
    }

    #[test]
    fn gemm_sizes_multiply_extents() {
        let s = ContractionSpec::parse("abk,kcd->acbd").unwrap();
        let ext = |l: char| match l {
            'a' => 2,
            'b' => 3,
            'c' => 5,
            'd' => 7,
            'k' => 11,
            _ => unreachable!(),
        };
        assert_eq!(s.gemm_sizes(&ext), (6, 35, 11));
    }

    #[test]
    fn positions() {
        let s = ContractionSpec::parse("kil,ljk->ij").unwrap();
        assert_eq!(s.a_pos('i'), 1);
        assert_eq!(s.b_pos('j'), 1);
    }
}
