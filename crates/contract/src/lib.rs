//! # ttlg-contract
//!
//! Tensor contractions via **TTGT**
//! (Transpose-Transpose-GEMM-Transpose) — the use case the TTLG paper
//! builds its queryable performance model for:
//!
//! > "tensor contractions are often implemented by using the TTGT
//! > approach — transpose input tensors to a suitable layout and then use
//! > high-performance matrix multiplication followed by transposition of
//! > the result."
//!
//! The pipeline:
//!
//! 1. parse an einsum-style [`spec::ContractionSpec`] (e.g. `"kil,ljk->ij"`),
//! 2. enumerate the matrix layouts GEMM could run in
//!    ([`planner`]) and price each layout's transpositions with TTLG's
//!    prediction API,
//! 3. execute the cheapest plan: TTLG transposes, a parallel host GEMM
//!    ([`gemm`]), and a final TTLG transpose when the requested output
//!    order differs from the GEMM-native one.

pub mod engine;
pub mod gemm;
pub mod planner;
pub mod spec;

pub use engine::{contract, ContractionEngine, ContractionReport};

/// ```
/// use ttlg_contract::contract;
/// use ttlg_tensor::{DenseTensor, Shape};
///
/// // C[i,j] = sum_k A[k,i] * B[j,k]
/// let a: DenseTensor<f64> = DenseTensor::iota(Shape::new(&[4, 6]).unwrap());
/// let b: DenseTensor<f64> = DenseTensor::iota(Shape::new(&[5, 4]).unwrap());
/// let (c, report) = contract("ki,jk->ij", &a, &b).unwrap();
/// assert_eq!(c.shape().extents(), &[6, 5]);
/// assert_eq!(report.gemm, (6, 5, 4));
/// ```
#[doc(hidden)]
pub struct _DoctestAnchor;
pub use planner::{ContractionPlan, LayoutChoice};
pub use spec::{ContractionSpec, SpecError};
