//! A small cache-blocked, thread-parallel host GEMM — the matrix
//! multiplication substrate of the TTGT pipeline. Matrices follow the
//! workspace layout convention: dimension 0 fastest, i.e. column-major
//! with `A` being `m x k` stored as `a[i + p*m]`.

use ttlg_tensor::parallel;

/// Block size for the k/n blocking (fits comfortably in L1/L2).
const BLOCK: usize = 64;

/// `C[m x n] += A[m x k] * B[k x n]`, all column-major (dim 0 fastest).
pub fn gemm_f64(m: usize, n: usize, k: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    assert_eq!(a.len(), m * k, "A size");
    assert_eq!(b.len(), k * n, "B size");
    assert_eq!(c.len(), m * n, "C size");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    // Parallelise over column panels of C (disjoint writes; panels are
    // whole columns because the chunk length is a multiple of m).
    parallel::parallel_chunks_mut(c, m * BLOCK, |panel, chunk| {
        let n0 = panel * BLOCK;
        let cols = chunk.len() / m;
        for kb in (0..k).step_by(BLOCK) {
            let kend = (kb + BLOCK).min(k);
            for j in 0..cols {
                let bcol = &b[(n0 + j) * k..(n0 + j) * k + k];
                let ccol = &mut chunk[j * m..(j + 1) * m];
                for p in kb..kend {
                    let bv = bcol[p];
                    if bv == 0.0 {
                        continue;
                    }
                    let acol = &a[p * m..(p + 1) * m];
                    for (cv, &av) in ccol.iter_mut().zip(acol.iter()) {
                        *cv += av * bv;
                    }
                }
            }
        }
    });
}

/// Naive triple loop, for testing the blocked kernel.
pub fn gemm_reference(m: usize, n: usize, k: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    for j in 0..n {
        for p in 0..k {
            let bv = b[p + j * k];
            for i in 0..m {
                c[i + j * m] += a[i + p * m] * bv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttlg_tensor::rng::StdRng;

    fn rand_vec(n: usize, rng: &mut StdRng) -> Vec<f64> {
        (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect()
    }

    #[test]
    fn blocked_matches_reference() {
        let mut rng = StdRng::seed_from_u64(42);
        for &(m, n, k) in &[
            (1usize, 1usize, 1usize),
            (7, 5, 3),
            (64, 64, 64),
            (65, 33, 129),
            (128, 1, 17),
        ] {
            let a = rand_vec(m * k, &mut rng);
            let b = rand_vec(k * n, &mut rng);
            let mut c1 = vec![0.0; m * n];
            let mut c2 = vec![0.0; m * n];
            gemm_f64(m, n, k, &a, &b, &mut c1);
            gemm_reference(m, n, k, &a, &b, &mut c2);
            for (x, y) in c1.iter().zip(c2.iter()) {
                assert!(
                    (x - y).abs() < 1e-9 * (1.0 + y.abs()),
                    "(m,n,k)=({m},{n},{k})"
                );
            }
        }
    }

    #[test]
    fn accumulates_into_c() {
        let a = vec![1.0, 2.0]; // 2x1
        let b = vec![3.0]; // 1x1
        let mut c = vec![10.0, 20.0];
        gemm_f64(2, 1, 1, &a, &b, &mut c);
        assert_eq!(c, vec![13.0, 26.0]);
    }

    #[test]
    fn identity_multiplication() {
        let m = 16;
        let a: Vec<f64> = (0..m * m).map(|i| i as f64).collect();
        // B = I (m x m)
        let mut b = vec![0.0; m * m];
        for i in 0..m {
            b[i + i * m] = 1.0;
        }
        let mut c = vec![0.0; m * m];
        gemm_f64(m, m, m, &a, &b, &mut c);
        assert_eq!(c, a);
    }

    #[test]
    fn zero_dims_are_noops() {
        let mut c: Vec<f64> = vec![];
        gemm_f64(0, 0, 0, &[], &[], &mut c);
    }

    #[test]
    #[should_panic(expected = "A size")]
    fn size_mismatch_panics() {
        let mut c = vec![0.0; 4];
        gemm_f64(2, 2, 2, &[0.0; 3], &[0.0; 4], &mut c);
    }
}
