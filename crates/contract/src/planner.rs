//! TTGT layout planning: enumerate the matrix layouts GEMM could run in
//! and price each one's transpositions with TTLG's queryable prediction
//! API (the paper's headline use case for that interface).

use crate::spec::ContractionSpec;
use ttlg::{PlanError, Transposer};
use ttlg_tensor::{Permutation, Shape};

/// One candidate GEMM layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayoutChoice {
    /// Order of the contracted labels in the packed K mode.
    pub k_order: Vec<char>,
    /// Whether GEMM computes `C^T = B' * A'` (output arrives N-fastest)
    /// instead of `C = A' * B'` (M-fastest).
    pub swapped: bool,
}

/// A fully priced contraction plan.
#[derive(Debug, Clone)]
pub struct ContractionPlan {
    /// The parsed spec.
    pub spec: ContractionSpec,
    /// The chosen layout.
    pub layout: LayoutChoice,
    /// Input A shape (validated).
    pub shape_a: Shape,
    /// Input B shape (validated).
    pub shape_b: Shape,
    /// Permutation bringing A to its GEMM layout (`None` = already there).
    pub perm_a: Option<Permutation>,
    /// Permutation bringing B to its GEMM layout.
    pub perm_b: Option<Permutation>,
    /// Final permutation from the GEMM-native output to the requested
    /// order (`None` = already there).
    pub perm_c: Option<Permutation>,
    /// GEMM sizes `(m, n, k)`.
    pub gemm: (usize, usize, usize),
    /// Predicted cost of all transpositions, ns.
    pub predicted_transpose_ns: f64,
    /// Estimated GEMM time, ns (identical across layouts; reported for
    /// context).
    pub predicted_gemm_ns: f64,
    /// How many layout candidates were priced.
    pub candidates_priced: usize,
}

impl ContractionPlan {
    /// Total predicted pipeline time, ns.
    pub fn predicted_total_ns(&self) -> f64 {
        self.predicted_transpose_ns + self.predicted_gemm_ns
    }
}

/// Planning errors.
#[derive(Debug)]
pub enum ContractError {
    /// A tensor's rank does not match its label count.
    RankMismatch {
        /// Which tensor ("A" or "B").
        tensor: &'static str,
        /// Labels in the spec.
        labels: usize,
        /// Rank of the supplied shape.
        rank: usize,
    },
    /// A shared label has different extents in A and B.
    ExtentMismatch {
        /// The offending label.
        label: char,
        /// Extent in A.
        a: usize,
        /// Extent in B.
        b: usize,
    },
    /// The underlying transposition could not be planned.
    Plan(PlanError),
}

impl std::fmt::Display for ContractError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContractError::RankMismatch {
                tensor,
                labels,
                rank,
            } => {
                write!(f, "tensor {tensor}: {labels} labels but rank {rank}")
            }
            ContractError::ExtentMismatch { label, a, b } => {
                write!(f, "label '{label}': extent {a} in A but {b} in B")
            }
            ContractError::Plan(e) => write!(f, "transposition planning failed: {e}"),
        }
    }
}

impl std::error::Error for ContractError {}

impl From<PlanError> for ContractError {
    fn from(e: PlanError) -> Self {
        ContractError::Plan(e)
    }
}

/// K40c double-precision throughput assumed for the GEMM estimate
/// (1.43 TFLOP/s peak at ~65% efficiency).
const GEMM_FLOPS_PER_NS: f64 = 930.0;

/// All permutations of up to `cap` contracted labels (identity order only
/// beyond the cap, to bound planning cost).
fn k_orders(k_labels: &[char], cap: usize) -> Vec<Vec<char>> {
    if k_labels.len() > cap {
        return vec![k_labels.to_vec()];
    }
    let mut orders = Vec::new();
    let mut v = k_labels.to_vec();
    permute_into(&mut v, 0, &mut orders);
    orders
}

fn permute_into(v: &mut Vec<char>, start: usize, out: &mut Vec<Vec<char>>) {
    if start + 1 >= v.len() {
        out.push(v.clone());
        return;
    }
    for i in start..v.len() {
        v.swap(start, i);
        permute_into(v, start + 1, out);
        v.swap(start, i);
    }
}

/// Build the permutation taking `src` label order to `dst` label order
/// (`None` when they already agree).
fn perm_between(src: &[char], dst: &[char]) -> Option<Permutation> {
    assert_eq!(src.len(), dst.len());
    let map: Vec<usize> = dst
        .iter()
        .map(|l| src.iter().position(|s| s == l).expect("label present"))
        .collect();
    let p = Permutation::new(&map).expect("valid by construction");
    (!p.is_identity()).then_some(p)
}

/// Validate shapes against the spec and return an extent lookup.
fn validate(
    spec: &ContractionSpec,
    shape_a: &Shape,
    shape_b: &Shape,
) -> Result<std::collections::HashMap<char, usize>, ContractError> {
    if shape_a.rank() != spec.a.len() {
        return Err(ContractError::RankMismatch {
            tensor: "A",
            labels: spec.a.len(),
            rank: shape_a.rank(),
        });
    }
    if shape_b.rank() != spec.b.len() {
        return Err(ContractError::RankMismatch {
            tensor: "B",
            labels: spec.b.len(),
            rank: shape_b.rank(),
        });
    }
    let mut ext = std::collections::HashMap::new();
    for (i, &l) in spec.a.iter().enumerate() {
        ext.insert(l, shape_a.extent(i));
    }
    for (i, &l) in spec.b.iter().enumerate() {
        let e = shape_b.extent(i);
        if let Some(&prev) = ext.get(&l) {
            if prev != e {
                return Err(ContractError::ExtentMismatch {
                    label: l,
                    a: prev,
                    b: e,
                });
            }
        }
        ext.insert(l, e);
    }
    Ok(ext)
}

/// Price every layout candidate with TTLG's prediction API and return the
/// cheapest plan. `t` supplies the device + performance model.
pub fn plan_contraction(
    t: &Transposer,
    spec: &ContractionSpec,
    shape_a: &Shape,
    shape_b: &Shape,
) -> Result<ContractionPlan, ContractError> {
    let ext = validate(spec, shape_a, shape_b)?;
    let lookup = |l: char| ext[&l];
    let (m, n, k) = spec.gemm_sizes(&lookup);
    let gemm_ns = 2.0 * m as f64 * n as f64 * k as f64 / GEMM_FLOPS_PER_NS;

    let mut best: Option<(f64, ContractionPlan)> = None;
    let mut priced = 0usize;
    for k_order in k_orders(&spec.k_labels, 4) {
        for swapped in [false, true] {
            // Target label orders for the three transpositions.
            let (a_target, b_target, c_native): (Vec<char>, Vec<char>, Vec<char>) = if !swapped {
                (
                    spec.m_labels
                        .iter()
                        .chain(k_order.iter())
                        .copied()
                        .collect(),
                    k_order
                        .iter()
                        .chain(spec.n_labels.iter())
                        .copied()
                        .collect(),
                    spec.m_labels
                        .iter()
                        .chain(spec.n_labels.iter())
                        .copied()
                        .collect(),
                )
            } else {
                (
                    k_order
                        .iter()
                        .chain(spec.m_labels.iter())
                        .copied()
                        .collect(),
                    spec.n_labels
                        .iter()
                        .chain(k_order.iter())
                        .copied()
                        .collect(),
                    spec.n_labels
                        .iter()
                        .chain(spec.m_labels.iter())
                        .copied()
                        .collect(),
                )
            };
            let perm_a = perm_between(&spec.a, &a_target);
            let perm_b = perm_between(&spec.b, &b_target);
            let perm_c = perm_between(&c_native, &spec.c);

            let mut cost = 0.0;
            if let Some(p) = &perm_a {
                cost += t.predict_transpose_ns::<f64>(shape_a, p)?;
            }
            if let Some(p) = &perm_b {
                cost += t.predict_transpose_ns::<f64>(shape_b, p)?;
            }
            if let Some(p) = &perm_c {
                let c_shape = Shape::new(&c_native.iter().map(|&l| lookup(l)).collect::<Vec<_>>())
                    .expect("valid output shape");
                cost += t.predict_transpose_ns::<f64>(&c_shape, p)?;
            }
            priced += 1;
            if best.as_ref().map(|(bc, _)| cost < *bc).unwrap_or(true) {
                best = Some((
                    cost,
                    ContractionPlan {
                        spec: spec.clone(),
                        layout: LayoutChoice {
                            k_order: k_order.clone(),
                            swapped,
                        },
                        shape_a: shape_a.clone(),
                        shape_b: shape_b.clone(),
                        perm_a,
                        perm_b,
                        perm_c,
                        gemm: (m, n, k),
                        predicted_transpose_ns: cost,
                        predicted_gemm_ns: gemm_ns,
                        candidates_priced: 0,
                    },
                ));
            }
        }
    }
    let (_, mut plan) = best.expect("at least one layout");
    plan.candidates_priced = priced;
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Transposer {
        Transposer::new_k40c()
    }

    #[test]
    fn plans_matrix_multiply_with_no_transposes() {
        // "mk,kn->mn" with layouts already GEMM-native.
        let spec = ContractionSpec::parse("mk,kn->mn").unwrap();
        let plan = plan_contraction(
            &t(),
            &spec,
            &Shape::new(&[32, 16]).unwrap(),
            &Shape::new(&[16, 24]).unwrap(),
        )
        .unwrap();
        assert!(plan.perm_a.is_none());
        assert!(plan.perm_b.is_none());
        assert!(plan.perm_c.is_none());
        assert_eq!(plan.gemm, (32, 24, 16));
        assert!(!plan.layout.swapped);
    }

    #[test]
    fn transposed_output_needs_exactly_one_transpose() {
        // "mk,kn->nm": either the swapped GEMM (two input repacks, no
        // final transpose) or the plain GEMM with one output transpose;
        // the model must pick the single-transpose variant.
        let spec = ContractionSpec::parse("mk,kn->nm").unwrap();
        let plan = plan_contraction(
            &t(),
            &spec,
            &Shape::new(&[64, 32]).unwrap(),
            &Shape::new(&[32, 48]).unwrap(),
        )
        .unwrap();
        let transposes = usize::from(plan.perm_a.is_some())
            + usize::from(plan.perm_b.is_some())
            + usize::from(plan.perm_c.is_some());
        assert_eq!(transposes, 1, "{plan:?}");
    }

    #[test]
    fn swapped_layout_wins_when_it_saves_a_transpose() {
        // A and B both already in swapped-GEMM layout, output N-fastest:
        // "km,nk->nm": swapped needs zero transposes.
        let spec = ContractionSpec::parse("km,nk->nm").unwrap();
        let plan = plan_contraction(
            &t(),
            &spec,
            &Shape::new(&[32, 64]).unwrap(),
            &Shape::new(&[48, 32]).unwrap(),
        )
        .unwrap();
        assert!(plan.layout.swapped, "{plan:?}");
        assert!(plan.perm_a.is_none());
        assert!(plan.perm_b.is_none());
        assert!(plan.perm_c.is_none());
    }

    #[test]
    fn k_order_enumeration_is_bounded() {
        assert_eq!(k_orders(&['a'], 4).len(), 1);
        assert_eq!(k_orders(&['a', 'b'], 4).len(), 2);
        assert_eq!(k_orders(&['a', 'b', 'c'], 4).len(), 6);
        assert_eq!(k_orders(&['a', 'b', 'c', 'd', 'e'], 4).len(), 1);
    }

    #[test]
    fn validation_errors() {
        let spec = ContractionSpec::parse("mk,kn->mn").unwrap();
        let e = plan_contraction(
            &t(),
            &spec,
            &Shape::new(&[32]).unwrap(),
            &Shape::new(&[16, 24]).unwrap(),
        )
        .unwrap_err();
        assert!(matches!(e, ContractError::RankMismatch { tensor: "A", .. }));
        let e = plan_contraction(
            &t(),
            &spec,
            &Shape::new(&[32, 16]).unwrap(),
            &Shape::new(&[17, 24]).unwrap(),
        )
        .unwrap_err();
        assert!(matches!(
            e,
            ContractError::ExtentMismatch { label: 'k', .. }
        ));
    }

    #[test]
    fn multi_k_contraction_prices_all_orders() {
        let spec = ContractionSpec::parse("kil,ljk->ij").unwrap();
        let plan = plan_contraction(
            &t(),
            &spec,
            &Shape::new(&[8, 24, 12]).unwrap(),
            &Shape::new(&[12, 20, 8]).unwrap(),
        )
        .unwrap();
        // 2 k-orders x 2 swap variants.
        assert_eq!(plan.candidates_priced, 4);
        assert_eq!(plan.gemm, (24, 20, 96));
        assert!(plan.predicted_total_ns() > 0.0);
    }
}
