//! Executing a planned TTGT contraction: TTLG transposes, host GEMM,
//! final TTLG transpose.

use crate::gemm::gemm_f64;
use crate::planner::{plan_contraction, ContractError, ContractionPlan};
use crate::spec::ContractionSpec;
use ttlg::{TransposeOptions, TransposeReport, Transposer};
use ttlg_gpu_sim::DeviceConfig;
use ttlg_tensor::{DenseTensor, Shape};

/// What happened during one contraction.
#[derive(Debug)]
pub struct ContractionReport {
    /// Reports for each transposition actually executed, labelled
    /// "A", "B", "C".
    pub transposes: Vec<(&'static str, TransposeReport)>,
    /// GEMM dimensions used.
    pub gemm: (usize, usize, usize),
    /// Predicted transposition cost from planning, ns.
    pub predicted_transpose_ns: f64,
    /// Modeled transposition cost of the executed plan, ns.
    pub actual_transpose_ns: f64,
    /// Layout candidates priced during planning.
    pub candidates_priced: usize,
}

/// A TTGT contraction engine bound to one device/model.
pub struct ContractionEngine {
    transposer: Transposer,
}

impl ContractionEngine {
    /// Build on a device with TTLG's default predictor.
    pub fn new(device: DeviceConfig) -> Self {
        ContractionEngine {
            transposer: Transposer::new(device),
        }
    }

    /// The paper's machine.
    pub fn new_k40c() -> Self {
        Self::new(DeviceConfig::k40c())
    }

    /// Access the underlying transposer (e.g. for predictions).
    pub fn transposer(&self) -> &Transposer {
        &self.transposer
    }

    /// Plan a contraction (layout search via the prediction API).
    pub fn plan(
        &self,
        spec: &ContractionSpec,
        shape_a: &Shape,
        shape_b: &Shape,
    ) -> Result<ContractionPlan, ContractError> {
        plan_contraction(&self.transposer, spec, shape_a, shape_b)
    }

    /// Execute a planned contraction.
    pub fn execute(
        &self,
        plan: &ContractionPlan,
        a: &DenseTensor<f64>,
        b: &DenseTensor<f64>,
    ) -> Result<(DenseTensor<f64>, ContractionReport), ContractError> {
        assert_eq!(a.shape(), &plan.shape_a, "A shape does not match the plan");
        assert_eq!(b.shape(), &plan.shape_b, "B shape does not match the plan");
        let opts = TransposeOptions::default();
        let mut transposes = Vec::new();
        let mut actual_ns = 0.0;

        // Bring A and B to their GEMM layouts.
        let a_mat;
        let a_ref: &DenseTensor<f64> = match &plan.perm_a {
            Some(p) => {
                let tp = self.transposer.plan::<f64>(a.shape(), p, &opts)?;
                let (out, rep) = self.transposer.execute(&tp, a)?;
                actual_ns += rep.kernel_time_ns;
                transposes.push(("A", rep));
                a_mat = out;
                &a_mat
            }
            None => a,
        };
        let b_mat;
        let b_ref: &DenseTensor<f64> = match &plan.perm_b {
            Some(p) => {
                let tp = self.transposer.plan::<f64>(b.shape(), p, &opts)?;
                let (out, rep) = self.transposer.execute(&tp, b)?;
                actual_ns += rep.kernel_time_ns;
                transposes.push(("B", rep));
                b_mat = out;
                &b_mat
            }
            None => b,
        };

        // GEMM in the chosen orientation.
        let (m, n, k) = plan.gemm;
        let (rows, cols) = if plan.layout.swapped { (n, m) } else { (m, n) };
        let mut c_lin = vec![0.0f64; rows * cols];
        if plan.layout.swapped {
            // D[n x m] = B'[n x k] * A'[k x m]
            gemm_f64(n, m, k, b_ref.data(), a_ref.data(), &mut c_lin);
        } else {
            // C[m x n] = A'[m x k] * B'[k x n]
            gemm_f64(m, n, k, a_ref.data(), b_ref.data(), &mut c_lin);
        }

        // Reshape the GEMM output to its native tensor form and finish
        // with the output transposition if the requested order differs.
        let lookup = {
            let spec = &plan.spec;
            let mut ext = std::collections::HashMap::new();
            for (i, &l) in spec.a.iter().enumerate() {
                ext.insert(l, plan.shape_a.extent(i));
            }
            for (i, &l) in spec.b.iter().enumerate() {
                ext.insert(l, plan.shape_b.extent(i));
            }
            ext
        };
        let native_labels: Vec<char> = if plan.layout.swapped {
            plan.spec
                .n_labels
                .iter()
                .chain(plan.spec.m_labels.iter())
                .copied()
                .collect()
        } else {
            plan.spec
                .m_labels
                .iter()
                .chain(plan.spec.n_labels.iter())
                .copied()
                .collect()
        };
        let native_shape = Shape::new(&native_labels.iter().map(|l| lookup[l]).collect::<Vec<_>>())
            .expect("valid native shape");
        let c_native = DenseTensor::from_data(native_shape, c_lin).expect("sized buffer");

        let c_final = match &plan.perm_c {
            Some(p) => {
                let tp = self.transposer.plan::<f64>(c_native.shape(), p, &opts)?;
                let (out, rep) = self.transposer.execute(&tp, &c_native)?;
                actual_ns += rep.kernel_time_ns;
                transposes.push(("C", rep));
                out
            }
            None => c_native,
        };

        Ok((
            c_final,
            ContractionReport {
                transposes,
                gemm: plan.gemm,
                predicted_transpose_ns: plan.predicted_transpose_ns,
                actual_transpose_ns: actual_ns,
                candidates_priced: plan.candidates_priced,
            },
        ))
    }
}

/// One-shot convenience: parse, plan, execute.
pub fn contract(
    spec_str: &str,
    a: &DenseTensor<f64>,
    b: &DenseTensor<f64>,
) -> Result<(DenseTensor<f64>, ContractionReport), Box<dyn std::error::Error>> {
    let spec = ContractionSpec::parse(spec_str)?;
    let engine = ContractionEngine::new_k40c();
    let plan = engine.plan(&spec, a.shape(), b.shape())?;
    Ok(engine.execute(&plan, a, b)?)
}

/// Reference contraction straight from the definition (exponential-ish;
/// tests only).
pub fn contract_reference(
    spec: &ContractionSpec,
    a: &DenseTensor<f64>,
    b: &DenseTensor<f64>,
) -> DenseTensor<f64> {
    let mut ext = std::collections::HashMap::new();
    for (i, &l) in spec.a.iter().enumerate() {
        ext.insert(l, a.shape().extent(i));
    }
    for (i, &l) in spec.b.iter().enumerate() {
        ext.insert(l, b.shape().extent(i));
    }
    let out_shape = Shape::new(&spec.c.iter().map(|l| ext[l]).collect::<Vec<_>>()).expect("valid");
    let mut out = DenseTensor::zeros(out_shape.clone());

    // Odometer over output labels x contracted labels.
    let all_labels: Vec<char> = spec.c.iter().chain(spec.k_labels.iter()).copied().collect();
    let extents: Vec<usize> = all_labels.iter().map(|l| ext[l]).collect();
    let total: usize = extents.iter().product();
    let mut idx = vec![0usize; all_labels.len()];
    let mut a_idx = vec![0usize; spec.a.len()];
    let mut b_idx = vec![0usize; spec.b.len()];
    let mut c_idx = vec![0usize; spec.c.len()];
    for _ in 0..total {
        for (j, &l) in spec.a.iter().enumerate() {
            a_idx[j] = idx[all_labels.iter().position(|&x| x == l).expect("label")];
        }
        for (j, &l) in spec.b.iter().enumerate() {
            b_idx[j] = idx[all_labels.iter().position(|&x| x == l).expect("label")];
        }
        for (j, _) in spec.c.iter().enumerate() {
            c_idx[j] = idx[j];
        }
        let v = out.get(&c_idx) + a.get(&a_idx) * b.get(&b_idx);
        out.set(&c_idx, v);
        // increment odometer
        for (slot, &e) in idx.iter_mut().zip(extents.iter()) {
            *slot += 1;
            if *slot < e {
                break;
            }
            *slot = 0;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttlg_tensor::rng::StdRng;

    fn rand_tensor(extents: &[usize], seed: u64) -> DenseTensor<f64> {
        let shape = Shape::new(extents).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f64> = (0..shape.volume())
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        DenseTensor::from_data(shape, data).unwrap()
    }

    fn check(spec_str: &str, ea: &[usize], eb: &[usize]) {
        let a = rand_tensor(ea, 1);
        let b = rand_tensor(eb, 2);
        let (c, report) = contract(spec_str, &a, &b).unwrap();
        let spec = ContractionSpec::parse(spec_str).unwrap();
        let expect = contract_reference(&spec, &a, &b);
        assert_eq!(c.shape(), expect.shape(), "{spec_str}");
        for (x, y) in c.data().iter().zip(expect.data().iter()) {
            assert!((x - y).abs() < 1e-9 * (1.0 + y.abs()), "{spec_str}");
        }
        assert!(report.candidates_priced >= 2);
    }

    #[test]
    fn matrix_multiply() {
        check("mk,kn->mn", &[12, 9], &[9, 14]);
    }

    #[test]
    fn paper_style_contraction() {
        check("kil,ljk->ij", &[6, 10, 5], &[5, 8, 6]);
    }

    #[test]
    fn multi_mode_contraction() {
        check("abk,kcd->acbd", &[4, 5, 6], &[6, 3, 7]);
    }

    #[test]
    fn transposed_output() {
        check("mk,kn->nm", &[10, 7], &[7, 11]);
    }

    #[test]
    fn interleaved_output_modes() {
        check("akb,kc->cab", &[5, 8, 4], &[8, 6]);
    }

    #[test]
    fn two_contracted_modes() {
        check("klm,mlkn->n", &[4, 5, 6], &[6, 5, 4, 9]);
    }

    #[test]
    fn report_contents() {
        let a = rand_tensor(&[8, 12, 6], 3);
        let b = rand_tensor(&[6, 10, 8], 4);
        let (_, report) = contract("kil,ljk->ij", &a, &b).unwrap();
        assert_eq!(report.gemm, (12, 10, 48));
        // Both inputs need repacking for this spec.
        assert!(report.transposes.iter().any(|(l, _)| *l == "A"));
        assert!(report.transposes.iter().any(|(l, _)| *l == "B"));
        assert!(report.actual_transpose_ns > 0.0);
    }

    #[test]
    fn shape_mismatch_is_loud() {
        let spec = ContractionSpec::parse("mk,kn->mn").unwrap();
        let engine = ContractionEngine::new_k40c();
        let plan = engine
            .plan(
                &spec,
                &Shape::new(&[4, 4]).unwrap(),
                &Shape::new(&[4, 4]).unwrap(),
            )
            .unwrap();
        let wrong = rand_tensor(&[5, 4], 9);
        let b = rand_tensor(&[4, 4], 10);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = engine.execute(&plan, &wrong, &b);
        }));
        assert!(res.is_err());
    }
}
