//! Plain-text persistence for trained models (`key value` lines — no
//! external serialization dependency needed).
//!
//! Format:
//!
//! ```text
//! ttlg-perfmodel v1
//! model od
//! intercept 1.234e-5
//! coef Volume 1.278e-11
//! ...
//! model oa
//! ...
//! ```

use crate::linreg::LinearModel;
use std::fmt::Write as _;
use std::path::Path;

/// A pair of serializable models (OD + OA).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelPair {
    /// Orthogonal-Distinct model.
    pub od: LinearModel,
    /// Orthogonal-Arbitrary model.
    pub oa: LinearModel,
}

/// Pretrained models plus (optionally) online-refined coefficients, kept
/// side by side so refinement never destroys the offline baseline.
/// Serialized as extra `model od_refined` / `model oa_refined` sections,
/// which pre-refinement readers skip silently.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelStore {
    /// The offline-trained baseline.
    pub pretrained: ModelPair,
    /// Online-refined coefficients, when refinement has run.
    pub refined: Option<ModelPair>,
}

impl ModelStore {
    /// The models a predictor should use: refined when present,
    /// pretrained otherwise.
    pub fn effective(&self) -> &ModelPair {
        self.refined.as_ref().unwrap_or(&self.pretrained)
    }
}

fn write_model(s: &mut String, name: &str, m: &LinearModel) {
    writeln!(s, "model {name}").unwrap();
    writeln!(s, "intercept {:e}", m.intercept).unwrap();
    for (fname, c) in m.feature_names.iter().zip(m.coefficients.iter()) {
        writeln!(s, "coef {} {:e}", fname.replace(' ', "_"), c).unwrap();
    }
}

/// Serialize a model pair to the text format.
pub fn to_text(pair: &ModelPair) -> String {
    let mut s = String::from("ttlg-perfmodel v1\n");
    write_model(&mut s, "od", &pair.od);
    write_model(&mut s, "oa", &pair.oa);
    s
}

/// Serialize a [`ModelStore`] — the pair format plus `*_refined`
/// sections when refined coefficients exist.
pub fn store_to_text(store: &ModelStore) -> String {
    let mut s = to_text(&store.pretrained);
    if let Some(refined) = &store.refined {
        write_model(&mut s, "od_refined", &refined.od);
        write_model(&mut s, "oa_refined", &refined.oa);
    }
    s
}

/// Parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Missing or wrong header line.
    BadHeader,
    /// Malformed line.
    BadLine(String),
    /// A model section is missing.
    MissingModel(&'static str),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadHeader => write!(f, "bad or missing header"),
            ParseError::BadLine(l) => write!(f, "malformed line: {l}"),
            ParseError::MissingModel(m) => write!(f, "missing model section: {m}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parse every `model <name>` section in order. Unknown section names
/// are kept (callers select the ones they understand), so the format
/// stays forward compatible.
fn parse_sections(text: &str) -> Result<Vec<(String, LinearModel)>, ParseError> {
    let mut lines = text.lines();
    if lines.next().map(str::trim) != Some("ttlg-perfmodel v1") {
        return Err(ParseError::BadHeader);
    }
    let mut sections: Vec<(String, LinearModel)> = Vec::new();
    for line in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("model") => {
                let name = parts
                    .next()
                    .ok_or_else(|| ParseError::BadLine(line.into()))?;
                sections.push((
                    name.to_string(),
                    LinearModel {
                        feature_names: Vec::new(),
                        intercept: 0.0,
                        coefficients: Vec::new(),
                    },
                ));
            }
            Some("intercept") => {
                let v: f64 = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| ParseError::BadLine(line.into()))?;
                sections
                    .last_mut()
                    .ok_or_else(|| ParseError::BadLine(line.into()))?
                    .1
                    .intercept = v;
            }
            Some("coef") => {
                let name = parts
                    .next()
                    .ok_or_else(|| ParseError::BadLine(line.into()))?;
                let v: f64 = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| ParseError::BadLine(line.into()))?;
                let m = &mut sections
                    .last_mut()
                    .ok_or_else(|| ParseError::BadLine(line.into()))?
                    .1;
                m.feature_names.push(name.replace('_', " "));
                m.coefficients.push(v);
            }
            _ => return Err(ParseError::BadLine(line.into())),
        }
    }
    Ok(sections)
}

fn find_model(sections: &[(String, LinearModel)], name: &str) -> Option<LinearModel> {
    sections
        .iter()
        .rev()
        .find(|(n, _)| n == name)
        .map(|(_, m)| m.clone())
}

/// Deserialize a model pair from the text format (sections other than
/// `od`/`oa` — e.g. refined coefficients — are ignored).
pub fn from_text(text: &str) -> Result<ModelPair, ParseError> {
    let sections = parse_sections(text)?;
    Ok(ModelPair {
        od: find_model(&sections, "od").ok_or(ParseError::MissingModel("od"))?,
        oa: find_model(&sections, "oa").ok_or(ParseError::MissingModel("oa"))?,
    })
}

/// Deserialize a [`ModelStore`]: the pretrained pair is required; the
/// refined pair is present only when *both* `*_refined` sections are
/// (one without the other is malformed).
pub fn store_from_text(text: &str) -> Result<ModelStore, ParseError> {
    let sections = parse_sections(text)?;
    let pretrained = ModelPair {
        od: find_model(&sections, "od").ok_or(ParseError::MissingModel("od"))?,
        oa: find_model(&sections, "oa").ok_or(ParseError::MissingModel("oa"))?,
    };
    let refined = match (
        find_model(&sections, "od_refined"),
        find_model(&sections, "oa_refined"),
    ) {
        (Some(od), Some(oa)) => Some(ModelPair { od, oa }),
        (None, None) => None,
        (Some(_), None) => return Err(ParseError::MissingModel("oa_refined")),
        (None, Some(_)) => return Err(ParseError::MissingModel("od_refined")),
    };
    Ok(ModelStore {
        pretrained,
        refined,
    })
}

/// Save to a file.
pub fn save(pair: &ModelPair, path: &Path) -> std::io::Result<()> {
    std::fs::write(path, to_text(pair))
}

/// Load from a file.
pub fn load(path: &Path) -> std::io::Result<Result<ModelPair, ParseError>> {
    Ok(from_text(&std::fs::read_to_string(path)?))
}

/// Save a [`ModelStore`] to a file.
pub fn save_store(store: &ModelStore, path: &Path) -> std::io::Result<()> {
    std::fs::write(path, store_to_text(store))
}

/// Load a [`ModelStore`] from a file.
pub fn load_store(path: &Path) -> std::io::Result<Result<ModelStore, ParseError>> {
    Ok(store_from_text(&std::fs::read_to_string(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ModelPair {
        ModelPair {
            od: LinearModel {
                feature_names: vec!["Volume".into(), "Input slice".into()],
                intercept: 1.5e-3,
                coefficients: vec![1.278e-11, 7.835e-7],
            },
            oa: LinearModel {
                feature_names: vec!["Volume".into(), "Cycles".into()],
                intercept: -3.0e-4,
                coefficients: vec![-3.018e-11, 5.112e-10],
            },
        }
    }

    #[test]
    fn roundtrip() {
        let pair = sample();
        let text = to_text(&pair);
        let back = from_text(&text).unwrap();
        assert_eq!(back, pair);
    }

    #[test]
    fn roundtrip_via_file() {
        let pair = sample();
        let dir = std::env::temp_dir().join("ttlg-perfmodel-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("models.txt");
        save(&pair, &path).unwrap();
        let back = load(&path).unwrap().unwrap();
        assert_eq!(back, pair);
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(from_text("nope"), Err(ParseError::BadHeader));
        assert!(matches!(
            from_text("ttlg-perfmodel v1\nbogus line"),
            Err(ParseError::BadLine(_))
        ));
        assert_eq!(
            from_text("ttlg-perfmodel v1\nmodel od\nintercept 1.0"),
            Err(ParseError::MissingModel("oa"))
        );
    }

    #[test]
    fn spaces_in_feature_names_survive() {
        let pair = sample();
        let back = from_text(&to_text(&pair)).unwrap();
        assert_eq!(back.od.feature_names[1], "Input slice");
    }

    fn refined_sample() -> ModelPair {
        let mut pair = sample();
        pair.od.intercept = 2.5e-3;
        pair.oa.coefficients[0] = -1.0e-11;
        pair
    }

    #[test]
    fn store_roundtrips_with_and_without_refined() {
        let bare = ModelStore {
            pretrained: sample(),
            refined: None,
        };
        assert_eq!(store_from_text(&store_to_text(&bare)).unwrap(), bare);
        assert_eq!(bare.effective(), &bare.pretrained);

        let full = ModelStore {
            pretrained: sample(),
            refined: Some(refined_sample()),
        };
        let text = store_to_text(&full);
        assert!(text.contains("model od_refined") && text.contains("model oa_refined"));
        let back = store_from_text(&text).unwrap();
        assert_eq!(back, full);
        assert_eq!(back.effective(), back.refined.as_ref().unwrap());
    }

    #[test]
    fn store_roundtrips_via_file() {
        let store = ModelStore {
            pretrained: sample(),
            refined: Some(refined_sample()),
        };
        let dir = std::env::temp_dir().join("ttlg-perfmodel-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.txt");
        save_store(&store, &path).unwrap();
        assert_eq!(load_store(&path).unwrap().unwrap(), store);
    }

    #[test]
    fn refined_sections_are_backward_compatible() {
        // A pre-refinement reader (`from_text`) must parse a store file
        // and see only the pretrained pair.
        let store = ModelStore {
            pretrained: sample(),
            refined: Some(refined_sample()),
        };
        let pair = from_text(&store_to_text(&store)).unwrap();
        assert_eq!(pair, store.pretrained);
        // And a plain pair file reads back as a store without refinement.
        let back = store_from_text(&to_text(&sample())).unwrap();
        assert_eq!(back.refined, None);
    }

    #[test]
    fn store_rejects_half_refined_files() {
        let mut text = to_text(&sample());
        text.push_str("model od_refined\nintercept 1.0\n");
        assert_eq!(
            store_from_text(&text),
            Err(ParseError::MissingModel("oa_refined"))
        );
    }
}
