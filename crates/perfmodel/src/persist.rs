//! Plain-text persistence for trained models (`key value` lines — no
//! external serialization dependency needed).
//!
//! Format:
//!
//! ```text
//! ttlg-perfmodel v1
//! model od
//! intercept 1.234e-5
//! coef Volume 1.278e-11
//! ...
//! model oa
//! ...
//! ```

use crate::linreg::LinearModel;
use std::fmt::Write as _;
use std::path::Path;

/// A pair of serializable models (OD + OA).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelPair {
    /// Orthogonal-Distinct model.
    pub od: LinearModel,
    /// Orthogonal-Arbitrary model.
    pub oa: LinearModel,
}

/// Serialize a model pair to the text format.
pub fn to_text(pair: &ModelPair) -> String {
    let mut s = String::from("ttlg-perfmodel v1\n");
    for (name, m) in [("od", &pair.od), ("oa", &pair.oa)] {
        writeln!(s, "model {name}").unwrap();
        writeln!(s, "intercept {:e}", m.intercept).unwrap();
        for (fname, c) in m.feature_names.iter().zip(m.coefficients.iter()) {
            writeln!(s, "coef {} {:e}", fname.replace(' ', "_"), c).unwrap();
        }
    }
    s
}

/// Parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Missing or wrong header line.
    BadHeader,
    /// Malformed line.
    BadLine(String),
    /// A model section is missing.
    MissingModel(&'static str),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadHeader => write!(f, "bad or missing header"),
            ParseError::BadLine(l) => write!(f, "malformed line: {l}"),
            ParseError::MissingModel(m) => write!(f, "missing model section: {m}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Deserialize a model pair from the text format.
pub fn from_text(text: &str) -> Result<ModelPair, ParseError> {
    let mut lines = text.lines();
    if lines.next().map(str::trim) != Some("ttlg-perfmodel v1") {
        return Err(ParseError::BadHeader);
    }
    let mut od: Option<LinearModel> = None;
    let mut oa: Option<LinearModel> = None;
    let mut current: Option<(String, LinearModel)> = None;
    let commit = |cur: &mut Option<(String, LinearModel)>,
                  od: &mut Option<LinearModel>,
                  oa: &mut Option<LinearModel>| {
        if let Some((name, m)) = cur.take() {
            match name.as_str() {
                "od" => *od = Some(m),
                "oa" => *oa = Some(m),
                _ => {}
            }
        }
    };
    for line in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("model") => {
                commit(&mut current, &mut od, &mut oa);
                let name = parts
                    .next()
                    .ok_or_else(|| ParseError::BadLine(line.into()))?;
                current = Some((
                    name.to_string(),
                    LinearModel {
                        feature_names: Vec::new(),
                        intercept: 0.0,
                        coefficients: Vec::new(),
                    },
                ));
            }
            Some("intercept") => {
                let v: f64 = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| ParseError::BadLine(line.into()))?;
                current
                    .as_mut()
                    .ok_or_else(|| ParseError::BadLine(line.into()))?
                    .1
                    .intercept = v;
            }
            Some("coef") => {
                let name = parts
                    .next()
                    .ok_or_else(|| ParseError::BadLine(line.into()))?;
                let v: f64 = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| ParseError::BadLine(line.into()))?;
                let m = &mut current
                    .as_mut()
                    .ok_or_else(|| ParseError::BadLine(line.into()))?
                    .1;
                m.feature_names.push(name.replace('_', " "));
                m.coefficients.push(v);
            }
            _ => return Err(ParseError::BadLine(line.into())),
        }
    }
    commit(&mut current, &mut od, &mut oa);
    Ok(ModelPair {
        od: od.ok_or(ParseError::MissingModel("od"))?,
        oa: oa.ok_or(ParseError::MissingModel("oa"))?,
    })
}

/// Save to a file.
pub fn save(pair: &ModelPair, path: &Path) -> std::io::Result<()> {
    std::fs::write(path, to_text(pair))
}

/// Load from a file.
pub fn load(path: &Path) -> std::io::Result<Result<ModelPair, ParseError>> {
    Ok(from_text(&std::fs::read_to_string(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ModelPair {
        ModelPair {
            od: LinearModel {
                feature_names: vec!["Volume".into(), "Input slice".into()],
                intercept: 1.5e-3,
                coefficients: vec![1.278e-11, 7.835e-7],
            },
            oa: LinearModel {
                feature_names: vec!["Volume".into(), "Cycles".into()],
                intercept: -3.0e-4,
                coefficients: vec![-3.018e-11, 5.112e-10],
            },
        }
    }

    #[test]
    fn roundtrip() {
        let pair = sample();
        let text = to_text(&pair);
        let back = from_text(&text).unwrap();
        assert_eq!(back, pair);
    }

    #[test]
    fn roundtrip_via_file() {
        let pair = sample();
        let dir = std::env::temp_dir().join("ttlg-perfmodel-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("models.txt");
        save(&pair, &path).unwrap();
        let back = load(&path).unwrap().unwrap();
        assert_eq!(back, pair);
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(from_text("nope"), Err(ParseError::BadHeader));
        assert!(matches!(
            from_text("ttlg-perfmodel v1\nbogus line"),
            Err(ParseError::BadLine(_))
        ));
        assert_eq!(
            from_text("ttlg-perfmodel v1\nmodel od\nintercept 1.0"),
            Err(ParseError::MissingModel("oa"))
        );
    }

    #[test]
    fn spaces_in_feature_names_survive() {
        let pair = sample();
        let back = from_text(&to_text(&pair)).unwrap();
        assert_eq!(back.od.feature_names[1], "Input slice");
    }
}
