//! Ordinary least squares with inference statistics, from scratch.
//!
//! Solves `y = X beta + eps` by the normal equations with Gaussian
//! elimination (partial pivoting), and reports per-coefficient standard
//! errors, t-values and (normal-approximation) p-values — the columns of
//! the paper's Table II — plus R^2 and the paper's precision metric.

/// A fitted linear model: `predict(x) = intercept + sum(coef[i] * x[i])`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearModel {
    /// Feature names (for reports), excluding the intercept.
    pub feature_names: Vec<String>,
    /// Intercept term.
    pub intercept: f64,
    /// Coefficients, one per feature.
    pub coefficients: Vec<f64>,
}

impl LinearModel {
    /// Predict the response for a feature vector.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(
            x.len(),
            self.coefficients.len(),
            "feature dimension mismatch"
        );
        self.intercept
            + self
                .coefficients
                .iter()
                .zip(x.iter())
                .map(|(c, v)| c * v)
                .sum::<f64>()
    }
}

/// One row of the Table II summary.
#[derive(Debug, Clone)]
pub struct CoefficientStat {
    /// Feature name ("(Intercept)" for the constant term).
    pub name: String,
    /// OLS estimate.
    pub estimate: f64,
    /// Standard error.
    pub std_error: f64,
    /// t-value (`estimate / std_error`).
    pub t_value: f64,
    /// Two-sided p-value (normal approximation — exact enough at the
    /// paper's sample sizes of thousands of points).
    pub p_value: f64,
}

/// Full fit summary.
#[derive(Debug, Clone)]
pub struct FitSummary {
    /// The fitted model.
    pub model: LinearModel,
    /// Per-coefficient statistics (intercept first).
    pub stats: Vec<CoefficientStat>,
    /// Coefficient of determination.
    pub r_squared: f64,
    /// Residual standard error.
    pub residual_se: f64,
    /// Number of observations.
    pub n: usize,
}

impl FitSummary {
    /// Render as a Table II-style text table.
    pub fn to_table(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{:<16} {:>13} {:>13} {:>9} {:>12}\n",
            "Feature", "Estimate", "Std. Error", "t value", "Pr(>|t|)"
        ));
        for c in &self.stats {
            s.push_str(&format!(
                "{:<16} {:>13.4e} {:>13.4e} {:>9.2} {:>12}\n",
                c.name,
                c.estimate,
                c.std_error,
                c.t_value,
                format_p(c.p_value),
            ));
        }
        s.push_str(&format!(
            "R-squared: {:.4}, n = {}\n",
            self.r_squared, self.n
        ));
        s
    }
}

/// Format a p-value the way R's `lm` summary does.
fn format_p(p: f64) -> String {
    if p < 2e-16 {
        "<2e-16".to_string()
    } else {
        format!("{p:.3e}")
    }
}

/// Errors from fitting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// Fewer observations than parameters.
    TooFewObservations {
        /// Number of observations supplied.
        n: usize,
        /// Number of parameters (features + intercept).
        k: usize,
    },
    /// The normal-equation system is singular (collinear features).
    Singular,
    /// Rows of `x` have inconsistent lengths.
    RaggedInput,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::TooFewObservations { n, k } => {
                write!(f, "need more observations ({n}) than parameters ({k})")
            }
            FitError::Singular => write!(f, "singular design matrix (collinear features)"),
            FitError::RaggedInput => write!(f, "inconsistent feature-vector lengths"),
        }
    }
}

impl std::error::Error for FitError {}

/// Fit `y ~ 1 + x` by OLS. `x` is row-major: one feature vector per
/// observation.
pub fn fit(feature_names: &[&str], x: &[Vec<f64>], y: &[f64]) -> Result<FitSummary, FitError> {
    fit_weighted(feature_names, x, y, None)
}

/// Weighted least squares: minimises `sum w_i (y_i - x_i beta)^2`.
///
/// With `w_i = 1 / y_i^2` this approximates *relative*-error regression —
/// the metric the paper reports (`mean(|actual - predicted| / actual)`).
/// Plain OLS over-weights the slowest configurations and can invert the
/// ranking among the fast ones, which is what the planner actually needs.
// Index loops are the clearest form for the normal-equation and
// Gauss-Jordan matrix math below.
#[allow(clippy::needless_range_loop)]
pub fn fit_weighted(
    feature_names: &[&str],
    x: &[Vec<f64>],
    y: &[f64],
    weights: Option<&[f64]>,
) -> Result<FitSummary, FitError> {
    let n = y.len();
    let d = feature_names.len();
    let k = d + 1; // + intercept
    if x.len() != n || x.iter().any(|r| r.len() != d) {
        return Err(FitError::RaggedInput);
    }
    if n <= k {
        return Err(FitError::TooFewObservations { n, k });
    }

    if let Some(w) = weights {
        if w.len() != n {
            return Err(FitError::RaggedInput);
        }
    }

    // Normal equations: A = X'WX (k x k), b = X'Wy, with X = [1 | x].
    let mut a = vec![vec![0.0f64; k]; k];
    let mut b = vec![0.0f64; k];
    for (idx, (row, &yi)) in x.iter().zip(y.iter()).enumerate() {
        let w = weights.map(|w| w[idx]).unwrap_or(1.0);
        // design row: [1, row...]
        for i in 0..k {
            let xi = if i == 0 { 1.0 } else { row[i - 1] };
            b[i] += w * xi * yi;
            for j in i..k {
                let xj = if j == 0 { 1.0 } else { row[j - 1] };
                a[i][j] += w * xi * xj;
            }
        }
    }
    for i in 0..k {
        for j in 0..i {
            a[i][j] = a[j][i];
        }
    }

    // Solve A * [beta | inv] with Gauss-Jordan to get both the solution
    // and A^{-1} (needed for standard errors).
    let mut aug = vec![vec![0.0f64; 2 * k + 1]; k];
    for i in 0..k {
        aug[i][..k].copy_from_slice(&a[i]);
        aug[i][k] = b[i];
        aug[i][k + 1 + i] = 1.0;
    }
    for col in 0..k {
        // partial pivot
        let piv = (col..k)
            .max_by(|&r1, &r2| {
                aug[r1][col]
                    .abs()
                    .partial_cmp(&aug[r2][col].abs())
                    .expect("finite")
            })
            .expect("non-empty");
        if aug[piv][col].abs() < 1e-12 * (1.0 + a[col][col].abs()) {
            return Err(FitError::Singular);
        }
        aug.swap(col, piv);
        let p = aug[col][col];
        for v in aug[col].iter_mut() {
            *v /= p;
        }
        for r in 0..k {
            if r != col {
                let f = aug[r][col];
                if f != 0.0 {
                    for c2 in 0..2 * k + 1 {
                        let v = aug[col][c2];
                        aug[r][c2] -= f * v;
                    }
                }
            }
        }
    }
    let beta: Vec<f64> = (0..k).map(|i| aug[i][k]).collect();
    let inv: Vec<Vec<f64>> = (0..k)
        .map(|i| (0..k).map(|j| aug[i][k + 1 + j]).collect())
        .collect();

    // Residuals, R^2, sigma^2 (in the weighted metric when weights given).
    let wsum: f64 = (0..n).map(|i| weights.map(|w| w[i]).unwrap_or(1.0)).sum();
    let mean_y = (0..n)
        .map(|i| weights.map(|w| w[i]).unwrap_or(1.0) * y[i])
        .sum::<f64>()
        / wsum;
    let mut rss = 0.0;
    let mut tss = 0.0;
    for (idx, (row, &yi)) in x.iter().zip(y.iter()).enumerate() {
        let w = weights.map(|w| w[idx]).unwrap_or(1.0);
        let pred = beta[0]
            + row
                .iter()
                .zip(beta[1..].iter())
                .map(|(v, c)| v * c)
                .sum::<f64>();
        rss += w * (yi - pred) * (yi - pred);
        tss += w * (yi - mean_y) * (yi - mean_y);
    }
    let dof = (n - k) as f64;
    let sigma2 = rss / dof;
    let r_squared = if tss > 0.0 { 1.0 - rss / tss } else { 1.0 };

    let mut stats = Vec::with_capacity(k);
    for i in 0..k {
        let se = (sigma2 * inv[i][i]).max(0.0).sqrt();
        let t = if se > 0.0 {
            beta[i] / se
        } else {
            f64::INFINITY
        };
        let name = if i == 0 {
            "(Intercept)".to_string()
        } else {
            feature_names[i - 1].to_string()
        };
        stats.push(CoefficientStat {
            name,
            estimate: beta[i],
            std_error: se,
            t_value: t,
            p_value: two_sided_p(t),
        });
    }

    Ok(FitSummary {
        model: LinearModel {
            feature_names: feature_names.iter().map(|s| s.to_string()).collect(),
            intercept: beta[0],
            coefficients: beta[1..].to_vec(),
        },
        stats,
        r_squared,
        residual_se: sigma2.sqrt(),
        n,
    })
}

/// Two-sided p-value under the standard normal (adequate for the large
/// degrees of freedom of the paper's datasets).
fn two_sided_p(t: f64) -> f64 {
    2.0 * (1.0 - phi(t.abs()))
}

/// Standard normal CDF via the Abramowitz & Stegun 7.1.26 erf
/// approximation (|error| < 1.5e-7).
fn phi(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// The paper's precision metric:
/// `mean(|actual - predicted| / actual) * 100` (a percentage error).
pub fn precision_percent(model: &LinearModel, x: &[Vec<f64>], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    assert!(!y.is_empty());
    let mut acc = 0.0;
    for (row, &yi) in x.iter().zip(y.iter()) {
        let pred = model.predict(row);
        acc += ((yi - pred).abs() / yi.abs().max(1e-30)) * 100.0;
    }
    acc / y.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_relationship() {
        // y = 3 + 2a - 5b, no noise.
        let x: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![i as f64, ((i * 7) % 13) as f64])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| 3.0 + 2.0 * r[0] - 5.0 * r[1]).collect();
        let fit = fit(&["a", "b"], &x, &y).unwrap();
        assert!((fit.model.intercept - 3.0).abs() < 1e-8);
        assert!((fit.model.coefficients[0] - 2.0).abs() < 1e-9);
        assert!((fit.model.coefficients[1] + 5.0).abs() < 1e-9);
        assert!(fit.r_squared > 0.999999);
    }

    #[test]
    fn noisy_fit_reports_significance() {
        // deterministic pseudo-noise
        let x: Vec<Vec<f64>> = (0..500).map(|i| vec![(i % 97) as f64]).collect();
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, r)| 10.0 + 4.0 * r[0] + (((i * 2654435761) % 1000) as f64 / 1000.0 - 0.5))
            .collect();
        let fit = fit(&["a"], &x, &y).unwrap();
        assert!((fit.model.coefficients[0] - 4.0).abs() < 0.01);
        // slope is wildly significant
        let slope = &fit.stats[1];
        assert!(slope.t_value > 100.0);
        assert!(slope.p_value < 2e-16);
        assert!(fit.to_table().contains("<2e-16"));
    }

    #[test]
    fn singular_design_rejected() {
        // b = 2a exactly: collinear.
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| i as f64).collect();
        assert_eq!(fit(&["a", "b"], &x, &y).unwrap_err(), FitError::Singular);
    }

    #[test]
    fn too_few_observations_rejected() {
        let x = vec![vec![1.0], vec![2.0]];
        let y = vec![1.0, 2.0];
        assert!(matches!(
            fit(&["a"], &x, &y).unwrap_err(),
            FitError::TooFewObservations { .. }
        ));
    }

    #[test]
    fn ragged_input_rejected() {
        let x = vec![vec![1.0], vec![2.0, 3.0], vec![1.0], vec![4.0]];
        let y = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(fit(&["a"], &x, &y).unwrap_err(), FitError::RaggedInput);
    }

    #[test]
    fn predict_matches_manual() {
        let m = LinearModel {
            feature_names: vec!["a".into(), "b".into()],
            intercept: 1.0,
            coefficients: vec![2.0, 3.0],
        };
        assert_eq!(m.predict(&[10.0, 100.0]), 1.0 + 20.0 + 300.0);
    }

    #[test]
    fn precision_metric() {
        let m = LinearModel {
            feature_names: vec!["a".into()],
            intercept: 0.0,
            coefficients: vec![1.0],
        };
        // predictions 10% off on each point
        let x = vec![vec![90.0], vec![180.0]];
        let y = vec![100.0, 200.0];
        let p = precision_percent(&m, &x, &y);
        assert!((p - 10.0).abs() < 1e-9);
    }

    #[test]
    fn normal_cdf_sane() {
        assert!((phi(0.0) - 0.5).abs() < 1e-7);
        assert!((phi(1.96) - 0.975).abs() < 1e-3);
        assert!(phi(8.0) > 1.0 - 1e-14);
    }

    #[test]
    fn weighted_fit_prioritises_low_magnitude_points() {
        // Two clusters: small-y points following y = x, large-y points
        // following y = 2x. Relative weighting must fit the small cluster
        // far better than plain OLS does.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 1..=20 {
            x.push(vec![i as f64]);
            y.push(i as f64); // small cluster: slope 1
        }
        for i in 1..=20 {
            x.push(vec![1000.0 * i as f64]);
            y.push(2000.0 * i as f64); // large cluster: slope 2
        }
        let w: Vec<f64> = y.iter().map(|v| 1.0 / (v * v)).collect();
        let ols = fit(&["a"], &x, &y).unwrap();
        let wls = fit_weighted(&["a"], &x, &y, Some(&w)).unwrap();
        let small_err_ols = precision_percent(&ols.model, &x[..20], &y[..20]);
        let small_err_wls = precision_percent(&wls.model, &x[..20], &y[..20]);
        assert!(
            small_err_wls < small_err_ols / 2.0,
            "wls {small_err_wls}% vs ols {small_err_ols}%"
        );
    }

    #[test]
    fn weighted_fit_rejects_ragged_weights() {
        let x = vec![vec![1.0]; 10];
        let y = vec![1.0; 10];
        let w = vec![1.0; 9];
        assert_eq!(
            fit_weighted(&["a"], &x, &y, Some(&w)).unwrap_err(),
            FitError::RaggedInput
        );
    }

    #[test]
    fn std_errors_shrink_with_more_data() {
        let make = |n: usize| {
            let x: Vec<Vec<f64>> = (0..n).map(|i| vec![(i % 11) as f64]).collect();
            let y: Vec<f64> = x
                .iter()
                .enumerate()
                .map(|(i, r)| 2.0 * r[0] + (((i * 37) % 7) as f64 - 3.0) * 0.1)
                .collect();
            fit(&["a"], &x, &y).unwrap().stats[1].std_error
        };
        assert!(make(2000) < make(50));
    }
}
