//! Offline training: fit the Table II models and report the paper's
//! precision metric on the train/test split.

use crate::dataset::{self, DataPoint, OA_FEATURES, OD_FEATURES};
use crate::linreg::{self, FitSummary};
use ttlg::Schema;
use ttlg_gpu_sim::DeviceConfig;
use ttlg_tensor::generator::{model_dataset, DatasetConfig};
use ttlg_tensor::rng::StdRng;
use ttlg_tensor::Element;

/// Training configuration.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Case-generation configuration (Sec. V dataset).
    pub dataset: DatasetConfig,
    /// Max slice configurations timed per (case, schema).
    pub max_configs_per_case: usize,
    /// RNG seed for the 4/5-1/5 split.
    pub split_seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            dataset: DatasetConfig::default(),
            max_configs_per_case: 16,
            split_seed: 0x5EED,
        }
    }
}

impl TrainConfig {
    /// A quick configuration for tests and CI.
    pub fn quick() -> Self {
        TrainConfig {
            dataset: DatasetConfig::small(),
            max_configs_per_case: 6,
            split_seed: 7,
        }
    }
}

/// Per-schema fit + evaluation.
#[derive(Debug, Clone)]
pub struct SchemaModel {
    /// Which kernel this model predicts.
    pub schema: Schema,
    /// The fit (coefficients + Table II statistics).
    pub fit: FitSummary,
    /// Precision on training data, percent error.
    pub train_precision: f64,
    /// Precision on held-out test data, percent error.
    pub test_precision: f64,
    /// Number of training points.
    pub n_train: usize,
    /// Number of test points.
    pub n_test: usize,
}

/// The trained model pair of Table II.
#[derive(Debug, Clone)]
pub struct TrainedModels {
    /// Orthogonal-Distinct model (5 features).
    pub od: SchemaModel,
    /// Orthogonal-Arbitrary model (7 features).
    pub oa: SchemaModel,
}

impl TrainedModels {
    /// Render both fits as a Table II-style report.
    pub fn to_table(&self) -> String {
        let mut s = String::new();
        for m in [&self.od, &self.oa] {
            s.push_str(&format!(
                "== {} (n_train = {}, n_test = {}) ==\n",
                m.schema, m.n_train, m.n_test
            ));
            s.push_str(&m.fit.to_table());
            s.push_str(&format!(
                "precision: train {:.3}% / test {:.3}%\n\n",
                m.train_precision, m.test_precision
            ));
        }
        s
    }
}

/// Errors from training.
#[derive(Debug)]
pub enum TrainError {
    /// Too few points were generated for a schema.
    NotEnoughData {
        /// The starved schema.
        schema: Schema,
        /// Points available.
        points: usize,
    },
    /// The regression itself failed.
    Fit(linreg::FitError),
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::NotEnoughData { schema, points } => {
                write!(f, "not enough data for {schema}: {points} points")
            }
            TrainError::Fit(e) => write!(f, "regression failed: {e}"),
        }
    }
}

impl std::error::Error for TrainError {}

/// Train both Table II models on a freshly generated dataset.
pub fn train_models<E: Element>(
    device: &DeviceConfig,
    cfg: &TrainConfig,
) -> Result<TrainedModels, TrainError> {
    let cases = model_dataset(&cfg.dataset);
    let points = dataset::generate::<E>(device, &cases, cfg.max_configs_per_case);
    train_from_points(points, cfg.split_seed)
}

/// Train from pre-generated points (the 4/5-1/5 split happens here).
pub fn train_from_points(
    mut points: Vec<DataPoint>,
    split_seed: u64,
) -> Result<TrainedModels, TrainError> {
    let mut rng = StdRng::seed_from_u64(split_seed);
    rng.shuffle(&mut points);

    let fit_schema = |schema: Schema, names: &[&str]| -> Result<SchemaModel, TrainError> {
        let (x, y) = dataset::split_xy(&points, schema);
        let n = y.len();
        if n < names.len() + 2 {
            return Err(TrainError::NotEnoughData { schema, points: n });
        }
        let n_test = n / 5;
        let n_train = n - n_test;
        let (x_train, x_test) = (x[..n_train].to_vec(), x[n_train..].to_vec());
        let (y_train, y_test) = (y[..n_train].to_vec(), y[n_train..].to_vec());
        // Relative-error weighting (1/y^2): the paper's precision metric
        // is relative, and the planner needs correct ranking among the
        // *fast* configurations.
        let w: Vec<f64> = y_train.iter().map(|v| 1.0 / (v * v).max(1e-12)).collect();
        let fit =
            linreg::fit_weighted(names, &x_train, &y_train, Some(&w)).map_err(TrainError::Fit)?;
        let train_precision = linreg::precision_percent(&fit.model, &x_train, &y_train);
        let test_precision = if n_test > 0 {
            linreg::precision_percent(&fit.model, &x_test, &y_test)
        } else {
            train_precision
        };
        Ok(SchemaModel {
            schema,
            fit,
            train_precision,
            test_precision,
            n_train,
            n_test,
        })
    };

    Ok(TrainedModels {
        od: fit_schema(Schema::OrthogonalDistinct, &OD_FEATURES)?,
        oa: fit_schema(Schema::OrthogonalArbitrary, &OA_FEATURES)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_training_produces_usable_models() {
        let device = DeviceConfig::k40c();
        let models = train_models::<f64>(&device, &TrainConfig::quick()).unwrap();
        // The simulator's time is a near-deterministic function of the
        // features, so even a quick fit should predict reasonably.
        assert!(
            models.od.train_precision < 60.0,
            "OD precision {}",
            models.od.train_precision
        );
        assert!(
            models.oa.train_precision < 60.0,
            "OA precision {}",
            models.oa.train_precision
        );
        assert_eq!(models.od.fit.model.coefficients.len(), 5);
        assert_eq!(models.oa.fit.model.coefficients.len(), 7);
        let table = models.to_table();
        assert!(table.contains("Orthogonal-Distinct"));
        assert!(table.contains("Cycles"));
    }

    #[test]
    fn not_enough_data_error() {
        let err = train_from_points(Vec::new(), 1).unwrap_err();
        assert!(matches!(err, TrainError::NotEnoughData { .. }));
    }
}
