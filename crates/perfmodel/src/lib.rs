//! # ttlg-perfmodel
//!
//! The offline performance-modeling pipeline of the paper's Sec. V:
//!
//! 1. [`dataset`] — generate labelled `(features, time)` points by running
//!    slice-configuration candidates on the simulated device (ranks 3-6,
//!    five extent-ordering classes, a spread of volumes; 4/5-1/5
//!    train/test split).
//! 2. [`linreg`] — ordinary least squares with full inference statistics
//!    (estimates, standard errors, t-values, p-values) implemented from
//!    scratch, reproducing the columns of Table II.
//! 3. [`train`] — fit one model per kernel (Orthogonal-Distinct with the
//!    5 features of Table II, Orthogonal-Arbitrary with 7) and report the
//!    paper's precision metric
//!    `mean(|actual - predicted| / actual) * 100`.
//! 4. [`predictor`] — a [`ttlg::TimePredictor`] backed by the trained
//!    models, used by Alg. 3's slice-size choice and by callers of the
//!    queryable prediction API.
//! 5. [`persist`] — plain-text save/load of trained models.
//! 6. [`online`] — measure-mode refinement: recursive least squares over
//!    streamed measurements, feeding the runtime autotuner's feedback
//!    loop.

pub mod crossval;
pub mod dataset;
pub mod linreg;
pub mod online;
pub mod persist;
pub mod predictor;
pub mod pretrained;
pub mod train;

pub use dataset::{cpu_feature_vector, CPU_FEATURES};
pub use linreg::{FitSummary, LinearModel};
pub use online::{MeasurementSink, OnlineConfig, OnlinePredictor};
pub use persist::{ModelPair, ModelStore};
pub use predictor::TrainedPredictor;
pub use pretrained::{cpu_model_default, predictor_k40c};
pub use train::{train_models, TrainConfig, TrainedModels};
