//! Pretrained Table II models for the simulated K40c, so downstream users
//! get the regression-backed predictor without paying for training.
//!
//! Coefficients come from the full-fidelity offline training run of this
//! repository (`reproduce -- table2 --full`: ranks 3-6, volumes 2M-32M
//! elements, 8 permutations per configuration, 16 slice configurations
//! per case, relative-error weighted least squares; precision 7.0% train
//! / 6.8% test for Orthogonal-Distinct and 11.1% / 12.1% for
//! Orthogonal-Arbitrary — the paper reports 4.16%/4.16% and
//! 11.08%/10.75%). Retrain with [`crate::train::train_models`] for other
//! devices or datasets.

use crate::dataset::{CPU_FEATURES, OA_FEATURES, OD_FEATURES};
use crate::linreg::LinearModel;
use crate::persist::ModelPair;
use crate::predictor::TrainedPredictor;
use ttlg_gpu_sim::DeviceConfig;

/// The pretrained Orthogonal-Distinct model (5 features of Table II).
pub fn od_model_k40c() -> LinearModel {
    LinearModel {
        feature_names: OD_FEATURES.iter().map(|s| s.to_string()).collect(),
        intercept: 7.0093e3,
        coefficients: vec![
            6.2562e-2,  // Volume
            -6.3913e-1, // NumBlocks
            8.3940e0,   // Input slice
            2.4219e1,   // Output slice
            5.2538e-1,  // Cycles
        ],
    }
}

/// The pretrained Orthogonal-Arbitrary model (7 features of Table II).
pub fn oa_model_k40c() -> LinearModel {
    LinearModel {
        feature_names: OA_FEATURES.iter().map(|s| s.to_string()).collect(),
        intercept: -1.0256e4,
        coefficients: vec![
            1.7481e-2,  // Volume
            -3.0364e-2, // NumThreads
            2.8512e1,   // Total Slice
            -1.1231e1,  // Input Stride
            3.5617e-1,  // Output Stride
            5.3459e-3,  // Special Instr
            6.6086e-1,  // Cycles
        ],
    }
}

/// Seed coefficients for the CPU-backend model (4 features of
/// `CPU_FEATURES`). Unlike the GPU pair these are not fitted offline
/// against the simulator — they linearize the closed-form
/// `ttlg::cpu_analytic_ns` bandwidth model around mid-size problems and
/// exist to give the online refiner ([`crate::OnlinePredictor`]) a sane
/// starting point; real wall-clock measurements streamed by the
/// autotuner take over from there.
pub fn cpu_model_default() -> LinearModel {
    LinearModel {
        feature_names: CPU_FEATURES.iter().map(|s| s.to_string()).collect(),
        intercept: 1.5e4,
        coefficients: vec![
            1.2e-1, // Bytes Moved (~8 GB/s effective single-thread)
            2.0e0,  // Tile Blocks (per-block dispatch)
            -8.0e0, // Run Elems (longer contiguous runs stream faster)
            -2.0e3, // Threads (parallel speedup)
        ],
    }
}

/// Both models as a persistable pair.
pub fn model_pair_k40c() -> ModelPair {
    ModelPair {
        od: od_model_k40c(),
        oa: oa_model_k40c(),
    }
}

/// A ready-to-use regression predictor for the simulated K40c, with the
/// seed CPU-backend model attached for cross-backend planning.
pub fn predictor_k40c() -> TrainedPredictor {
    TrainedPredictor::from_models(od_model_k40c(), oa_model_k40c(), DeviceConfig::k40c())
        .with_cpu_model(cpu_model_default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use ttlg::{TimePredictor, TransposeOptions, Transposer};
    use ttlg_tensor::{reference, DenseTensor, Permutation, Shape};

    #[test]
    fn pretrained_predictor_plans_correctly() {
        let pred = Arc::new(predictor_k40c());
        let t = Transposer::with_predictor(DeviceConfig::k40c(), pred);
        let shape = Shape::new(&[16, 16, 16, 16]).unwrap();
        let perm = Permutation::new(&[3, 1, 2, 0]).unwrap();
        let input: DenseTensor<f64> = DenseTensor::iota(shape.clone());
        let plan = t
            .plan::<f64>(
                &shape,
                &perm,
                &TransposeOptions {
                    check_disjoint_writes: true,
                    ..Default::default()
                },
            )
            .unwrap();
        let (out, report) = t.execute(&plan, &input).unwrap();
        let expect = reference::transpose_reference(&input, &perm).unwrap();
        assert_eq!(out.data(), expect.data());
        assert!(report.kernel_time_ns > 0.0);
    }

    #[test]
    fn pretrained_predictions_are_sane() {
        // The regression should land within a factor of ~2 of the
        // simulator on mid-size OD problems.
        let pred = predictor_k40c();
        let t = Transposer::new_k40c();
        let shape = Shape::new(&[32, 32, 32, 8]).unwrap();
        let perm = Permutation::new(&[3, 2, 1, 0]).unwrap();
        let p = ttlg::Problem::new(&shape, &perm).unwrap();
        let c = ttlg::features::od_candidate::<f64>(
            &p,
            ttlg::kernels::OdChoice::default_for(&p).unwrap(),
        );
        let predicted = pred.predict_ns(&c);
        let actual = t.measure_candidate::<f64>(&p, &c).unwrap().timing.time_ns;
        let ratio = predicted / actual;
        assert!(
            (0.4..2.5).contains(&ratio),
            "predicted {predicted} actual {actual}"
        );
    }

    #[test]
    fn pair_roundtrips_through_persistence() {
        let pair = model_pair_k40c();
        let text = crate::persist::to_text(&pair);
        assert_eq!(crate::persist::from_text(&text).unwrap(), pair);
    }
}
