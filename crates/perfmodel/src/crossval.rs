//! K-fold cross-validation for the Table II models — a robustness check
//! beyond the paper's single 4/5-1/5 split, plus per-feature ablation
//! (drop one feature, measure the precision hit) to substantiate the
//! paper's claim that "all these features are significant".

use crate::dataset::{split_xy, DataPoint};
use crate::linreg::{self, FitError};
use ttlg::Schema;

/// Result of one cross-validation run.
#[derive(Debug, Clone)]
pub struct CrossValidation {
    /// Which kernel's model was validated.
    pub schema: Schema,
    /// Number of folds.
    pub folds: usize,
    /// Per-fold held-out precision (percent error).
    pub fold_precisions: Vec<f64>,
    /// Mean held-out precision.
    pub mean_precision: f64,
    /// Standard deviation across folds.
    pub std_precision: f64,
}

/// K-fold cross-validation over points of one schema. Points are taken in
/// their given order (shuffle beforehand for a random split).
pub fn k_fold(
    points: &[DataPoint],
    schema: Schema,
    feature_names: &[&str],
    folds: usize,
) -> Result<CrossValidation, FitError> {
    assert!(folds >= 2, "need at least two folds");
    let (x, y) = split_xy(points, schema);
    let n = y.len();
    if n < folds * (feature_names.len() + 2) {
        return Err(FitError::TooFewObservations {
            n,
            k: folds * (feature_names.len() + 2),
        });
    }
    let mut fold_precisions = Vec::with_capacity(folds);
    for f in 0..folds {
        let lo = n * f / folds;
        let hi = n * (f + 1) / folds;
        let mut x_train = Vec::with_capacity(n - (hi - lo));
        let mut y_train = Vec::with_capacity(n - (hi - lo));
        for i in (0..n).filter(|i| *i < lo || *i >= hi) {
            x_train.push(x[i].clone());
            y_train.push(y[i]);
        }
        let fit = linreg::fit(feature_names, &x_train, &y_train)?;
        let x_test = x[lo..hi].to_vec();
        let y_test = y[lo..hi].to_vec();
        fold_precisions.push(linreg::precision_percent(&fit.model, &x_test, &y_test));
    }
    let mean = fold_precisions.iter().sum::<f64>() / folds as f64;
    let var = fold_precisions
        .iter()
        .map(|p| (p - mean) * (p - mean))
        .sum::<f64>()
        / folds as f64;
    Ok(CrossValidation {
        schema,
        folds,
        fold_precisions,
        mean_precision: mean,
        std_precision: var.sqrt(),
    })
}

/// Leave-one-feature-out ablation: for each feature, refit without it and
/// report the precision change on the full dataset. A positive delta
/// means removing the feature hurts (the feature carries signal).
#[derive(Debug, Clone)]
pub struct FeatureAblation {
    /// Feature name removed.
    pub feature: String,
    /// Precision with all features, percent.
    pub full_precision: f64,
    /// Precision without this feature, percent.
    pub without_precision: f64,
}

impl FeatureAblation {
    /// How much precision degrades when the feature is dropped.
    pub fn delta(&self) -> f64 {
        self.without_precision - self.full_precision
    }
}

/// Run the leave-one-out feature ablation for one schema.
pub fn feature_ablation(
    points: &[DataPoint],
    schema: Schema,
    feature_names: &[&str],
) -> Result<Vec<FeatureAblation>, FitError> {
    let (x, y) = split_xy(points, schema);
    let full = linreg::fit(feature_names, &x, &y)?;
    let full_precision = linreg::precision_percent(&full.model, &x, &y);
    let mut out = Vec::with_capacity(feature_names.len());
    for drop in 0..feature_names.len() {
        let names: Vec<&str> = feature_names
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != drop)
            .map(|(_, n)| *n)
            .collect();
        let xs: Vec<Vec<f64>> = x
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .filter(|(i, _)| *i != drop)
                    .map(|(_, v)| *v)
                    .collect()
            })
            .collect();
        let fit = linreg::fit(&names, &xs, &y)?;
        out.push(FeatureAblation {
            feature: feature_names[drop].to_string(),
            full_precision,
            without_precision: linreg::precision_percent(&fit.model, &xs, &y),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{generate, OD_FEATURES};
    use ttlg_gpu_sim::DeviceConfig;
    use ttlg_tensor::generator::{model_dataset, DatasetConfig};

    fn points() -> Vec<DataPoint> {
        let cases = model_dataset(&DatasetConfig::small());
        generate::<f64>(&DeviceConfig::k40c(), &cases, 6)
    }

    #[test]
    fn k_fold_produces_stable_od_precision() {
        let pts = points();
        let cv = k_fold(&pts, Schema::OrthogonalDistinct, &OD_FEATURES, 4).unwrap();
        assert_eq!(cv.fold_precisions.len(), 4);
        assert!(cv.mean_precision < 60.0, "{cv:?}");
        assert!(cv.std_precision.is_finite());
    }

    #[test]
    fn k_fold_rejects_starved_input() {
        let pts = points();
        let err = k_fold(
            &pts[..3.min(pts.len())],
            Schema::OrthogonalDistinct,
            &OD_FEATURES,
            4,
        );
        assert!(err.is_err());
    }

    #[test]
    fn dropping_cycles_hurts_od_model() {
        // Cycles is the paper's key engineered feature; removing it should
        // not make the fit better.
        let pts = points();
        let abl = feature_ablation(&pts, Schema::OrthogonalDistinct, &OD_FEATURES).unwrap();
        let cycles = abl.iter().find(|a| a.feature == "Cycles").unwrap();
        assert!(cycles.delta() > -1.0, "{cycles:?}");
        assert_eq!(abl.len(), OD_FEATURES.len());
    }
}
