//! A [`TimePredictor`] backed by the trained Table II regression models.
//!
//! Orthogonal-Distinct and Orthogonal-Arbitrary candidates go through the
//! regressions; the remaining schemas (which the paper models separately
//! and does not detail) fall back to the closed-form analytic predictor.

use crate::dataset::{cpu_feature_vector, feature_vector};
use crate::linreg::LinearModel;
use crate::train::TrainedModels;
use ttlg::{AnalyticPredictor, Candidate, Schema, TimePredictor};
use ttlg_gpu_sim::DeviceConfig;

/// Trained-regression predictor with analytic fallback.
pub struct TrainedPredictor {
    od: LinearModel,
    oa: LinearModel,
    /// Optional CPU-backend model; CPU candidates fall back to the
    /// closed-form `cpu_analytic_ns` (via the analytic predictor) when
    /// absent.
    cpu: Option<LinearModel>,
    fallback: AnalyticPredictor,
}

impl TrainedPredictor {
    /// Build from trained models.
    pub fn new(models: &TrainedModels, device: DeviceConfig) -> Self {
        TrainedPredictor {
            od: models.od.fit.model.clone(),
            oa: models.oa.fit.model.clone(),
            cpu: None,
            fallback: AnalyticPredictor::new(device),
        }
    }

    /// Build directly from two linear models.
    pub fn from_models(od: LinearModel, oa: LinearModel, device: DeviceConfig) -> Self {
        TrainedPredictor {
            od,
            oa,
            cpu: None,
            fallback: AnalyticPredictor::new(device),
        }
    }

    /// Attach a CPU-backend model (see `pretrained::cpu_model_default`).
    pub fn with_cpu_model(mut self, cpu: LinearModel) -> Self {
        self.cpu = Some(cpu);
        self
    }

    /// Access the OD model.
    pub fn od_model(&self) -> &LinearModel {
        &self.od
    }

    /// Access the OA model.
    pub fn oa_model(&self) -> &LinearModel {
        &self.oa
    }

    /// Access the CPU-backend model, if attached.
    pub fn cpu_model(&self) -> Option<&LinearModel> {
        self.cpu.as_ref()
    }
}

impl TimePredictor for TrainedPredictor {
    fn predict_ns(&self, c: &Candidate) -> f64 {
        if let Some(x) = cpu_feature_vector(c) {
            return match &self.cpu {
                Some(m) => m.predict(&x).max(1.0),
                None => self.fallback.predict_ns(c),
            };
        }
        match feature_vector(c) {
            Some((Schema::OrthogonalDistinct, x)) => self.od.predict(&x).max(1.0),
            Some((Schema::OrthogonalArbitrary, x)) => self.oa.predict(&x).max(1.0),
            _ => self.fallback.predict_ns(c),
        }
    }

    fn name(&self) -> &str {
        "trained-regression"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::{train_models, TrainConfig};
    use std::sync::Arc;
    use ttlg::{TransposeOptions, Transposer};
    use ttlg_tensor::{reference, DenseTensor, Permutation, Shape};

    #[test]
    fn trained_predictor_plans_correctly() {
        let device = DeviceConfig::k40c();
        let models = train_models::<f64>(&device, &TrainConfig::quick()).unwrap();
        let pred = Arc::new(TrainedPredictor::new(&models, device.clone()));
        assert_eq!(pred.name(), "trained-regression");
        let t = Transposer::with_predictor(device, pred);
        let shape = Shape::new(&[16, 12, 10, 8]).unwrap();
        let perm = Permutation::new(&[3, 1, 0, 2]).unwrap();
        let input: DenseTensor<f64> = DenseTensor::iota(shape.clone());
        let plan = t
            .plan::<f64>(
                &shape,
                &perm,
                &TransposeOptions {
                    check_disjoint_writes: true,
                    ..Default::default()
                },
            )
            .unwrap();
        let (out, report) = t.execute(&plan, &input).unwrap();
        let expect = reference::transpose_reference(&input, &perm).unwrap();
        assert_eq!(out.data(), expect.data());
        assert!(report.kernel_time_ns > 0.0);
        assert!(plan.predicted_ns() > 0.0);
    }

    #[test]
    fn predictions_positive_even_extrapolating(// regression can go negative; the clamp keeps it sane
    ) {
        let od = LinearModel {
            feature_names: crate::dataset::OD_FEATURES
                .iter()
                .map(|s| s.to_string())
                .collect(),
            intercept: -1e9,
            coefficients: vec![0.0; 5],
        };
        let oa = LinearModel {
            feature_names: crate::dataset::OA_FEATURES
                .iter()
                .map(|s| s.to_string())
                .collect(),
            intercept: -1e9,
            coefficients: vec![0.0; 7],
        };
        let device = DeviceConfig::k40c();
        let pred = TrainedPredictor::from_models(od, oa, device);
        let p = ttlg::Problem::new(
            &Shape::new(&[64, 64]).unwrap(),
            &Permutation::new(&[1, 0]).unwrap(),
        )
        .unwrap();
        let c = ttlg::features::od_candidate::<f64>(
            &p,
            ttlg::kernels::OdChoice::default_for(&p).unwrap(),
        );
        assert_eq!(pred.predict_ns(&c), 1.0);
    }
}
