//! Online model refinement: recursive least squares over streamed
//! `(features, measured_ns)` points.
//!
//! The offline pipeline ([`crate::train`]) fits the Table II models once
//! from a generated dataset. In a long-running service, the runtime's
//! autotuner keeps *measuring* candidates on the device, and those
//! measurements are exactly the training points the models were fitted
//! on. [`OnlinePredictor`] accepts that stream and keeps the same
//! relative-error-weighted least-squares solution up to date
//! incrementally:
//!
//! * each point updates the normal equations `A ← λA + w·x̃x̃ᵀ`,
//!   `b ← λb + w·x̃·y` with the batch pipeline's weighting
//!   `w = 1/y²` and an exponential forgetting factor `λ` (recency
//!   weight — old measurements decay as the workload drifts);
//! * refined coefficients solve `(A + ridge)β = b + ridge·β_seed`,
//!   where a tiny scale-relative ridge pulls the solution toward the
//!   pretrained seed while data is scarce;
//! * until [`OnlineConfig::min_points`] points arrive for a schema, the
//!   seed model keeps serving predictions unchanged.
//!
//! With `λ = 1` and the offline training subset streamed through,
//! the refined model solves the same normal equations as
//! [`crate::train::train_from_points`] — the convergence property the
//! tests pin down.

use crate::dataset::{cpu_feature_vector, feature_vector};
use crate::linreg::LinearModel;
use crate::persist::{ModelPair, ModelStore};
use crate::pretrained::{cpu_model_default, model_pair_k40c};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;
use ttlg::{AnalyticPredictor, Candidate, Schema, TimePredictor};
use ttlg_gpu_sim::DeviceConfig;

/// Configuration for the online updater.
#[derive(Debug, Clone, Copy)]
pub struct OnlineConfig {
    /// Exponential forgetting factor `λ ∈ (0, 1]`: every new point
    /// decays the weight of all previous ones by `λ`. `1.0` means plain
    /// accumulation (no recency weighting).
    pub forgetting: f64,
    /// Measured points a schema must accumulate before refined
    /// coefficients replace the seed model in predictions.
    pub min_points: usize,
    /// Strength of the scale-relative ridge pulling the solution toward
    /// the seed coefficients (stabilizes the first refits; negligible
    /// once real data accumulates).
    pub prior_strength: f64,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            forgetting: 0.999,
            min_points: 16,
            prior_strength: 1e-9,
        }
    }
}

/// A sink for measured candidate timings — implemented by
/// [`OnlinePredictor`] and consumed by the runtime's autotuner, which
/// must not depend on the concrete model type.
pub trait MeasurementSink: Send + Sync {
    /// Stream one measured candidate into the model.
    fn observe_candidate(&self, c: &Candidate, measured_ns: f64);
}

/// Per-schema recursive-least-squares state.
#[derive(Debug, Clone)]
struct RlsState {
    /// Normal matrix `A` (`k × k`, intercept column first).
    a: Vec<Vec<f64>>,
    /// Right-hand side `b` (`k`).
    b: Vec<f64>,
    /// Seed coefficients `[intercept, coefs…]` the ridge pulls toward.
    seed: Vec<f64>,
    /// The model predictions use (the seed until the first refit).
    current: LinearModel,
    points: u64,
    refined: bool,
}

impl RlsState {
    fn new(seed: &LinearModel) -> Self {
        let k = seed.coefficients.len() + 1;
        let mut beta = Vec::with_capacity(k);
        beta.push(seed.intercept);
        beta.extend_from_slice(&seed.coefficients);
        RlsState {
            a: vec![vec![0.0; k]; k],
            b: vec![0.0; k],
            seed: beta,
            current: seed.clone(),
            points: 0,
            refined: false,
        }
    }

    /// Fold one `(features, measured_ns)` point in and refit when
    /// enough points have accumulated. Returns whether a refit
    /// produced new coefficients.
    fn observe(&mut self, cfg: &OnlineConfig, x: &[f64], y: f64) -> bool {
        let k = self.b.len();
        if x.len() + 1 != k || !y.is_finite() || y <= 0.0 {
            return false;
        }
        // The batch pipeline's relative-error weighting (see
        // `train_from_points`).
        let w = 1.0 / (y * y).max(1e-12);
        let lambda = cfg.forgetting.clamp(1e-6, 1.0);
        for i in 0..k {
            let xi = if i == 0 { 1.0 } else { x[i - 1] };
            for j in 0..k {
                let xj = if j == 0 { 1.0 } else { x[j - 1] };
                self.a[i][j] = lambda * self.a[i][j] + w * xi * xj;
            }
            self.b[i] = lambda * self.b[i] + w * xi * y;
        }
        self.points += 1;
        if self.points < cfg.min_points as u64 {
            return false;
        }
        match solve_ridged(&self.a, &self.b, &self.seed, cfg.prior_strength) {
            Some(beta) => {
                self.current.intercept = beta[0];
                self.current.coefficients = beta[1..].to_vec();
                self.refined = true;
                true
            }
            // Singular (e.g. a degenerate stream): keep the previous
            // coefficients and wait for more data.
            None => false,
        }
    }
}

/// Solve `(A + ridge)β = b + ridge·β_seed` by Gaussian elimination with
/// partial pivoting, where the ridge on each diagonal entry is scaled to
/// that entry's magnitude (so the prior is scale invariant across
/// features spanning many orders of magnitude). Returns `None` when the
/// system is singular.
fn solve_ridged(a: &[Vec<f64>], b: &[f64], seed: &[f64], prior: f64) -> Option<Vec<f64>> {
    let k = b.len();
    let mut m = vec![vec![0.0f64; k + 1]; k];
    for i in 0..k {
        m[i][..k].copy_from_slice(&a[i]);
        let ridge = prior * (1.0 + a[i][i].abs());
        m[i][i] += ridge;
        m[i][k] = b[i] + ridge * seed[i];
    }
    for col in 0..k {
        let piv = (col..k).max_by(|&r1, &r2| {
            m[r1][col]
                .abs()
                .partial_cmp(&m[r2][col].abs())
                .expect("finite")
        })?;
        if m[piv][col].abs() < 1e-12 * (1.0 + a[col][col].abs()) {
            return None;
        }
        m.swap(col, piv);
        let p = m[col][col];
        for v in m[col][col..].iter_mut() {
            *v /= p;
        }
        let pivot_row: Vec<f64> = m[col][col..].to_vec();
        for (r, row) in m.iter_mut().enumerate() {
            if r != col {
                let f = row[col];
                if f != 0.0 {
                    for (dst, src) in row[col..].iter_mut().zip(&pivot_row) {
                        *dst -= f * src;
                    }
                }
            }
        }
    }
    Some((0..k).map(|i| m[i][k]).collect())
}

/// A [`TimePredictor`] whose OD/OA regressions refine themselves from
/// streamed measurements (non-OD/OA candidates fall back to the analytic
/// model, exactly like [`crate::TrainedPredictor`]).
///
/// Predictions take a read lock; observations take a short write lock —
/// safe to share between a serving `Transposer` and a background tuner.
pub struct OnlinePredictor {
    cfg: OnlineConfig,
    od: RwLock<RlsState>,
    oa: RwLock<RlsState>,
    /// CPU-backend stream, seeded from [`cpu_model_default`]. Lives
    /// outside [`ModelPair`] (the persistable GPU pair) — CPU wall-clock
    /// coefficients are machine-specific and re-learned per process.
    cpu: RwLock<RlsState>,
    fallback: AnalyticPredictor,
    seed: ModelPair,
    points_seen: AtomicU64,
    refits: AtomicU64,
}

impl OnlinePredictor {
    /// Start from a seed model pair (typically the pretrained models).
    /// The CPU-backend stream always seeds from [`cpu_model_default`].
    pub fn from_pair(seed: &ModelPair, device: DeviceConfig, cfg: OnlineConfig) -> Self {
        OnlinePredictor {
            cfg,
            od: RwLock::new(RlsState::new(&seed.od)),
            oa: RwLock::new(RlsState::new(&seed.oa)),
            cpu: RwLock::new(RlsState::new(&cpu_model_default())),
            fallback: AnalyticPredictor::new(device),
            seed: seed.clone(),
            points_seen: AtomicU64::new(0),
            refits: AtomicU64::new(0),
        }
    }

    /// Start from the pretrained K40c models.
    pub fn pretrained_k40c(cfg: OnlineConfig) -> Self {
        Self::from_pair(&model_pair_k40c(), DeviceConfig::k40c(), cfg)
    }

    /// Stream one raw `(schema, features, measured_ns)` point. Returns
    /// `true` if the point was accepted (OD/OA with matching dimension
    /// and a positive finite time).
    pub fn observe_features(&self, schema: Schema, x: &[f64], measured_ns: f64) -> bool {
        let state = match schema {
            Schema::OrthogonalDistinct => &self.od,
            Schema::OrthogonalArbitrary => &self.oa,
            _ => return false,
        };
        let mut state = state.write().expect("online model poisoned");
        let before = state.points;
        let refit = state.observe(&self.cfg, x, measured_ns);
        let accepted = state.points > before;
        drop(state);
        if accepted {
            self.points_seen.fetch_add(1, Ordering::Relaxed);
        }
        if refit {
            self.refits.fetch_add(1, Ordering::Relaxed);
        }
        accepted
    }

    /// Stream one raw CPU-backend `(features, measured_ns)` point into
    /// the CPU stream. Returns `true` if the point was accepted.
    pub fn observe_cpu_features(&self, x: &[f64], measured_ns: f64) -> bool {
        let mut state = self.cpu.write().expect("online model poisoned");
        let before = state.points;
        let refit = state.observe(&self.cfg, x, measured_ns);
        let accepted = state.points > before;
        drop(state);
        if accepted {
            self.points_seen.fetch_add(1, Ordering::Relaxed);
        }
        if refit {
            self.refits.fetch_add(1, Ordering::Relaxed);
        }
        accepted
    }

    /// Stream one measured candidate (features are extracted the same
    /// way the offline dataset does). CPU-backend candidates feed the
    /// CPU stream; GPU candidates outside OD/OA are ignored.
    pub fn observe(&self, c: &Candidate, measured_ns: f64) -> bool {
        if let Some(x) = cpu_feature_vector(c) {
            return self.observe_cpu_features(&x, measured_ns);
        }
        match feature_vector(c) {
            Some((schema, x)) => self.observe_features(schema, &x, measured_ns),
            None => false,
        }
    }

    /// The models predictions currently use (refined once enough points
    /// have streamed in, the seed before that).
    pub fn models(&self) -> ModelPair {
        ModelPair {
            od: self
                .od
                .read()
                .expect("online model poisoned")
                .current
                .clone(),
            oa: self
                .oa
                .read()
                .expect("online model poisoned")
                .current
                .clone(),
        }
    }

    /// Snapshot as a persistable [`ModelStore`]: the seed pair plus the
    /// refined pair when any refit has happened.
    pub fn store(&self) -> ModelStore {
        let refined = if self.refits.load(Ordering::Relaxed) > 0 {
            Some(self.models())
        } else {
            None
        };
        ModelStore {
            pretrained: self.seed.clone(),
            refined,
        }
    }

    /// Whether each of (OD, OA) has refined coefficients.
    pub fn refined(&self) -> (bool, bool) {
        (
            self.od.read().expect("online model poisoned").refined,
            self.oa.read().expect("online model poisoned").refined,
        )
    }

    /// The CPU-backend model predictions currently use (the
    /// [`cpu_model_default`] seed until enough CPU points stream in).
    pub fn cpu_model(&self) -> LinearModel {
        self.cpu
            .read()
            .expect("online model poisoned")
            .current
            .clone()
    }

    /// Whether the CPU-backend stream has refined coefficients.
    pub fn cpu_refined(&self) -> bool {
        self.cpu.read().expect("online model poisoned").refined
    }

    /// Accepted points so far.
    pub fn points_seen(&self) -> u64 {
        self.points_seen.load(Ordering::Relaxed)
    }

    /// Successful refits so far.
    pub fn refits(&self) -> u64 {
        self.refits.load(Ordering::Relaxed)
    }
}

impl TimePredictor for OnlinePredictor {
    fn predict_ns(&self, c: &Candidate) -> f64 {
        if let Some(x) = cpu_feature_vector(c) {
            let state = self.cpu.read().expect("online model poisoned");
            // Until real wall-clock points refine the stream, the
            // closed-form analytic CPU model outranks the linear seed.
            return if state.refined {
                state.current.predict(&x).max(1.0)
            } else {
                drop(state);
                self.fallback.predict_ns(c)
            };
        }
        match feature_vector(c) {
            Some((Schema::OrthogonalDistinct, x)) => self
                .od
                .read()
                .expect("online model poisoned")
                .current
                .predict(&x)
                .max(1.0),
            Some((Schema::OrthogonalArbitrary, x)) => self
                .oa
                .read()
                .expect("online model poisoned")
                .current
                .predict(&x)
                .max(1.0),
            _ => self.fallback.predict_ns(c),
        }
    }

    fn name(&self) -> &str {
        "online-regression"
    }
}

impl MeasurementSink for OnlinePredictor {
    fn observe_candidate(&self, c: &Candidate, measured_ns: f64) {
        self.observe(c, measured_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{self, DataPoint};
    use crate::train::{train_from_points, TrainConfig};
    use ttlg_tensor::generator::model_dataset;
    use ttlg_tensor::rng::StdRng;

    fn quick_points() -> Vec<DataPoint> {
        let cfg = TrainConfig::quick();
        let cases = model_dataset(&cfg.dataset);
        dataset::generate::<f64>(&DeviceConfig::k40c(), &cases, cfg.max_configs_per_case)
    }

    #[test]
    fn streaming_training_set_converges_to_batch_fit() {
        // Property: with λ = 1 and a negligible prior, streaming the
        // batch pipeline's exact training subset must solve the same
        // weighted normal equations as `train_from_points`, so both
        // models predict identically (within numerical tolerance).
        let cfg = TrainConfig::quick();
        let mut points = quick_points();
        let batch = train_from_points(points.clone(), cfg.split_seed).unwrap();

        // Replicate the batch split: shuffle the combined set, then per
        // schema train on the first n - n/5 points.
        let mut rng = StdRng::seed_from_u64(cfg.split_seed);
        rng.shuffle(&mut points);
        let online = OnlinePredictor::pretrained_k40c(OnlineConfig {
            forgetting: 1.0,
            min_points: 4,
            prior_strength: 1e-12,
        });
        for schema in [Schema::OrthogonalDistinct, Schema::OrthogonalArbitrary] {
            let schema_points: Vec<&DataPoint> =
                points.iter().filter(|p| p.schema == schema).collect();
            let n = schema_points.len();
            let n_train = n - n / 5;
            for p in &schema_points[..n_train] {
                assert!(online.observe_features(schema, &p.features, p.time_ns));
            }
            let refined = online.models();
            let mine = match schema {
                Schema::OrthogonalDistinct => &refined.od,
                _ => &refined.oa,
            };
            // Coefficient-level agreement is limited by the conditioning
            // of the normal equations (features span ~7 orders of
            // magnitude), so the binding assertion is pointwise
            // prediction agreement over the training subset.
            for p in &schema_points[..n_train] {
                let a = mine.predict(&p.features);
                let b = batch_predict(&batch, schema, &p.features);
                assert!(
                    (a - b).abs() <= 1e-4 * (b.abs() + 1.0),
                    "{schema}: online {a} vs batch {b}"
                );
            }
        }
        assert_eq!(online.refined(), (true, true));
        assert!(online.refits() > 0);
    }

    fn batch_predict(models: &crate::train::TrainedModels, schema: Schema, x: &[f64]) -> f64 {
        match schema {
            Schema::OrthogonalDistinct => models.od.fit.model.predict(x),
            _ => models.oa.fit.model.predict(x),
        }
    }

    #[test]
    fn refinement_reduces_geo_mean_error_on_skewed_workload() {
        // Start from badly skewed seed coefficients and stream the
        // dataset through: refined predictions must strictly reduce the
        // Table II geo-mean error metric on the same points.
        let mut seed = model_pair_k40c();
        seed.od.intercept *= 3.0;
        seed.oa.intercept *= 3.0;
        for (i, c) in seed.od.coefficients.iter_mut().enumerate() {
            *c *= if i % 2 == 0 { 2.5 } else { 0.3 };
        }
        for (i, c) in seed.oa.coefficients.iter_mut().enumerate() {
            *c *= if i % 2 == 0 { 0.3 } else { 2.5 };
        }
        let online = OnlinePredictor::from_pair(
            &seed,
            DeviceConfig::k40c(),
            OnlineConfig {
                forgetting: 1.0,
                min_points: 8,
                prior_strength: 1e-9,
            },
        );
        let points = quick_points();
        let geo = |pair: &ModelPair| {
            let mut sum_ln = 0.0;
            let mut n = 0u64;
            for p in &points {
                let m = match p.schema {
                    Schema::OrthogonalDistinct => &pair.od,
                    _ => &pair.oa,
                };
                let pred = m.predict(&p.features).max(1.0);
                sum_ln += (pred / p.time_ns).ln().abs();
                n += 1;
            }
            (sum_ln / n as f64).exp()
        };
        let before = geo(&online.models());
        for p in &points {
            online.observe_features(p.schema, &p.features, p.time_ns);
        }
        let after = geo(&online.models());
        assert!(
            after < before,
            "refinement must reduce geo-mean error: {before} -> {after}"
        );
        assert!(after < 1.5, "refined model should fit well, got {after}");
        // The skewed seed is preserved alongside the refinement.
        let store = online.store();
        assert_eq!(store.pretrained, seed);
        assert!(store.refined.is_some());
        assert_eq!(store.effective(), &online.models());
    }

    #[test]
    fn seed_serves_until_min_points() {
        let online = OnlinePredictor::pretrained_k40c(OnlineConfig {
            forgetting: 1.0,
            min_points: 1000,
            prior_strength: 1e-9,
        });
        let points = quick_points();
        for p in points.iter().take(20) {
            online.observe_features(p.schema, &p.features, p.time_ns);
        }
        assert_eq!(online.refined(), (false, false));
        assert_eq!(online.models(), model_pair_k40c());
        assert_eq!(online.store().refined, None);
        assert!(online.points_seen() > 0);
    }

    #[test]
    fn forgetting_tracks_drifting_workload() {
        // Feed an initial regime, then a shifted one; with forgetting,
        // the refined model must follow the recent regime more closely
        // than a non-forgetting one does.
        let mk = |lambda: f64| {
            OnlinePredictor::pretrained_k40c(OnlineConfig {
                forgetting: lambda,
                min_points: 8,
                prior_strength: 1e-9,
            })
        };
        let forgetful = mk(0.9);
        let rigid = mk(1.0);
        let x_of = |i: usize| {
            let v = (i % 13 + 1) as f64 * 1e4;
            let blocks = (i % 7 + 1) as f64 * 100.0;
            vec![v, blocks, 32.0, 32.0, v * 0.1]
        };
        // Regime A: y = 2e-2 * volume; regime B: y = 8e-2 * volume.
        for i in 0..200 {
            let x = x_of(i);
            let y = 2e-2 * x[0] + 500.0;
            forgetful.observe_features(Schema::OrthogonalDistinct, &x, y);
            rigid.observe_features(Schema::OrthogonalDistinct, &x, y);
        }
        for i in 0..60 {
            let x = x_of(i);
            let y = 8e-2 * x[0] + 500.0;
            forgetful.observe_features(Schema::OrthogonalDistinct, &x, y);
            rigid.observe_features(Schema::OrthogonalDistinct, &x, y);
        }
        let probe = x_of(3);
        let truth = 8e-2 * probe[0] + 500.0;
        let err_forgetful = (forgetful.models().od.predict(&probe) - truth).abs();
        let err_rigid = (rigid.models().od.predict(&probe) - truth).abs();
        assert!(
            err_forgetful < err_rigid,
            "forgetting should track the recent regime: {err_forgetful} vs {err_rigid}"
        );
    }

    #[test]
    fn rejects_bad_points() {
        let online = OnlinePredictor::pretrained_k40c(OnlineConfig::default());
        assert!(!online.observe_features(Schema::OrthogonalDistinct, &[1.0; 5], f64::NAN));
        assert!(!online.observe_features(Schema::OrthogonalDistinct, &[1.0; 5], -2.0));
        assert!(!online.observe_features(Schema::OrthogonalDistinct, &[1.0; 3], 10.0));
        assert!(!online.observe_features(Schema::Copy, &[1.0; 5], 10.0));
        assert!(!online.observe_cpu_features(&[1.0; 3], 10.0), "bad width");
        assert!(!online.observe_cpu_features(&[1.0; 4], f64::NAN));
        assert_eq!(online.points_seen(), 0);
    }

    #[test]
    fn cpu_stream_refines_from_wall_clock_points() {
        let online = OnlinePredictor::pretrained_k40c(OnlineConfig {
            forgetting: 1.0,
            min_points: 8,
            prior_strength: 1e-9,
        });
        assert!(!online.cpu_refined());
        // Synthetic ground truth: 0.1 ns/byte + 3 ns/block - 50 ns/run
        // elem - 1 µs/thread + 20 µs dispatch.
        let x_of = |i: usize| {
            let bytes = ((i % 11) + 1) as f64 * 2e6;
            let blocks = ((i % 5) + 1) as f64 * 64.0;
            let run = [1.0, 8.0, 64.0][i % 3];
            let threads = [1.0, 2.0, 4.0][(i / 3) % 3];
            vec![bytes, blocks, run, threads]
        };
        let y_of = |x: &[f64]| 0.1 * x[0] + 3.0 * x[1] - 50.0 * x[2] - 1_000.0 * x[3] + 20_000.0;
        for i in 0..120 {
            let x = x_of(i);
            let y = y_of(&x);
            assert!(online.observe_cpu_features(&x, y));
        }
        assert!(online.cpu_refined());
        // GPU pair untouched; refined() keeps its (od, oa) meaning.
        assert_eq!(online.refined(), (false, false));
        let m = online.cpu_model();
        let probe = x_of(7);
        let pred = m.predict(&probe);
        let truth = y_of(&probe);
        assert!(
            (pred - truth).abs() <= 0.05 * truth.abs(),
            "refined CPU model should fit the synthetic law: {pred} vs {truth}"
        );
    }

    #[test]
    fn cpu_candidates_feed_cpu_stream_and_predict() {
        let online = OnlinePredictor::pretrained_k40c(OnlineConfig {
            forgetting: 1.0,
            min_points: 4,
            prior_strength: 1e-9,
        });
        let shape = ttlg_tensor::Shape::new(&[64, 32, 16]).unwrap();
        let perm = ttlg_tensor::Permutation::new(&[0, 2, 1]).unwrap();
        let p = ttlg::Problem::new(&shape, &perm).unwrap();
        // Before refinement, CPU predictions come from the analytic
        // fallback — identical to AnalyticPredictor.
        let c = ttlg::features::cpu_candidate::<f64>(&p, Schema::FviMatchLarge, 32, 2);
        let analytic = AnalyticPredictor::new(DeviceConfig::k40c());
        assert_eq!(online.predict_ns(&c), analytic.predict_ns(&c));
        // Stream varied measured CPU candidates; the stream refines and
        // predictions switch to the refined linear model.
        for (tile, threads, ns) in [
            (16, 1, 900_000.0),
            (32, 1, 800_000.0),
            (64, 1, 700_000.0),
            (16, 2, 500_000.0),
            (32, 2, 450_000.0),
            (64, 2, 400_000.0),
            (32, 4, 300_000.0),
            (64, 4, 250_000.0),
        ] {
            let ci = ttlg::features::cpu_candidate::<f64>(&p, Schema::FviMatchLarge, tile, threads);
            assert!(online.observe(&ci, ns), "CPU candidate accepted");
        }
        assert!(online.cpu_refined());
        assert!(online.points_seen() >= 8);
        let pred = online.predict_ns(&c);
        assert!(pred > 0.0 && pred.is_finite());
        assert_ne!(pred, analytic.predict_ns(&c), "refined model now serves");
    }
}
