//! Labelled dataset generation (paper Sec. V "DataSet").
//!
//! For every transposition case, every admissible slice configuration of
//! the Orthogonal-Distinct and Orthogonal-Arbitrary kernels is built and
//! timed on the simulated device; the configuration's Table II features
//! plus the measured time form one data point. The paper trained on
//! 77,502 (OD) and 8,042 (OA) such points; the generator here scales to
//! any budget through [`ttlg_tensor::generator::DatasetConfig`].

use ttlg::features::KernelChoice;
use ttlg::{Candidate, Problem, Schema, Transposer};
use ttlg_gpu_sim::DeviceConfig;
use ttlg_tensor::generator::Case;
use ttlg_tensor::Element;

/// Feature names of the Orthogonal-Distinct model (Table II, upper half).
pub const OD_FEATURES: [&str; 5] = [
    "Volume",
    "NumBlocks",
    "Input slice",
    "Output slice",
    "Cycles",
];

/// Feature names of the Orthogonal-Arbitrary model (Table II, lower
/// half).
pub const OA_FEATURES: [&str; 7] = [
    "Volume",
    "NumThreads",
    "Total Slice",
    "Input Stride",
    "Output Stride",
    "Special Instr",
    "Cycles",
];

/// Feature names of the CPU-backend model (no paper analogue — the
/// tiled CPU kernel's cost drivers: total traffic, tile-block dispatch
/// count, innermost contiguous-run length, and worker threads).
pub const CPU_FEATURES: [&str; 4] = ["Bytes Moved", "Tile Blocks", "Run Elems", "Threads"];

/// Extract the CPU feature vector for a CPU-backend candidate; `None`
/// for GPU candidates. CPU candidates carry the contiguous run length in
/// `input_slice`, the tile-block count in `grid_blocks`, and the worker
/// thread count in `threads_per_block` (see `ttlg::features::cpu_candidate`).
pub fn cpu_feature_vector(c: &Candidate) -> Option<Vec<f64>> {
    if !matches!(c.choice, KernelChoice::CpuTiled { .. }) {
        return None;
    }
    Some(vec![
        (2 * c.volume * c.elem_bytes) as f64,
        c.grid_blocks as f64,
        c.input_slice as f64,
        c.threads_per_block as f64,
    ])
}

/// Extract the Table II feature vector for a candidate of the given
/// schema; `None` for schemas the paper does not model with regression.
/// CPU-backend candidates embed a schema label but run no GPU kernel, so
/// they never route through the GPU regressions (use
/// [`cpu_feature_vector`] for them).
pub fn feature_vector(c: &Candidate) -> Option<(Schema, Vec<f64>)> {
    if matches!(c.choice, KernelChoice::CpuTiled { .. }) {
        return None;
    }
    match c.schema() {
        Schema::OrthogonalDistinct => Some((
            Schema::OrthogonalDistinct,
            vec![
                c.volume as f64,
                c.grid_blocks as f64,
                c.input_slice as f64,
                c.output_slice as f64,
                c.cycles,
            ],
        )),
        Schema::OrthogonalArbitrary => Some((
            Schema::OrthogonalArbitrary,
            vec![
                c.volume as f64,
                c.num_threads() as f64,
                c.total_slice as f64,
                c.input_stride as f64,
                c.output_stride as f64,
                c.special_instr,
                c.cycles,
            ],
        )),
        _ => None,
    }
}

/// One labelled observation.
#[derive(Debug, Clone)]
pub struct DataPoint {
    /// Kernel schema the point belongs to.
    pub schema: Schema,
    /// Table II feature vector.
    pub features: Vec<f64>,
    /// Ground-truth time from the simulated device, ns.
    pub time_ns: f64,
    /// Case label (for debugging).
    pub case: String,
}

/// Generate labelled points for a list of cases. At most
/// `max_configs_per_case` slice configurations are timed per (case,
/// schema).
pub fn generate<E: Element>(
    device: &DeviceConfig,
    cases: &[Case],
    max_configs_per_case: usize,
) -> Vec<DataPoint> {
    let t = Transposer::new(device.clone());
    let mut points = Vec::new();
    for case in cases {
        let problem = match Problem::new(&case.shape, &case.perm) {
            Ok(p) => p,
            Err(_) => continue,
        };
        for schema in [Schema::OrthogonalDistinct, Schema::OrthogonalArbitrary] {
            let candidates = ttlg::slice::enumerate_candidates::<E>(
                &problem,
                schema,
                device,
                ttlg::slice::DEFAULT_OVERBOOKING,
                true,
            );
            for cand in candidates.into_iter().take(max_configs_per_case) {
                let Some((schema, features)) = feature_vector(&cand) else {
                    continue;
                };
                let Ok(m) = t.measure_candidate::<E>(&problem, &cand) else {
                    continue;
                };
                points.push(DataPoint {
                    schema,
                    features,
                    time_ns: m.timing.time_ns,
                    case: case.name.clone(),
                });
            }
        }
    }
    points
}

/// Split points by schema into `(x, y)` matrices for fitting.
pub fn split_xy(points: &[DataPoint], schema: Schema) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut x = Vec::new();
    let mut y = Vec::new();
    for p in points.iter().filter(|p| p.schema == schema) {
        x.push(p.features.clone());
        y.push(p.time_ns);
    }
    (x, y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttlg_tensor::generator::{model_dataset, DatasetConfig};

    #[test]
    fn generates_points_for_both_schemas() {
        let cfg = DatasetConfig::small();
        let cases = model_dataset(&cfg);
        let device = DeviceConfig::k40c();
        let points = generate::<f64>(&device, &cases[..cases.len().min(30)], 4);
        assert!(!points.is_empty());
        let od = points
            .iter()
            .filter(|p| p.schema == Schema::OrthogonalDistinct)
            .count();
        let oa = points
            .iter()
            .filter(|p| p.schema == Schema::OrthogonalArbitrary)
            .count();
        assert!(od > 0, "need OD points");
        assert!(oa > 0, "need OA points");
        for p in &points {
            assert!(p.time_ns > 0.0);
            let want = match p.schema {
                Schema::OrthogonalDistinct => 5,
                Schema::OrthogonalArbitrary => 7,
                _ => unreachable!(),
            };
            assert_eq!(p.features.len(), want);
        }
    }

    #[test]
    fn split_by_schema() {
        let points = vec![
            DataPoint {
                schema: Schema::OrthogonalDistinct,
                features: vec![1.0; 5],
                time_ns: 10.0,
                case: "a".into(),
            },
            DataPoint {
                schema: Schema::OrthogonalArbitrary,
                features: vec![2.0; 7],
                time_ns: 20.0,
                case: "b".into(),
            },
        ];
        let (x, y) = split_xy(&points, Schema::OrthogonalDistinct);
        assert_eq!(x.len(), 1);
        assert_eq!(y, vec![10.0]);
    }

    #[test]
    fn feature_vector_schema_filter() {
        let shape = ttlg_tensor::Shape::new(&[64, 8, 8]).unwrap();
        let perm = ttlg_tensor::Permutation::new(&[0, 2, 1]).unwrap();
        let p = Problem::new(&shape, &perm).unwrap();
        let c = ttlg::features::fml_candidate::<f64>(&p);
        assert!(feature_vector(&c).is_none());
        assert!(cpu_feature_vector(&c).is_none(), "GPU candidate");
    }

    #[test]
    fn cpu_candidates_route_to_cpu_features_only() {
        let shape = ttlg_tensor::Shape::new(&[64, 16, 16]).unwrap();
        let perm = ttlg_tensor::Permutation::new(&[0, 2, 1]).unwrap();
        let p = Problem::new(&shape, &perm).unwrap();
        // A CPU candidate wearing an OD schema label must NOT fall into
        // the OD regression — its features live on a different scale.
        let c = ttlg::features::cpu_candidate::<f64>(&p, Schema::OrthogonalDistinct, 32, 4);
        assert!(feature_vector(&c).is_none());
        let x = cpu_feature_vector(&c).expect("CPU candidate has CPU features");
        assert_eq!(x.len(), CPU_FEATURES.len());
        assert_eq!(x[0], (2 * c.volume * c.elem_bytes) as f64);
        assert_eq!(x[2], 64.0, "run length is the fused innermost extent");
        assert_eq!(x[3], 4.0);
    }
}
