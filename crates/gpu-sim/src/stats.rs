//! Aggregated transaction statistics — the quantities the paper's Table I
//! reasons about, plus instruction-level counters used by the performance
//! model (Table II's "special instructions").

/// Counters accumulated while running a kernel. All counts are machine-wide
/// totals (summed over every block).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TransactionStats {
    /// 128-byte DRAM load transactions (global memory reads).
    pub dram_load_tx: u64,
    /// 128-byte DRAM store transactions (global memory writes).
    pub dram_store_tx: u64,
    /// Warp-level shared-memory load accesses, *excluding* replays.
    pub smem_load_acc: u64,
    /// Warp-level shared-memory store accesses, *excluding* replays.
    pub smem_store_acc: u64,
    /// Extra warp-level shared-memory replays caused by bank conflicts
    /// (an access with conflict degree `d` adds `d - 1` replays).
    pub smem_conflict_replays: u64,
    /// Texture-memory load transactions (offset-array reads).
    pub tex_load_tx: u64,
    /// Special (mod/div -> MUFU) instructions executed.
    pub special_instr: u64,
    /// Other integer/address instructions (cheap, tracked for completeness).
    pub index_instr: u64,
    /// Number of `__syncthreads()` barriers executed (block-level count).
    pub barriers: u64,
    /// Total elements moved (for sanity checks / bandwidth accounting).
    pub elements_moved: u64,
}

impl TransactionStats {
    /// Elementwise sum of two counters (used when merging per-worker or
    /// per-block partials).
    pub fn merge(&mut self, other: &TransactionStats) {
        self.dram_load_tx += other.dram_load_tx;
        self.dram_store_tx += other.dram_store_tx;
        self.smem_load_acc += other.smem_load_acc;
        self.smem_store_acc += other.smem_store_acc;
        self.smem_conflict_replays += other.smem_conflict_replays;
        self.tex_load_tx += other.tex_load_tx;
        self.special_instr += other.special_instr;
        self.index_instr += other.index_instr;
        self.barriers += other.barriers;
        self.elements_moved += other.elements_moved;
    }

    /// Scale every counter by an integer factor (used when extrapolating a
    /// sampled representative block to its whole class).
    pub fn scaled(&self, factor: u64) -> TransactionStats {
        TransactionStats {
            dram_load_tx: self.dram_load_tx * factor,
            dram_store_tx: self.dram_store_tx * factor,
            smem_load_acc: self.smem_load_acc * factor,
            smem_store_acc: self.smem_store_acc * factor,
            smem_conflict_replays: self.smem_conflict_replays * factor,
            tex_load_tx: self.tex_load_tx * factor,
            special_instr: self.special_instr * factor,
            index_instr: self.index_instr * factor,
            barriers: self.barriers * factor,
            elements_moved: self.elements_moved * factor,
        }
    }

    /// Total DRAM transactions in both directions.
    #[inline]
    pub fn dram_total_tx(&self) -> u64 {
        self.dram_load_tx + self.dram_store_tx
    }

    /// Total warp-level shared-memory accesses including conflict replays.
    #[inline]
    pub fn smem_total_acc(&self) -> u64 {
        self.smem_load_acc + self.smem_store_acc + self.smem_conflict_replays
    }

    /// Bytes moved through DRAM (128 B per transaction).
    #[inline]
    pub fn dram_bytes(&self) -> u64 {
        self.dram_total_tx() * crate::TRANSACTION_BYTES as u64
    }

    /// Minimal DRAM transactions to move `elements_moved` elements of
    /// `elem_bytes` each once in and once out.
    #[inline]
    pub fn minimal_dram_tx(&self, elem_bytes: usize) -> u64 {
        2 * ((self.elements_moved as usize * elem_bytes).div_ceil(crate::TRANSACTION_BYTES)) as u64
    }

    /// Global-memory efficiency: minimal transactions / achieved
    /// transactions (1.0 = perfectly coalesced and aligned). This is the
    /// per-request form of the profiler's metric, so a trace can carry
    /// it without keeping the whole counter set alive.
    pub fn dram_efficiency(&self, elem_bytes: usize) -> f64 {
        if self.dram_total_tx() == 0 {
            return 1.0;
        }
        self.minimal_dram_tx(elem_bytes) as f64 / self.dram_total_tx() as f64
    }

    /// Shared-memory replay rate: conflict replays per access (0 =
    /// conflict-free).
    pub fn smem_replay_rate(&self) -> f64 {
        let base = self.smem_load_acc + self.smem_store_acc;
        if base == 0 {
            return 0.0;
        }
        self.smem_conflict_replays as f64 / base as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = TransactionStats {
            dram_load_tx: 3,
            smem_conflict_replays: 2,
            ..Default::default()
        };
        let b = TransactionStats {
            dram_load_tx: 4,
            dram_store_tx: 7,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.dram_load_tx, 7);
        assert_eq!(a.dram_store_tx, 7);
        assert_eq!(a.smem_conflict_replays, 2);
        assert_eq!(a.dram_total_tx(), 14);
    }

    #[test]
    fn scaled_multiplies_everything() {
        let a = TransactionStats {
            dram_load_tx: 2,
            dram_store_tx: 3,
            smem_load_acc: 4,
            smem_store_acc: 5,
            smem_conflict_replays: 6,
            tex_load_tx: 7,
            special_instr: 8,
            index_instr: 9,
            barriers: 10,
            elements_moved: 11,
        };
        let s = a.scaled(3);
        assert_eq!(s.dram_load_tx, 6);
        assert_eq!(s.elements_moved, 33);
        assert_eq!(s.smem_total_acc(), (4 + 5 + 6) * 3);
    }

    #[test]
    fn dram_bytes_uses_128b_transactions() {
        let a = TransactionStats {
            dram_load_tx: 1,
            dram_store_tx: 1,
            ..Default::default()
        };
        assert_eq!(a.dram_bytes(), 256);
    }

    #[test]
    fn efficiency_and_replay_rates() {
        // 64 doubles = 512 B = 4 minimal tx each way.
        let perfect = TransactionStats {
            dram_load_tx: 4,
            dram_store_tx: 4,
            elements_moved: 64,
            smem_load_acc: 2,
            smem_store_acc: 2,
            ..Default::default()
        };
        assert_eq!(perfect.minimal_dram_tx(8), 8);
        assert!((perfect.dram_efficiency(8) - 1.0).abs() < 1e-12);
        assert_eq!(perfect.smem_replay_rate(), 0.0);

        let wasteful = TransactionStats {
            dram_load_tx: 64,
            dram_store_tx: 64,
            elements_moved: 64,
            smem_load_acc: 2,
            smem_store_acc: 2,
            smem_conflict_replays: 124,
            ..Default::default()
        };
        assert!((wasteful.dram_efficiency(8) - 8.0 / 128.0).abs() < 1e-12);
        assert!((wasteful.smem_replay_rate() - 31.0).abs() < 1e-12);

        // Degenerate cases report neutral values.
        let empty = TransactionStats::default();
        assert_eq!(empty.dram_efficiency(8), 1.0);
        assert_eq!(empty.smem_replay_rate(), 0.0);
    }
}
