//! The kernel abstraction: a block-structured program plus the accounting
//! hooks it uses to report its warp-level memory behaviour.
//!
//! A kernel implements [`BlockKernel`]: a launch geometry and a
//! `run_block` body. The body does two things at once:
//!
//! 1. moves real elements through [`BlockIo`] (input tensor -> shared
//!    memory simulation -> output tensor) so correctness is testable, and
//! 2. reports each warp-wide memory access to [`Accounting`], which feeds
//!    the coalescing/bank models and ultimately the timing model.
//!
//! In `Analyze` mode the executor runs only representative blocks and
//! `BlockIo` short-circuits data movement, so the same kernel code doubles
//! as a fast analytical model of itself.

use crate::coalesce;
use crate::smem;
use crate::stats::TransactionStats;
use ttlg_tensor::Element;

/// Launch geometry for a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Launch {
    /// Number of thread blocks in the grid.
    pub grid_blocks: usize,
    /// Threads per block (a multiple of the warp size in practice).
    pub threads_per_block: usize,
    /// Shared memory footprint per block, in bytes.
    pub smem_bytes_per_block: usize,
}

impl Launch {
    /// Warps per block (rounded up).
    pub fn warps_per_block(&self, warp_size: usize) -> usize {
        self.threads_per_block.div_ceil(warp_size)
    }

    /// Total threads in the grid.
    pub fn total_threads(&self) -> usize {
        self.grid_blocks * self.threads_per_block
    }
}

/// Execution mode chosen by the executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoMode {
    /// Move real data and count transactions.
    Execute,
    /// Count transactions only; loads return zero, stores are discarded.
    Analyze,
}

/// Accounting sink passed to `run_block`. All counters are per-block and
/// merged by the executor.
#[derive(Debug)]
pub struct Accounting {
    /// Accumulated counters for this block.
    pub stats: TransactionStats,
}

impl Accounting {
    /// Fresh accounting for one block.
    pub fn new() -> Self {
        Accounting {
            stats: TransactionStats::default(),
        }
    }

    /// A warp loads `lanes` consecutive elements from global memory
    /// starting at element offset `start_elem`.
    #[inline]
    pub fn global_load_contiguous(&mut self, start_elem: usize, lanes: usize, elem_bytes: usize) {
        self.stats.dram_load_tx +=
            coalesce::transactions_for_contiguous(start_elem * elem_bytes, lanes, elem_bytes);
    }

    /// A warp stores `lanes` consecutive elements to global memory.
    #[inline]
    pub fn global_store_contiguous(&mut self, start_elem: usize, lanes: usize, elem_bytes: usize) {
        self.stats.dram_store_tx +=
            coalesce::transactions_for_contiguous(start_elem * elem_bytes, lanes, elem_bytes);
    }

    /// A warp loads with constant element stride from global memory.
    #[inline]
    pub fn global_load_strided(
        &mut self,
        start_elem: usize,
        lanes: usize,
        stride_elems: usize,
        elem_bytes: usize,
    ) {
        self.stats.dram_load_tx += coalesce::transactions_for_strided(
            start_elem * elem_bytes,
            lanes,
            stride_elems * elem_bytes,
            elem_bytes,
        );
    }

    /// A warp stores with constant element stride to global memory.
    #[inline]
    pub fn global_store_strided(
        &mut self,
        start_elem: usize,
        lanes: usize,
        stride_elems: usize,
        elem_bytes: usize,
    ) {
        self.stats.dram_store_tx += coalesce::transactions_for_strided(
            start_elem * elem_bytes,
            lanes,
            stride_elems * elem_bytes,
            elem_bytes,
        );
    }

    /// A warp access with arbitrary per-lane element offsets (used by the
    /// indirection-array kernels); `load` selects load vs store.
    pub fn global_access_lanes(&mut self, elem_offsets: &[usize], elem_bytes: usize, load: bool) {
        let mut bytes = [0usize; 64];
        let n = elem_offsets.len().min(32);
        for (slot, &e) in bytes[..n].iter_mut().zip(elem_offsets.iter()) {
            *slot = e * elem_bytes;
        }
        // include element end bytes for wide elements straddling segments
        let mut expanded = [0usize; 64];
        for i in 0..n {
            expanded[i * 2] = bytes[i];
            expanded[i * 2 + 1] = bytes[i] + elem_bytes - 1;
        }
        let tx = coalesce::transactions_for_lanes(&expanded[..n * 2]);
        if load {
            self.stats.dram_load_tx += tx;
        } else {
            self.stats.dram_store_tx += tx;
        }
    }

    /// A warp-wide shared-memory access with constant element stride;
    /// records the base access plus any conflict replays.
    #[inline]
    pub fn smem_access_strided(
        &mut self,
        start_elem: usize,
        lanes: usize,
        stride_elems: usize,
        elem_bytes: usize,
        load: bool,
    ) {
        if lanes == 0 {
            return;
        }
        let degree = smem::conflict_degree_strided(start_elem, lanes, stride_elems, elem_bytes);
        if load {
            self.stats.smem_load_acc += 1;
        } else {
            self.stats.smem_store_acc += 1;
        }
        self.stats.smem_conflict_replays += degree.saturating_sub(1);
    }

    /// A warp-wide shared-memory access with arbitrary per-lane element
    /// offsets.
    pub fn smem_access_lanes(&mut self, elem_offsets: &[usize], elem_bytes: usize, load: bool) {
        if elem_offsets.is_empty() {
            return;
        }
        let mut addrs = [0usize; 32];
        let n = elem_offsets.len().min(32);
        for (slot, &e) in addrs[..n].iter_mut().zip(elem_offsets.iter()) {
            *slot = e * elem_bytes;
        }
        let degree =
            smem::conflict_degree_with_banks(&addrs[..n], smem::bank_word_for_elem(elem_bytes));
        if load {
            self.stats.smem_load_acc += 1;
        } else {
            self.stats.smem_store_acc += 1;
        }
        self.stats.smem_conflict_replays += degree.saturating_sub(1);
    }

    /// A warp reads `lanes` consecutive 4-byte entries of an offset array
    /// bound to texture memory.
    #[inline]
    pub fn tex_load_contiguous(&mut self, start_idx: usize, lanes: usize) {
        self.stats.tex_load_tx += coalesce::transactions_for_contiguous(start_idx * 4, lanes, 4);
    }

    /// `n` special (mod/div) instructions executed (thread-level count).
    #[inline]
    pub fn special_instr(&mut self, n: u64) {
        self.stats.special_instr += n;
    }

    /// `n` ordinary index/address instructions (thread-level count).
    #[inline]
    pub fn index_instr(&mut self, n: u64) {
        self.stats.index_instr += n;
    }

    /// One `__syncthreads()` barrier.
    #[inline]
    pub fn barrier(&mut self) {
        self.stats.barriers += 1;
    }

    /// `n` elements moved input->output (bookkeeping/sanity).
    #[inline]
    pub fn elements(&mut self, n: u64) {
        self.stats.elements_moved += n;
    }
}

impl Default for Accounting {
    fn default() -> Self {
        Self::new()
    }
}

/// Shared, write-disjoint output buffer. Blocks of a transposition kernel
/// write disjoint element sets, which the executor can optionally verify.
pub struct SharedOutput<'a, E> {
    ptr: *mut E,
    len: usize,
    /// Optional double-write detector (test/debug aid).
    tracker: Option<&'a [std::sync::atomic::AtomicU8]>,
}

// SAFETY: all mutation goes through `write`, and the kernel contract is
// that distinct blocks write distinct offsets; the optional tracker turns
// violations into panics in tests.
unsafe impl<E: Send> Sync for SharedOutput<'_, E> {}
unsafe impl<E: Send> Send for SharedOutput<'_, E> {}

impl<'a, E: Element> SharedOutput<'a, E> {
    /// Wrap a mutable slice for disjoint parallel writes.
    pub fn new(out: &'a mut [E], tracker: Option<&'a [std::sync::atomic::AtomicU8]>) -> Self {
        if let Some(t) = tracker {
            assert_eq!(t.len(), out.len());
        }
        SharedOutput {
            ptr: out.as_mut_ptr(),
            len: out.len(),
            tracker,
        }
    }

    /// Write one element. Panics on out-of-bounds, and on double writes
    /// when tracking is enabled.
    #[inline]
    pub fn write(&self, off: usize, v: E) {
        assert!(
            off < self.len,
            "output write out of bounds: {off} >= {}",
            self.len
        );
        if let Some(t) = self.tracker {
            let prev = t[off].fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            assert_eq!(prev, 0, "output element {off} written more than once");
        }
        // SAFETY: bounds checked above; disjointness is the kernel contract
        // (verified by the tracker when enabled).
        unsafe { self.ptr.add(off).write(v) };
    }

    /// Buffer length in elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Per-block I/O handle: the input tensor, the shared output, and the mode.
pub struct BlockIo<'a, E: Element> {
    /// Read-only input tensor storage (linearized).
    input: &'a [E],
    output: &'a SharedOutput<'a, E>,
    mode: IoMode,
}

impl<'a, E: Element> BlockIo<'a, E> {
    /// Build the I/O handle for one block.
    pub fn new(input: &'a [E], output: &'a SharedOutput<'a, E>, mode: IoMode) -> Self {
        BlockIo {
            input,
            output,
            mode,
        }
    }

    /// The execution mode.
    #[inline]
    pub fn mode(&self) -> IoMode {
        self.mode
    }

    /// Load one element from the input tensor (zero in `Analyze` mode).
    #[inline]
    pub fn load(&self, off: usize) -> E {
        match self.mode {
            IoMode::Execute => self.input[off],
            IoMode::Analyze => E::zero(),
        }
    }

    /// Store one element to the output tensor (discarded in `Analyze`).
    #[inline]
    pub fn store(&self, off: usize, v: E) {
        if self.mode == IoMode::Execute {
            self.output.write(off, v);
        }
    }

    /// Input length in elements.
    #[inline]
    pub fn input_len(&self) -> usize {
        self.input.len()
    }

    /// Output length in elements.
    #[inline]
    pub fn output_len(&self) -> usize {
        self.output.len()
    }
}

/// A block-structured GPU kernel.
pub trait BlockKernel<E: Element>: Sync {
    /// Kernel name for reports (e.g. `"OrthogonalDistinct"`).
    fn name(&self) -> &str;

    /// Launch geometry.
    fn launch(&self) -> Launch;

    /// Run one block: move data through `io` and report accesses to `acct`.
    fn run_block(&self, block: usize, io: &BlockIo<'_, E>, acct: &mut Accounting);

    /// Equivalence class of a block for sampled analysis: blocks in the
    /// same class must have identical transaction statistics. The default
    /// (one class) is only correct for kernels with fully uniform blocks.
    fn block_class(&self, _block: usize) -> u32 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU8;

    #[test]
    fn launch_math() {
        let l = Launch {
            grid_blocks: 10,
            threads_per_block: 96,
            smem_bytes_per_block: 0,
        };
        assert_eq!(l.warps_per_block(32), 3);
        assert_eq!(l.total_threads(), 960);
    }

    #[test]
    fn accounting_contiguous_access() {
        let mut a = Accounting::new();
        a.global_load_contiguous(0, 32, 4);
        a.global_store_contiguous(0, 32, 8);
        assert_eq!(a.stats.dram_load_tx, 1);
        assert_eq!(a.stats.dram_store_tx, 2);
    }

    #[test]
    fn accounting_smem_conflicts() {
        let mut a = Accounting::new();
        a.smem_access_strided(0, 32, 33, 4, true); // padded column
        assert_eq!(a.stats.smem_load_acc, 1);
        assert_eq!(a.stats.smem_conflict_replays, 0);
        a.smem_access_strided(0, 32, 32, 4, false); // unpadded column
        assert_eq!(a.stats.smem_store_acc, 1);
        assert_eq!(a.stats.smem_conflict_replays, 31);
    }

    #[test]
    fn accounting_lane_access() {
        let mut a = Accounting::new();
        a.global_access_lanes(&[0, 1, 2, 3], 8, true);
        assert_eq!(a.stats.dram_load_tx, 1);
        a.global_access_lanes(&[0, 100, 200], 8, false);
        assert!(a.stats.dram_store_tx >= 2);
    }

    #[test]
    fn shared_output_tracks_double_writes() {
        let mut buf = vec![0u32; 8];
        let tracker: Vec<AtomicU8> = (0..8).map(|_| AtomicU8::new(0)).collect();
        let out = SharedOutput::new(&mut buf, Some(&tracker));
        out.write(3, 7);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| out.write(3, 8)));
        assert!(res.is_err(), "double write must panic under tracking");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn shared_output_bounds_checked() {
        let mut buf = vec![0u32; 4];
        let out = SharedOutput::new(&mut buf, None);
        out.write(4, 1);
    }

    #[test]
    fn block_io_modes() {
        let input = vec![5u32, 6, 7];
        let mut outbuf = vec![0u32; 3];
        {
            let out = SharedOutput::new(&mut outbuf, None);
            let io = BlockIo::new(&input, &out, IoMode::Execute);
            assert_eq!(io.load(1), 6);
            io.store(2, 9);
            let io2 = BlockIo::new(&input, &out, IoMode::Analyze);
            assert_eq!(io2.load(1), 0);
            io2.store(0, 99); // discarded
        }
        assert_eq!(outbuf, vec![0, 0, 9]);
    }

    #[test]
    fn tex_load_counts_like_global() {
        let mut a = Accounting::new();
        a.tex_load_contiguous(0, 32); // 32 ints = 128B = 1 tx
        assert_eq!(a.stats.tex_load_tx, 1);
    }
}
