//! Global-memory coalescing analysis.
//!
//! A warp-wide global access touches some set of byte addresses (one per
//! active lane). The memory system services the access with one 128-byte
//! transaction per distinct 128-byte-aligned segment touched — this is the
//! accounting unit of the paper's Sec. IV-C analysis.

use crate::TRANSACTION_BYTES;

/// Transactions needed for an arbitrary warp access given the byte address
/// touched by each active lane.
pub fn transactions_for_lanes(byte_addrs: &[usize]) -> u64 {
    if byte_addrs.is_empty() {
        return 0;
    }
    // A warp has at most 32 lanes; a tiny sorted-dedup on the stack beats a
    // hash set here.
    let mut segs = [0usize; 64];
    let mut n = 0;
    for &a in byte_addrs {
        let s = a / TRANSACTION_BYTES;
        if !segs[..n].contains(&s) {
            segs[n] = s;
            n += 1;
        }
    }
    n as u64
}

/// Transactions for a warp access where `lanes` consecutive lanes read
/// consecutive elements of `elem_bytes` each, starting at `start_byte`.
///
/// This is the common fast path: a contiguous run of `lanes * elem_bytes`
/// bytes spans `ceil` over the 128-byte segments it straddles.
#[inline]
pub fn transactions_for_contiguous(start_byte: usize, lanes: usize, elem_bytes: usize) -> u64 {
    if lanes == 0 {
        return 0;
    }
    let first = start_byte / TRANSACTION_BYTES;
    let last = (start_byte + lanes * elem_bytes - 1) / TRANSACTION_BYTES;
    (last - first + 1) as u64
}

/// Transactions for a strided warp access: lane `l` touches
/// `start_byte + l * stride_bytes`, for `lanes` active lanes, each element
/// `elem_bytes` wide.
pub fn transactions_for_strided(
    start_byte: usize,
    lanes: usize,
    stride_bytes: usize,
    elem_bytes: usize,
) -> u64 {
    if lanes == 0 {
        return 0;
    }
    if stride_bytes == elem_bytes {
        return transactions_for_contiguous(start_byte, lanes, elem_bytes);
    }
    let mut count = 0u64;
    let mut prev_first = usize::MAX;
    let mut prev_last = usize::MAX;
    for l in 0..lanes {
        let b = start_byte + l * stride_bytes;
        let first = b / TRANSACTION_BYTES;
        let last = (b + elem_bytes - 1) / TRANSACTION_BYTES;
        // Strided addresses are monotonically increasing, so only compare
        // against the previous lane's segments.
        if first != prev_first && first != prev_last {
            count += 1;
        }
        if last != first {
            count += 1;
        }
        prev_first = first;
        prev_last = last;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_coalesced_float_warp_is_one_transaction() {
        // 32 floats = 128 bytes starting at an aligned address.
        assert_eq!(transactions_for_contiguous(0, 32, 4), 1);
        assert_eq!(transactions_for_contiguous(256, 32, 4), 1);
    }

    #[test]
    fn fully_coalesced_double_warp_is_two_transactions() {
        // "two transactions in case of double" (Sec. IV).
        assert_eq!(transactions_for_contiguous(0, 32, 8), 2);
    }

    #[test]
    fn misaligned_contiguous_access_spills_a_transaction() {
        // 32 floats starting 4 bytes past a segment boundary touch 2 segments.
        assert_eq!(transactions_for_contiguous(4, 32, 4), 2);
    }

    #[test]
    fn strided_access_is_fully_uncoalesced_at_large_stride() {
        // Each lane in its own segment: 32 transactions.
        assert_eq!(transactions_for_strided(0, 32, 1024, 8), 32);
    }

    #[test]
    fn strided_small_stride_coalesces_partially() {
        // stride 32 B with 8-byte elements: 4 lanes per 128-byte segment.
        assert_eq!(transactions_for_strided(0, 32, 32, 8), 8);
    }

    #[test]
    fn strided_matches_generic_lane_analysis() {
        for &(stride, eb) in &[
            (8usize, 8usize),
            (16, 8),
            (24, 8),
            (128, 4),
            (260, 4),
            (4, 4),
        ] {
            for &start in &[0usize, 4, 100, 124] {
                for lanes in [1usize, 7, 31, 32] {
                    let addrs: Vec<usize> = (0..lanes).map(|l| start + l * stride).collect();
                    // Generic path counts distinct segments of the first
                    // byte only; expand to cover elem width.
                    let mut expanded = Vec::new();
                    for &a in &addrs {
                        expanded.push(a);
                        expanded.push(a + eb - 1);
                    }
                    assert_eq!(
                        transactions_for_strided(start, lanes, stride, eb),
                        transactions_for_lanes(&expanded),
                        "stride {stride} eb {eb} start {start} lanes {lanes}"
                    );
                }
            }
        }
    }

    #[test]
    fn lanes_dedup_and_empty() {
        assert_eq!(transactions_for_lanes(&[]), 0);
        assert_eq!(transactions_for_lanes(&[0, 4, 8, 12]), 1);
        assert_eq!(transactions_for_lanes(&[0, 128, 256]), 3);
        assert_eq!(transactions_for_lanes(&[0, 0, 0]), 1);
    }

    #[test]
    fn zero_lanes() {
        assert_eq!(transactions_for_contiguous(0, 0, 8), 0);
        assert_eq!(transactions_for_strided(0, 0, 64, 8), 0);
    }

    #[test]
    fn paper_c2_formula_for_a_row() {
        // FVI-Match-Large: a row of size(i0) contiguous doubles needs
        // ceil(size(i0) * 8 / 128) transactions when aligned.
        for n0 in [16usize, 32, 48, 100] {
            let want = (n0 * 8).div_ceil(128) as u64;
            // sum over warps of the row
            let mut got = 0;
            let mut off = 0;
            while off < n0 {
                let lanes = (n0 - off).min(32);
                got += transactions_for_contiguous(off * 8, lanes, 8);
                off += lanes;
            }
            assert_eq!(got, want, "n0 = {n0}");
        }
    }
}
