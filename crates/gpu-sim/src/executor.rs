//! The block executor: runs a [`BlockKernel`] over its grid.
//!
//! Two modes:
//!
//! * **Execute** — every block runs, real elements move from the input
//!   buffer to the output buffer, and transaction statistics are summed
//!   over all blocks. Blocks are distributed over host worker threads
//!   (`std::thread::scope`), mirroring the GPU's block-level
//!   parallelism. Optionally
//!   verifies that blocks write disjoint output elements.
//! * **Analyze** — blocks are grouped into the kernel-declared equivalence
//!   classes; one representative per class runs (with data movement
//!   short-circuited) and its statistics are scaled by the class size.
//!   This is what makes the paper's 720-permutation sweeps tractable.

use crate::device::DeviceConfig;
use crate::kernel::{Accounting, BlockIo, BlockKernel, IoMode, Launch, SharedOutput};
use crate::stats::TransactionStats;
use std::sync::atomic::AtomicU8;
use ttlg_tensor::{parallel, Element};

/// Execution mode for [`Executor::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Run every block, moving real data.
    Execute {
        /// Verify that no output element is written twice (slower; for
        /// tests and debugging).
        check_disjoint_writes: bool,
    },
    /// Sampled analysis: representative block per class, no data movement.
    Analyze,
}

/// Result of a kernel run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Machine-wide transaction statistics (scaled to the full grid in
    /// `Analyze` mode).
    pub stats: TransactionStats,
    /// The launch geometry used.
    pub launch: Launch,
    /// Number of blocks actually executed on the host.
    pub blocks_executed: usize,
    /// Number of distinct block classes (Analyze mode only).
    pub classes: Option<usize>,
}

/// Errors the executor can report before running anything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaunchError {
    /// Requested more shared memory per block than one SM has.
    SharedMemExceeded {
        /// Bytes requested per block.
        requested: usize,
        /// Bytes available per SM.
        available: usize,
    },
    /// threads_per_block outside 1..=1024.
    BadBlockSize {
        /// The offending thread count.
        threads: usize,
    },
    /// Empty grid.
    EmptyGrid,
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::SharedMemExceeded {
                requested,
                available,
            } => {
                write!(
                    f,
                    "shared memory per block {requested} B exceeds SM capacity {available} B"
                )
            }
            LaunchError::BadBlockSize { threads } => {
                write!(f, "threads per block must be in 1..=1024, got {threads}")
            }
            LaunchError::EmptyGrid => write!(f, "kernel launched with an empty grid"),
        }
    }
}

impl std::error::Error for LaunchError {}

/// The grid-execution interface the planner programs against, extracted
/// from [`Executor`] so higher layers can drive a block kernel without
/// naming the concrete simulator type. Object-safe: the kernel comes in
/// as `&dyn BlockKernel<E>`, so one `GridExecutor` value can serve every
/// kernel of an element type.
///
/// Real (non-simulated) backends such as `ttlg-cpu` do **not** implement
/// this trait — they have no block grid to replay — which is exactly the
/// point of the extraction: the planner's GPU path is typed against this
/// trait, and everything outside it is backend-dispatched.
pub trait GridExecutor<E: Element> {
    /// Run a kernel over its grid (see [`Executor::run`]).
    fn run_grid(
        &self,
        kernel: &dyn BlockKernel<E>,
        input: &[E],
        output: &mut [E],
        mode: ExecMode,
    ) -> Result<RunOutcome, LaunchError>;

    /// Sampled analysis without data movement (see [`Executor::analyze`]).
    fn analyze_grid(&self, kernel: &dyn BlockKernel<E>) -> Result<RunOutcome, LaunchError>;
}

impl<E: Element> GridExecutor<E> for Executor {
    fn run_grid(
        &self,
        kernel: &dyn BlockKernel<E>,
        input: &[E],
        output: &mut [E],
        mode: ExecMode,
    ) -> Result<RunOutcome, LaunchError> {
        self.run(kernel, input, output, mode)
    }

    fn analyze_grid(&self, kernel: &dyn BlockKernel<E>) -> Result<RunOutcome, LaunchError> {
        self.analyze(kernel)
    }
}

/// Executes kernels against a device configuration.
#[derive(Debug, Clone)]
pub struct Executor {
    device: DeviceConfig,
}

impl Executor {
    /// Build an executor for the given device.
    pub fn new(device: DeviceConfig) -> Self {
        Executor { device }
    }

    /// The device this executor models.
    pub fn device(&self) -> &DeviceConfig {
        &self.device
    }

    fn validate(&self, launch: &Launch) -> Result<(), LaunchError> {
        if launch.grid_blocks == 0 {
            return Err(LaunchError::EmptyGrid);
        }
        if launch.threads_per_block == 0 || launch.threads_per_block > 1024 {
            return Err(LaunchError::BadBlockSize {
                threads: launch.threads_per_block,
            });
        }
        if launch.smem_bytes_per_block > self.device.smem_per_sm {
            return Err(LaunchError::SharedMemExceeded {
                requested: launch.smem_bytes_per_block,
                available: self.device.smem_per_sm,
            });
        }
        Ok(())
    }

    /// Run a kernel in `Execute` mode: moves `input` into `output`.
    pub fn run<E: Element, K: BlockKernel<E> + ?Sized>(
        &self,
        kernel: &K,
        input: &[E],
        output: &mut [E],
        mode: ExecMode,
    ) -> Result<RunOutcome, LaunchError> {
        let launch = kernel.launch();
        self.validate(&launch)?;
        match mode {
            ExecMode::Execute {
                check_disjoint_writes,
            } => {
                let tracker: Option<Vec<AtomicU8>> = if check_disjoint_writes {
                    Some((0..output.len()).map(|_| AtomicU8::new(0)).collect())
                } else {
                    None
                };
                let shared = SharedOutput::new(output, tracker.as_deref());
                let blocks = launch.grid_blocks;
                let stats = parallel::parallel_map_reduce(
                    blocks,
                    1.max(blocks / (parallel::default_threads() * 8)),
                    TransactionStats::default,
                    |mut acc, b| {
                        let io = BlockIo::new(input, &shared, IoMode::Execute);
                        let mut acct = Accounting::new();
                        kernel.run_block(b, &io, &mut acct);
                        acc.merge(&acct.stats);
                        acc
                    },
                    |mut a, b| {
                        a.merge(&b);
                        a
                    },
                );
                Ok(RunOutcome {
                    stats,
                    launch,
                    blocks_executed: blocks,
                    classes: None,
                })
            }
            ExecMode::Analyze => self.analyze(kernel),
        }
    }

    /// Run a kernel in `Analyze` mode (no data buffers needed).
    pub fn analyze<E: Element, K: BlockKernel<E> + ?Sized>(
        &self,
        kernel: &K,
    ) -> Result<RunOutcome, LaunchError> {
        let launch = kernel.launch();
        self.validate(&launch)?;
        // Group blocks by class: (class, count, representative block id).
        // Insertion order is kept so results are deterministic.
        let mut class_index: std::collections::HashMap<u32, usize> =
            std::collections::HashMap::new();
        let mut classes: Vec<(u32, u64, usize)> = Vec::new();
        for b in 0..launch.grid_blocks {
            let c = kernel.block_class(b);
            match class_index.get(&c) {
                Some(&i) => classes[i].1 += 1,
                None => {
                    class_index.insert(c, classes.len());
                    classes.push((c, 1, b));
                }
            }
        }
        let mut empty_out: [E; 0] = [];
        let shared = SharedOutput::new(&mut empty_out, None);
        let mut stats = TransactionStats::default();
        for &(_, count, rep) in &classes {
            let io = BlockIo::new(&[], &shared, IoMode::Analyze);
            let mut acct = Accounting::new();
            kernel.run_block(rep, &io, &mut acct);
            stats.merge(&acct.stats.scaled(count));
        }
        Ok(RunOutcome {
            stats,
            launch,
            blocks_executed: classes.len(),
            classes: Some(classes.len()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy kernel: block b copies elements [b*64, (b+1)*64) contiguously,
    /// one warp access per 32 elements.
    struct CopyKernel {
        n: usize,
    }

    impl BlockKernel<u32> for CopyKernel {
        fn name(&self) -> &str {
            "copy"
        }

        fn launch(&self) -> Launch {
            Launch {
                grid_blocks: self.n.div_ceil(64),
                threads_per_block: 64,
                smem_bytes_per_block: 0,
            }
        }

        fn run_block(&self, block: usize, io: &BlockIo<'_, u32>, acct: &mut Accounting) {
            let start = block * 64;
            let end = (start + 64).min(self.n);
            let mut w = start;
            while w < end {
                let lanes = (end - w).min(32);
                acct.global_load_contiguous(w, lanes, 4);
                acct.global_store_contiguous(w, lanes, 4);
                for off in w..w + lanes {
                    let v = io.load(off);
                    io.store(off, v);
                }
                acct.elements(lanes as u64);
                w += lanes;
            }
        }

        fn block_class(&self, block: usize) -> u32 {
            // last block may be partial
            u32::from((block + 1) * 64 > self.n)
        }
    }

    #[test]
    fn execute_copies_and_counts() {
        let n = 1000;
        let input: Vec<u32> = (0..n as u32).collect();
        let mut output = vec![0u32; n];
        let ex = Executor::new(DeviceConfig::test_tiny());
        let k = CopyKernel { n };
        let out = ex
            .run(
                &k,
                &input,
                &mut output,
                ExecMode::Execute {
                    check_disjoint_writes: true,
                },
            )
            .unwrap();
        assert_eq!(output, input);
        assert_eq!(out.stats.elements_moved, n as u64);
        // 1000 elements = 31 full warps + one 8-lane tail = 32 loads; last
        // partial access still 1 tx.
        assert_eq!(out.stats.dram_load_tx, out.stats.dram_store_tx);
        assert_eq!(out.stats.dram_load_tx, 32);
    }

    #[test]
    fn analyze_matches_execute_stats() {
        let n = 4096; // divides evenly: one class
        let input: Vec<u32> = (0..n as u32).collect();
        let mut output = vec![0u32; n];
        let ex = Executor::new(DeviceConfig::test_tiny());
        let k = CopyKernel { n };
        let exec = ex
            .run(
                &k,
                &input,
                &mut output,
                ExecMode::Execute {
                    check_disjoint_writes: false,
                },
            )
            .unwrap();
        let ana = ex.analyze(&k).unwrap();
        assert_eq!(exec.stats, ana.stats);
        assert_eq!(ana.classes, Some(1));
        assert!(ana.blocks_executed < exec.blocks_executed);
    }

    #[test]
    fn analyze_handles_partial_class() {
        let n = 1000; // 64 does not divide 1000: two classes
        let ex = Executor::new(DeviceConfig::test_tiny());
        let k = CopyKernel { n };
        let ana = ex.analyze(&k).unwrap();
        assert_eq!(ana.classes, Some(2));
        let input: Vec<u32> = (0..n as u32).collect();
        let mut output = vec![0u32; n];
        let exec = ex
            .run(
                &k,
                &input,
                &mut output,
                ExecMode::Execute {
                    check_disjoint_writes: false,
                },
            )
            .unwrap();
        assert_eq!(exec.stats, ana.stats);
    }

    #[test]
    fn grid_executor_trait_matches_inherent_methods() {
        let n = 1000;
        let input: Vec<u32> = (0..n as u32).collect();
        let mut output = vec![0u32; n];
        let ex = Executor::new(DeviceConfig::test_tiny());
        let k = CopyKernel { n };
        // Drive the simulator purely through the extracted interface.
        let dyn_ex: &dyn GridExecutor<u32> = &ex;
        let ran = dyn_ex
            .run_grid(
                &k,
                &input,
                &mut output,
                ExecMode::Execute {
                    check_disjoint_writes: true,
                },
            )
            .unwrap();
        assert_eq!(output, input);
        let ana = dyn_ex.analyze_grid(&k).unwrap();
        assert_eq!(ran.stats, ana.stats);
    }

    #[test]
    fn validates_launch() {
        let ex = Executor::new(DeviceConfig::test_tiny());
        struct Bad(Launch);
        impl BlockKernel<u32> for Bad {
            fn name(&self) -> &str {
                "bad"
            }
            fn launch(&self) -> Launch {
                self.0
            }
            fn run_block(&self, _: usize, _: &BlockIo<'_, u32>, _: &mut Accounting) {}
        }
        let e = ex.analyze(&Bad(Launch {
            grid_blocks: 0,
            threads_per_block: 32,
            smem_bytes_per_block: 0,
        }));
        assert_eq!(e.unwrap_err(), LaunchError::EmptyGrid);
        let e = ex.analyze(&Bad(Launch {
            grid_blocks: 1,
            threads_per_block: 2048,
            smem_bytes_per_block: 0,
        }));
        assert!(matches!(e.unwrap_err(), LaunchError::BadBlockSize { .. }));
        let e = ex.analyze(&Bad(Launch {
            grid_blocks: 1,
            threads_per_block: 32,
            smem_bytes_per_block: 1 << 30,
        }));
        assert!(matches!(
            e.unwrap_err(),
            LaunchError::SharedMemExceeded { .. }
        ));
    }

    #[test]
    fn launch_error_messages() {
        let e = LaunchError::SharedMemExceeded {
            requested: 100,
            available: 50,
        };
        assert!(e.to_string().contains("100"));
        assert!(!LaunchError::EmptyGrid.to_string().is_empty());
    }
}
