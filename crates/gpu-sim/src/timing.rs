//! The timing model: transaction counts + grid geometry -> nanoseconds.
//!
//! GPUs overlap their pipelines well, so the model takes the *max* of the
//! three throughput-limited components (DRAM, shared-memory/texture pipe,
//! special-function pipe) plus a small coupling term, scaled by
//! memory-level-parallelism (occupancy) and wave-quantization (tail)
//! effects, plus the fixed kernel-launch overhead.
//!
//! The paper reports *bandwidth usage* `2 * volume * 8 / time`; helpers
//! here compute that metric so benchmark tables read like the paper's
//! figures.

use crate::device::DeviceConfig;
use crate::kernel::Launch;
use crate::stats::TransactionStats;
use crate::TRANSACTION_BYTES;

/// Decomposed timing for one kernel invocation.
#[derive(Debug, Clone, Copy)]
pub struct KernelTiming {
    /// End-to-end kernel time, nanoseconds (includes launch overhead).
    pub time_ns: f64,
    /// DRAM component (before occupancy scaling), ns.
    pub dram_ns: f64,
    /// Shared-memory + texture pipe component, ns.
    pub smem_ns: f64,
    /// Special/index instruction component, ns.
    pub instr_ns: f64,
    /// Kernel launch overhead charged, ns.
    pub launch_ns: f64,
    /// Memory-level-parallelism factor applied (1.0 = fully saturated).
    pub mlp: f64,
    /// Tail-effect multiplier applied (1.0 = perfectly balanced waves).
    pub tail: f64,
}

impl KernelTiming {
    /// The paper's bandwidth metric for a transposition of `volume`
    /// elements of `elem_bytes` each: `2 * volume * elem_bytes / time`,
    /// in GB/s (bytes per nanosecond).
    pub fn bandwidth_gbps(&self, volume: usize, elem_bytes: usize) -> f64 {
        bandwidth_gbps(volume, elem_bytes, self.time_ns)
    }
}

/// The paper's "Bandwidth Usage (GBps)" metric.
#[inline]
pub fn bandwidth_gbps(volume: usize, elem_bytes: usize, time_ns: f64) -> f64 {
    (2.0 * volume as f64 * elem_bytes as f64) / time_ns
}

/// Converts run statistics to time on a given device.
#[derive(Debug, Clone)]
pub struct TimingModel {
    device: DeviceConfig,
    /// Weight of the non-dominant pipes added on top of the dominant one
    /// (0 = perfect overlap, 1 = fully serial).
    coupling: f64,
    /// Fraction of the tail-effect imbalance charged to the runtime.
    tail_alpha: f64,
}

impl TimingModel {
    /// Standard model for a device.
    pub fn new(device: DeviceConfig) -> Self {
        TimingModel {
            device,
            coupling: 0.12,
            tail_alpha: 0.45,
        }
    }

    /// The device being modelled.
    pub fn device(&self) -> &DeviceConfig {
        &self.device
    }

    /// Time a kernel described by `stats` + `launch`.
    pub fn time(&self, stats: &TransactionStats, launch: &Launch) -> KernelTiming {
        let d = &self.device;
        let resident = d.max_resident_blocks(launch.threads_per_block, launch.smem_bytes_per_block);
        let active_blocks = launch.grid_blocks.min(resident);
        let warps_per_block = launch.warps_per_block(d.warp_size);
        let active_warps = (active_blocks * warps_per_block) as f64;

        // Memory-level parallelism: fewer in-flight warps than needed to
        // saturate DRAM proportionally reduces achieved bandwidth.
        let mlp = (active_warps / d.warps_to_saturate).clamp(0.02, 1.0);

        // DRAM: useful traffic plus texture misses.
        let tex_miss_tx = stats.tex_load_tx as f64 * (1.0 - d.tex_hit_rate);
        let dram_bytes = stats.dram_bytes() as f64 + tex_miss_tx * TRANSACTION_BYTES as f64;
        let dram_ns = dram_bytes / (d.dram_peak_gbps * d.dram_efficiency);

        // Shared-memory pipe: one warp access per SM per cycle, replays
        // included.
        let sms_used = d.num_sms.min(launch.grid_blocks).max(1) as f64;
        let smem_ns = stats.smem_total_acc() as f64 / sms_used * d.cycle_ns();

        // Texture pipe: served by the dedicated texture units (16 per SM
        // on Kepler) — cache hits are cheap, misses were already charged
        // to DRAM above.
        let tex_ns = stats.tex_load_tx as f64 / (16.0 * sms_used) * d.cycle_ns();

        // Special-function (mod/div -> MUFU) and index instruction pipes.
        let special_ns = stats.special_instr as f64 / (d.sfu_per_sm * sms_used) * d.cycle_ns();
        let index_ns = stats.index_instr as f64 / (128.0 * sms_used) * d.cycle_ns();
        let instr_ns = special_ns + index_ns + tex_ns;

        // Combine pipes: dominant + coupling * rest, occupancy-scaled.
        let maxp = dram_ns.max(smem_ns).max(instr_ns);
        let total_pipes = dram_ns + smem_ns + instr_ns;
        let exec_ns = (maxp + self.coupling * (total_pipes - maxp)) / mlp;

        // Tail effect: the last wave of blocks underfills the machine.
        let tail = if launch.grid_blocks > resident {
            let waves_frac = launch.grid_blocks as f64 / resident as f64;
            let waves_int = waves_frac.ceil();
            1.0 + self.tail_alpha * (waves_int / waves_frac - 1.0)
        } else {
            1.0
        };

        let time_ns = d.launch_overhead_ns + exec_ns * tail;
        KernelTiming {
            time_ns,
            dram_ns,
            smem_ns,
            instr_ns,
            launch_ns: d.launch_overhead_ns,
            mlp,
            tail,
        }
    }

    /// Plan-construction overhead (buffer allocation etc.) in ns — charged
    /// once per plan in the single-use experiments.
    pub fn plan_overhead_ns(&self) -> f64 {
        self.device.plan_alloc_overhead_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ideal_stats(volume: usize, elem_bytes: usize) -> TransactionStats {
        // Perfectly coalesced transposition: every element crosses DRAM
        // once in and once out, 128-byte transactions full.
        let tx = (volume * elem_bytes).div_ceil(TRANSACTION_BYTES) as u64;
        TransactionStats {
            dram_load_tx: tx,
            dram_store_tx: tx,
            smem_load_acc: (volume / 32) as u64,
            smem_store_acc: (volume / 32) as u64,
            elements_moved: volume as u64,
            ..Default::default()
        }
    }

    fn big_launch() -> Launch {
        Launch {
            grid_blocks: 4096,
            threads_per_block: 256,
            smem_bytes_per_block: 32 * 33 * 8,
        }
    }

    #[test]
    fn ideal_large_transpose_lands_near_paper_plateau() {
        // 16^6 doubles (the Fig. 6 workload) with perfect coalescing should
        // land in the paper's observed 180-235 GB/s plateau.
        let model = TimingModel::new(DeviceConfig::k40c());
        let vol = 16usize.pow(6);
        let t = model.time(&ideal_stats(vol, 8), &big_launch());
        let bw = t.bandwidth_gbps(vol, 8);
        assert!((150.0..260.0).contains(&bw), "got {bw} GB/s");
    }

    #[test]
    fn uncoalesced_kernel_is_much_slower() {
        let model = TimingModel::new(DeviceConfig::k40c());
        let vol = 16usize.pow(6);
        let good = ideal_stats(vol, 8);
        // naive: one transaction per element on the store side
        let mut bad = good;
        bad.dram_store_tx = vol as u64;
        let tg = model.time(&good, &big_launch());
        let tb = model.time(&bad, &big_launch());
        assert!(
            tb.time_ns > 5.0 * tg.time_ns,
            "bad {} vs good {}",
            tb.time_ns,
            tg.time_ns
        );
    }

    #[test]
    fn bank_conflicts_can_dominate() {
        let model = TimingModel::new(DeviceConfig::k40c());
        let vol = 16usize.pow(6);
        let good = ideal_stats(vol, 8);
        let mut conflicted = good;
        // 32-way conflicts on every smem access
        conflicted.smem_conflict_replays =
            31 * (conflicted.smem_load_acc + conflicted.smem_store_acc);
        let tg = model.time(&good, &big_launch());
        let tc = model.time(&conflicted, &big_launch());
        assert!(
            tc.time_ns > 1.5 * tg.time_ns,
            "conflicted {} vs good {}",
            tc.time_ns,
            tg.time_ns
        );
    }

    #[test]
    fn small_volume_bandwidth_droops() {
        // Fig. 13: small tensors achieve low bandwidth (launch overhead +
        // under-occupancy dominate).
        let model = TimingModel::new(DeviceConfig::k40c());
        let small_vol = 15usize.pow(4); // ~50K elements
        let stats = ideal_stats(small_vol, 8);
        let launch = Launch {
            grid_blocks: 4,
            threads_per_block: 256,
            smem_bytes_per_block: 0,
        };
        let t = model.time(&stats, &launch);
        let bw = t.bandwidth_gbps(small_vol, 8);
        assert!(bw < 80.0, "small volume should droop, got {bw}");
    }

    #[test]
    fn special_instructions_add_cost() {
        let model = TimingModel::new(DeviceConfig::k40c());
        let vol = 1 << 22;
        let mut stats = ideal_stats(vol, 8);
        let base = model.time(&stats, &big_launch()).time_ns;
        stats.special_instr = (vol as u64) * 12; // mod/div per element
        let heavy = model.time(&stats, &big_launch()).time_ns;
        assert!(heavy > base, "mod/div-heavy kernel must be slower");
    }

    #[test]
    fn tail_effect_quantizes_waves() {
        let model = TimingModel::new(DeviceConfig::k40c());
        let vol = 1 << 22;
        let stats = ideal_stats(vol, 8);
        let resident = model.device().max_resident_blocks(256, 0);
        // One full wave vs one wave + 1 block.
        let l1 = Launch {
            grid_blocks: resident,
            threads_per_block: 256,
            smem_bytes_per_block: 0,
        };
        let l2 = Launch {
            grid_blocks: resident + 1,
            threads_per_block: 256,
            smem_bytes_per_block: 0,
        };
        let t1 = model.time(&stats, &l1);
        let t2 = model.time(&stats, &l2);
        assert!(t2.tail > t1.tail);
        assert!(t2.time_ns > t1.time_ns);
    }

    #[test]
    fn bandwidth_formula_matches_paper() {
        // 1 GB of doubles moved in 10 ms -> 2*vol*8/time.
        let vol = 128 << 20; // elements
        let t = 10e6; // ns
        let bw = bandwidth_gbps(vol, 8, t);
        assert!((bw - 2.0 * (128u64 << 20) as f64 * 8.0 / 10e6).abs() < 1e-9);
    }

    #[test]
    fn timing_is_deterministic() {
        let model = TimingModel::new(DeviceConfig::k40c());
        let stats = ideal_stats(1 << 20, 8);
        let a = model.time(&stats, &big_launch()).time_ns;
        let b = model.time(&stats, &big_launch()).time_ns;
        assert_eq!(a, b);
    }

    #[test]
    fn plan_overhead_positive() {
        let model = TimingModel::new(DeviceConfig::k40c());
        assert!(model.plan_overhead_ns() > 0.0);
    }
}
