//! Device configurations.
//!
//! The calibration targets the paper's Table III machine: a Tesla K40c
//! (15 Kepler SMs, 745 MHz, 12 GB GDDR5, ECC off). Absolute constants are
//! calibrated so a perfectly coalesced transposition of a large tensor
//! lands near the ~200 GB/s "bandwidth usage" plateau the paper reports;
//! all comparative *shapes* come from the transaction model, not from these
//! constants.

/// Static description of the simulated GPU.
#[derive(Debug, Clone)]
pub struct DeviceConfig {
    /// Marketing name, for reports.
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// Warp size (32 on every generation considered).
    pub warp_size: usize,
    /// Shared memory available per SM, bytes (K40c: 48 KiB).
    pub smem_per_sm: usize,
    /// Maximum resident threads per SM (Kepler: 2048).
    pub max_threads_per_sm: usize,
    /// Maximum resident thread blocks per SM (Kepler: 16).
    pub max_blocks_per_sm: usize,
    /// Core clock in GHz (K40c boost: 0.745).
    pub clock_ghz: f64,
    /// Peak DRAM bandwidth, GB/s (K40c GDDR5, ECC off: 288).
    pub dram_peak_gbps: f64,
    /// Fraction of peak DRAM bandwidth achievable by a fully coalesced
    /// streaming kernel (calibrated: the paper's best kernels plateau near
    /// 200-230 GB/s of *useful* traffic on a 288 GB/s part).
    pub dram_efficiency: f64,
    /// Kernel launch overhead in nanoseconds (driver + dispatch).
    pub launch_overhead_ns: f64,
    /// Overhead charged per plan construction for buffer allocation
    /// (the paper: "plan overhead ... includes memory allocation times").
    pub plan_alloc_overhead_ns: f64,
    /// Cost model for one special (mod/div -> MUFU) instruction: per-SM
    /// SFU throughput, ops per cycle (Kepler: 32 SFUs per SM).
    pub sfu_per_sm: f64,
    /// Number of concurrently executing warps needed machine-wide to
    /// saturate DRAM (memory-level parallelism requirement).
    pub warps_to_saturate: f64,
    /// Texture cache hit rate for the offset arrays (paper: > 99%).
    pub tex_hit_rate: f64,
}

impl DeviceConfig {
    /// The paper's evaluation machine (Table III): Tesla K40c.
    pub fn k40c() -> Self {
        DeviceConfig {
            name: "Tesla K40c (simulated)",
            num_sms: 15,
            warp_size: 32,
            smem_per_sm: 48 * 1024,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 16,
            clock_ghz: 0.745,
            dram_peak_gbps: 288.0,
            dram_efficiency: 0.80,
            launch_overhead_ns: 6_000.0,
            plan_alloc_overhead_ns: 180_000.0,
            sfu_per_sm: 32.0,
            warps_to_saturate: 420.0,
            tex_hit_rate: 0.993,
        }
    }

    /// GeForce GTX Titan X (Maxwell, 2015): 24 SMs at 1.0 GHz, 336 GB/s —
    /// one of the architectures TTC targeted. Shared memory per SM is
    /// larger (96 KiB) but the per-block limit stays at 48 KiB, which is
    /// what the planner budgets against.
    pub fn titan_x_maxwell() -> Self {
        DeviceConfig {
            name: "GTX Titan X / Maxwell (simulated)",
            num_sms: 24,
            warp_size: 32,
            smem_per_sm: 48 * 1024,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            clock_ghz: 1.0,
            dram_peak_gbps: 336.0,
            dram_efficiency: 0.82,
            launch_overhead_ns: 5_000.0,
            plan_alloc_overhead_ns: 150_000.0,
            sfu_per_sm: 32.0,
            warps_to_saturate: 500.0,
            tex_hit_rate: 0.993,
        }
    }

    /// Tesla P100 (Pascal, 2016): 56 SMs at 1.3 GHz, 732 GB/s HBM2.
    pub fn p100_pascal() -> Self {
        DeviceConfig {
            name: "Tesla P100 / Pascal (simulated)",
            num_sms: 56,
            warp_size: 32,
            smem_per_sm: 64 * 1024,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            clock_ghz: 1.328,
            dram_peak_gbps: 732.0,
            dram_efficiency: 0.78,
            launch_overhead_ns: 4_000.0,
            plan_alloc_overhead_ns: 120_000.0,
            sfu_per_sm: 64.0,
            warps_to_saturate: 900.0,
            tex_hit_rate: 0.995,
        }
    }

    /// A deliberately tiny device for unit tests (few SMs so occupancy and
    /// tail effects show up at small problem sizes).
    pub fn test_tiny() -> Self {
        DeviceConfig {
            name: "test-tiny",
            num_sms: 2,
            warp_size: 32,
            smem_per_sm: 16 * 1024,
            max_threads_per_sm: 512,
            max_blocks_per_sm: 4,
            clock_ghz: 1.0,
            dram_peak_gbps: 10.0,
            dram_efficiency: 0.8,
            launch_overhead_ns: 1_000.0,
            plan_alloc_overhead_ns: 10_000.0,
            sfu_per_sm: 32.0,
            warps_to_saturate: 16.0,
            tex_hit_rate: 0.99,
        }
    }

    /// Clock period in nanoseconds.
    #[inline]
    pub fn cycle_ns(&self) -> f64 {
        1.0 / self.clock_ghz
    }

    /// How many blocks of the given footprint can be resident on one SM.
    pub fn resident_blocks_per_sm(&self, threads_per_block: usize, smem_per_block: usize) -> usize {
        let by_threads = if threads_per_block == 0 {
            self.max_blocks_per_sm
        } else {
            self.max_threads_per_sm / threads_per_block.max(1)
        };
        let by_smem = self
            .smem_per_sm
            .checked_div(smem_per_block)
            .unwrap_or(self.max_blocks_per_sm);
        self.max_blocks_per_sm.min(by_threads).min(by_smem).max(1)
    }

    /// Machine-wide cap on concurrently resident blocks.
    pub fn max_resident_blocks(&self, threads_per_block: usize, smem_per_block: usize) -> usize {
        self.num_sms * self.resident_blocks_per_sm(threads_per_block, smem_per_block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k40c_matches_table_iii() {
        let d = DeviceConfig::k40c();
        assert_eq!(d.num_sms, 15);
        assert_eq!(d.warp_size, 32);
        assert_eq!(d.smem_per_sm, 48 * 1024);
        assert!((d.clock_ghz - 0.745).abs() < 1e-9);
        assert!((d.dram_peak_gbps - 288.0).abs() < 1e-9);
    }

    #[test]
    fn residency_limited_by_smem() {
        let d = DeviceConfig::k40c();
        // 32*33 doubles = 8448 B per block -> 48K/8448 = 5 blocks per SM.
        let r = d.resident_blocks_per_sm(256, 32 * 33 * 8);
        assert_eq!(r, 5);
    }

    #[test]
    fn residency_limited_by_threads() {
        let d = DeviceConfig::k40c();
        assert_eq!(d.resident_blocks_per_sm(1024, 0), 2);
        assert_eq!(d.resident_blocks_per_sm(128, 0), 16); // capped by max blocks
    }

    #[test]
    fn residency_never_zero() {
        let d = DeviceConfig::k40c();
        // Oversized block still "runs" one at a time.
        assert_eq!(d.resident_blocks_per_sm(4096, d.smem_per_sm * 2), 1);
    }

    #[test]
    fn machine_wide_residency() {
        let d = DeviceConfig::k40c();
        assert_eq!(d.max_resident_blocks(256, 32 * 33 * 8), 15 * 5);
    }

    #[test]
    fn cycle_time() {
        let d = DeviceConfig::test_tiny();
        assert!((d.cycle_ns() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn generational_presets_scale_up() {
        let kepler = DeviceConfig::k40c();
        let maxwell = DeviceConfig::titan_x_maxwell();
        let pascal = DeviceConfig::p100_pascal();
        assert!(maxwell.dram_peak_gbps > kepler.dram_peak_gbps);
        assert!(pascal.dram_peak_gbps > maxwell.dram_peak_gbps);
        assert!(pascal.num_sms > maxwell.num_sms);
    }
}
