//! Shared-memory bank-conflict model.
//!
//! Shared memory is divided into 32 banks of 4-byte words; successive words
//! map to successive banks. A warp access in which `d` lanes hit *different
//! words in the same bank* is serialized `d`-fold ("conflict degree `d`").
//! Lanes reading the *same* word broadcast with no penalty. The 32x33
//! padded buffer of the paper exists precisely to keep the write-out column
//! accesses conflict-free; this model lets tests demonstrate that.

use crate::{SMEM_BANKS, SMEM_WORD_BYTES};

/// Conflict degree of a warp access given each active lane's shared-memory
/// *byte* address: the maximum, over banks, of the number of distinct words
/// accessed in that bank. Degree 1 means conflict-free.
pub fn conflict_degree(byte_addrs: &[usize]) -> u64 {
    if byte_addrs.is_empty() {
        return 0;
    }
    // words per bank for a warp: tiny arrays on the stack.
    let mut words: [[usize; 32]; SMEM_BANKS] = [[0; 32]; SMEM_BANKS];
    let mut counts = [0usize; SMEM_BANKS];
    for &a in byte_addrs {
        let word = a / SMEM_WORD_BYTES;
        let bank = word % SMEM_BANKS;
        let c = counts[bank];
        if !words[bank][..c].contains(&word) {
            words[bank][c] = word;
            counts[bank] = c + 1;
        }
    }
    counts.iter().copied().max().unwrap_or(0).max(1) as u64
}

/// Conflict degree of a warp access under a configurable bank word size
/// (Kepler exposes `cudaSharedMemBankSizeEightByte`, which TTLG relies on
/// for conflict-free double-precision column accesses through the 32x33
/// buffer). `bank_word_bytes` is 4 or 8.
pub fn conflict_degree_with_banks(byte_addrs: &[usize], bank_word_bytes: usize) -> u64 {
    if byte_addrs.is_empty() {
        return 0;
    }
    let mut words: [[usize; 32]; SMEM_BANKS] = [[0; 32]; SMEM_BANKS];
    let mut counts = [0usize; SMEM_BANKS];
    for &a in byte_addrs {
        let word = a / bank_word_bytes;
        let bank = word % SMEM_BANKS;
        let c = counts[bank];
        if !words[bank][..c].contains(&word) {
            words[bank][c] = word;
            counts[bank] = c + 1;
        }
    }
    counts.iter().copied().max().unwrap_or(0).max(1) as u64
}

/// Conflict degree for a strided warp access over *element* indices into a
/// shared buffer: lane `l` touches element `start + l * stride`, each
/// element `elem_bytes` wide. The bank word size follows the element size
/// (8-byte bank mode for doubles, 4-byte otherwise), matching how TTLG
/// configures the hardware.
pub fn conflict_degree_strided(
    start_elem: usize,
    lanes: usize,
    stride_elems: usize,
    elem_bytes: usize,
) -> u64 {
    if lanes == 0 {
        return 0;
    }
    let mut addrs = [0usize; 32];
    let lanes = lanes.min(32);
    for (l, slot) in addrs[..lanes].iter_mut().enumerate() {
        *slot = (start_elem + l * stride_elems) * elem_bytes;
    }
    conflict_degree_with_banks(&addrs[..lanes], bank_word_for_elem(elem_bytes))
}

/// Bank word size used for an element width: 8-byte banks for 8-byte
/// elements, 4-byte banks otherwise.
#[inline]
pub fn bank_word_for_elem(elem_bytes: usize) -> usize {
    if elem_bytes >= 8 {
        8
    } else {
        SMEM_WORD_BYTES
    }
}

/// A simulated shared-memory buffer for one thread block: flat storage of
/// `E` plus the conflict accounting hooks. Kernels index it in *elements*.
#[derive(Debug)]
pub struct SmemSim<E> {
    data: Vec<E>,
}

impl<E: ttlg_tensor::Element> SmemSim<E> {
    /// Allocate a buffer of `elems` elements (the executor checks the byte
    /// footprint against the device's per-SM capacity at launch).
    pub fn new(elems: usize) -> Self {
        SmemSim {
            data: vec![E::zero(); elems],
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read element `i`.
    #[inline]
    pub fn read(&self, i: usize) -> E {
        self.data[i]
    }

    /// Write element `i`.
    #[inline]
    pub fn write(&mut self, i: usize, v: E) {
        self.data[i] = v;
    }

    /// Reset contents to zero (reused across phases within a block).
    pub fn clear(&mut self) {
        self.data.iter_mut().for_each(|e| *e = E::zero());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_access_is_conflict_free() {
        // 32 consecutive 4-byte words: each lane its own bank.
        let addrs: Vec<usize> = (0..32).map(|l| l * 4).collect();
        assert_eq!(conflict_degree(&addrs), 1);
    }

    #[test]
    fn unpadded_column_access_is_32_way_conflict() {
        // Column of a 32x32 float buffer: lane l touches word l*32 -> all
        // in bank 0. This is the paper's "severe slowdown" case.
        assert_eq!(conflict_degree_strided(0, 32, 32, 4), 32);
    }

    #[test]
    fn padded_column_access_is_conflict_free() {
        // Column of a 32x33 float buffer: lane l touches word l*33 ->
        // staggered over all banks. The padding trick.
        assert_eq!(conflict_degree_strided(0, 32, 33, 4), 1);
    }

    #[test]
    fn broadcast_is_free() {
        let addrs = vec![64usize; 32];
        assert_eq!(conflict_degree(&addrs), 1);
    }

    #[test]
    fn partial_warp() {
        assert_eq!(conflict_degree_strided(0, 16, 32, 4), 16);
        assert_eq!(conflict_degree_strided(5, 1, 32, 4), 1);
        assert_eq!(conflict_degree_strided(0, 0, 32, 4), 0);
    }

    #[test]
    fn two_way_conflict() {
        // stride 16 words: lanes 0 and 16 share bank 0 on different words...
        // lane l -> word 16l, bank (16l) % 32: degree 2.
        assert_eq!(conflict_degree_strided(0, 32, 16, 4), 16);
        // stride 2 words: lanes l and l+16 share a bank -> degree 2.
        assert_eq!(conflict_degree_strided(0, 32, 2, 4), 2);
    }

    #[test]
    fn fvi_match_small_padding_example() {
        // Paper Fig. 4: N0 = 8 pencils; pad chosen so "element 0 in row 1
        // of the 2D view maps to memory bank N0": row length must be
        // congruent to N0 mod 32. With b = 4, N0 = 8: bN0 + pad = 40 words
        // (pad = 8). Write-out gathers lane l -> word (l % 8) + (l / 8)*40,
        // so row r covers banks 8r..8r+7 — disjoint, conflict-free.
        let addrs: Vec<usize> = (0..32).map(|l| ((l % 8) + (l / 8) * 40) * 4).collect();
        assert_eq!(conflict_degree(&addrs), 1);
        // Without padding (row length 32), degree is 4 (4 rows collide).
        let bad: Vec<usize> = (0..32).map(|l| ((l % 8) + (l / 8) * 32) * 4).collect();
        assert_eq!(conflict_degree(&bad), 4);
    }

    #[test]
    fn padded_column_access_is_conflict_free_for_doubles() {
        // 32x33 doubles, column access, 8-byte bank mode: stride 33
        // elements -> bank l*33 % 32 = l: conflict-free.
        assert_eq!(conflict_degree_strided(0, 32, 33, 8), 1);
        // unpadded doubles column: all one bank.
        assert_eq!(conflict_degree_strided(0, 32, 32, 8), 32);
    }

    #[test]
    fn bank_word_selection() {
        assert_eq!(bank_word_for_elem(4), 4);
        assert_eq!(bank_word_for_elem(8), 8);
    }

    #[test]
    fn smem_sim_read_write_clear() {
        let mut s: SmemSim<u32> = SmemSim::new(16);
        assert_eq!(s.len(), 16);
        assert!(!s.is_empty());
        s.write(3, 77);
        assert_eq!(s.read(3), 77);
        s.clear();
        assert_eq!(s.read(3), 0);
    }
}
