//! An nvprof-style profiler for simulated kernels.
//!
//! The paper's methodology leans on exactly these counters ("cache hit
//! rates for the offset arrays are generally greater than 99%", Table I's
//! per-memory transaction budgets, warp-efficiency arguments). The
//! profiler runs a kernel in sampled-analysis mode and derives the
//! metrics a CUDA developer would read off `nvprof`:
//!
//! * achieved vs minimal DRAM transactions (global load/store efficiency),
//! * shared-memory replay rate (bank-conflict pressure),
//! * texture traffic and modeled hit behaviour,
//! * special/index instruction mix,
//! * occupancy-limited parallelism and the timing decomposition.

use crate::device::DeviceConfig;
use crate::executor::{Executor, LaunchError};
use crate::kernel::BlockKernel;
use crate::stats::TransactionStats;
use crate::timing::{KernelTiming, TimingModel};
use ttlg_tensor::Element;

/// A profiled kernel run.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Kernel name.
    pub kernel: String,
    /// Raw counters.
    pub stats: TransactionStats,
    /// Timing decomposition.
    pub timing: KernelTiming,
    /// Grid geometry.
    pub grid_blocks: usize,
    /// Threads per block.
    pub threads_per_block: usize,
    /// Shared memory per block, bytes.
    pub smem_bytes_per_block: usize,
    /// Elements the kernel declared moved.
    pub elements: u64,
    /// Element width used for efficiency metrics.
    pub elem_bytes: usize,
}

impl ProfileReport {
    /// Minimal DRAM transactions to move `elements` once in and once out.
    pub fn minimal_dram_tx(&self) -> u64 {
        self.stats.minimal_dram_tx(self.elem_bytes)
    }

    /// Global-memory efficiency: minimal transactions / achieved
    /// transactions (1.0 = perfectly coalesced and aligned).
    pub fn dram_efficiency(&self) -> f64 {
        self.stats.dram_efficiency(self.elem_bytes)
    }

    /// Shared-memory replay rate: conflict replays per access (0 =
    /// conflict-free).
    pub fn smem_replay_rate(&self) -> f64 {
        self.stats.smem_replay_rate()
    }

    /// Special (mod/div) instructions per element moved.
    pub fn special_per_element(&self) -> f64 {
        if self.elements == 0 {
            return 0.0;
        }
        self.stats.special_instr as f64 / self.elements as f64
    }

    /// The dominant pipe ("dram", "smem" or "instr").
    pub fn bottleneck(&self) -> &'static str {
        let t = &self.timing;
        if t.dram_ns >= t.smem_ns && t.dram_ns >= t.instr_ns {
            "dram"
        } else if t.smem_ns >= t.instr_ns {
            "smem"
        } else {
            "instr"
        }
    }

    /// Render like a profiler summary.
    pub fn render(&self) -> String {
        let mut s = String::new();
        use std::fmt::Write as _;
        writeln!(s, "== profile: {} ==", self.kernel).unwrap();
        writeln!(
            s,
            "grid {} x {} threads, {} B smem/block",
            self.grid_blocks, self.threads_per_block, self.smem_bytes_per_block
        )
        .unwrap();
        writeln!(
            s,
            "dram: {} ld + {} st tx ({} B), efficiency {:.1}%",
            self.stats.dram_load_tx,
            self.stats.dram_store_tx,
            self.stats.dram_bytes(),
            self.dram_efficiency() * 100.0
        )
        .unwrap();
        writeln!(
            s,
            "smem: {} ld + {} st accesses, replay rate {:.2}",
            self.stats.smem_load_acc,
            self.stats.smem_store_acc,
            self.smem_replay_rate()
        )
        .unwrap();
        writeln!(s, "tex : {} tx", self.stats.tex_load_tx).unwrap();
        writeln!(
            s,
            "instr: {} special ({:.2}/elem), {} index",
            self.stats.special_instr,
            self.special_per_element(),
            self.stats.index_instr
        )
        .unwrap();
        writeln!(
            s,
            "time: {:.2} us (dram {:.2} / smem {:.2} / instr {:.2}; mlp {:.2}, tail {:.2}) -> bottleneck: {}",
            self.timing.time_ns / 1e3,
            self.timing.dram_ns / 1e3,
            self.timing.smem_ns / 1e3,
            self.timing.instr_ns / 1e3,
            self.timing.mlp,
            self.timing.tail,
            self.bottleneck()
        )
        .unwrap();
        s
    }
}

/// Profiles kernels on one device.
pub struct Profiler {
    executor: Executor,
    timing: TimingModel,
}

impl Profiler {
    /// Build for a device.
    pub fn new(device: DeviceConfig) -> Self {
        Profiler {
            executor: Executor::new(device.clone()),
            timing: TimingModel::new(device),
        }
    }

    /// Profile a kernel (sampled analysis; no data movement).
    pub fn profile<E: Element, K: BlockKernel<E> + ?Sized>(
        &self,
        kernel: &K,
    ) -> Result<ProfileReport, LaunchError> {
        let outcome = self.executor.analyze(kernel)?;
        let timing = self.timing.time(&outcome.stats, &outcome.launch);
        Ok(ProfileReport {
            kernel: kernel.name().to_string(),
            stats: outcome.stats,
            timing,
            grid_blocks: outcome.launch.grid_blocks,
            threads_per_block: outcome.launch.threads_per_block,
            smem_bytes_per_block: outcome.launch.smem_bytes_per_block,
            elements: outcome.stats.elements_moved,
            elem_bytes: E::BYTES,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{Accounting, BlockIo, Launch};

    /// A toy kernel with known counters.
    struct Toy;

    impl BlockKernel<f64> for Toy {
        fn name(&self) -> &str {
            "toy"
        }
        fn launch(&self) -> Launch {
            Launch {
                grid_blocks: 4,
                threads_per_block: 64,
                smem_bytes_per_block: 256,
            }
        }
        fn run_block(&self, _b: usize, _io: &BlockIo<'_, f64>, acct: &mut Accounting) {
            acct.global_load_contiguous(0, 32, 8);
            acct.global_store_contiguous(0, 32, 8);
            acct.smem_access_strided(0, 32, 1, 8, false);
            acct.smem_access_strided(0, 32, 32, 8, true); // 32-way conflict
            acct.special_instr(64);
            acct.elements(32);
        }
    }

    #[test]
    fn profile_derives_expected_metrics() {
        let p = Profiler::new(DeviceConfig::k40c());
        let r = p.profile::<f64, _>(&Toy).unwrap();
        assert_eq!(r.elements, 4 * 32);
        // 2 tx per 32-double access, 4 blocks, both directions.
        assert_eq!(r.stats.dram_total_tx(), 16);
        assert_eq!(r.minimal_dram_tx(), 16);
        assert!((r.dram_efficiency() - 1.0).abs() < 1e-12);
        // one conflict-free store + one 32-way-conflicted load per block.
        assert!((r.smem_replay_rate() - 31.0 / 2.0).abs() < 1e-12);
        assert_eq!(r.special_per_element(), 2.0);
        let text = r.render();
        assert!(text.contains("profile: toy"));
        assert!(text.contains("bottleneck"));
    }

    #[test]
    fn bottleneck_detection() {
        let p = Profiler::new(DeviceConfig::k40c());
        let r = p.profile::<f64, _>(&Toy).unwrap();
        // tiny kernel: any pipe may dominate, but the label is one of the
        // three and consistent with the timing decomposition.
        let b = r.bottleneck();
        assert!(["dram", "smem", "instr"].contains(&b));
    }
}
