//! # ttlg-gpu-sim
//!
//! A transaction-level GPU execution model: the hardware substrate on which
//! TTLG-rs runs its "kernels".
//!
//! The original TTLG is a CUDA library evaluated on a Tesla K40c. This
//! workspace has no GPU, so — per the substitution policy in DESIGN.md — we
//! model the machine at the level the paper itself reasons about:
//!
//! * **Global memory**: warp-wide accesses are grouped into 128-byte
//!   transactions by the coalescing analyzer ([`coalesce`]); the paper's
//!   Sec. IV-C accounts data movement in exactly these units.
//! * **Shared memory**: 32 banks x 4-byte words, with per-warp conflict
//!   degree (serialization factor) detection ([`smem`]); the 32x33 padding
//!   trick falls out naturally.
//! * **Texture memory**: read-only offset arrays with a >99% hit-rate cache
//!   model.
//! * **Execution**: a kernel is a block-structured program
//!   ([`kernel::BlockKernel`]) executed by [`executor::Executor`] either in
//!   `Execute` mode (move real host bytes and count transactions; used for
//!   correctness) or `Analyze` mode (representative-block sampling for fast
//!   timing of the large evaluation sweeps).
//! * **Timing**: [`timing::TimingModel`] converts transaction counts plus
//!   grid geometry into nanoseconds via a calibrated bandwidth / occupancy
//!   model of the K40c, and into the paper's "bandwidth usage" metric
//!   `2 * volume * 8 / time`.

pub mod coalesce;
pub mod device;
pub mod executor;
pub mod kernel;
pub mod profile;
pub mod smem;
pub mod stats;
pub mod timing;

pub use device::DeviceConfig;
pub use executor::{ExecMode, Executor, GridExecutor, RunOutcome};
pub use kernel::{Accounting, BlockIo, BlockKernel, Launch};
pub use profile::{ProfileReport, Profiler};
pub use smem::SmemSim;
pub use stats::TransactionStats;
pub use timing::{KernelTiming, TimingModel};

/// Bytes per global-memory transaction on every architecture the paper
/// considers.
pub const TRANSACTION_BYTES: usize = 128;

/// Number of shared-memory banks.
pub const SMEM_BANKS: usize = 32;

/// Bytes per shared-memory bank word.
pub const SMEM_WORD_BYTES: usize = 4;
