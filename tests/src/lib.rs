//! Placeholder lib target for the integration-test package; the actual
//! tests live in `tests/tests/`.
