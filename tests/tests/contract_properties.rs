//! Randomized property tests for the TTGT contraction engine: random
//! specs and extents must match the direct-definition contraction.

use std::collections::HashMap;
use ttlg_contract::engine::contract_reference;
use ttlg_contract::{ContractionEngine, ContractionSpec};
use ttlg_tensor::rng::StdRng;
use ttlg_tensor::{DenseTensor, Shape};

const CASES: usize = 32;

/// Random (spec, extentsA, extentsB): pick m/n/k label counts, assign
/// extents per label, then shuffle each tensor's label order and the
/// output order.
fn spec_and_extents(rng: &mut StdRng) -> (String, Vec<usize>, Vec<usize>) {
    let nm = rng.gen_range(1usize..=2);
    let nn = rng.gen_range(1usize..=2);
    let nk = rng.gen_range(1usize..=2);
    let labels_m: Vec<char> = (0..nm).map(|i| (b'a' + i as u8) as char).collect();
    let labels_n: Vec<char> = (0..nn).map(|i| (b'p' + i as u8) as char).collect();
    let labels_k: Vec<char> = (0..nk).map(|i| (b'x' + i as u8) as char).collect();
    let a_labels: Vec<char> = labels_m.iter().chain(labels_k.iter()).copied().collect();
    let b_labels: Vec<char> = labels_k.iter().chain(labels_n.iter()).copied().collect();
    let c_labels: Vec<char> = labels_m.iter().chain(labels_n.iter()).copied().collect();

    // Extents follow labels: assign one extent per label.
    let mut ext: HashMap<char, usize> = HashMap::new();
    for l in a_labels.iter().chain(b_labels.iter()) {
        ext.entry(*l).or_insert_with(|| rng.gen_range(2usize..=6));
    }

    let mut a2 = a_labels;
    let mut b2 = b_labels;
    let mut c2 = c_labels;
    rng.shuffle(&mut a2);
    rng.shuffle(&mut b2);
    rng.shuffle(&mut c2);

    let spec = format!(
        "{},{}->{}",
        a2.iter().collect::<String>(),
        b2.iter().collect::<String>(),
        c2.iter().collect::<String>()
    );
    let ea: Vec<usize> = a2.iter().map(|l| ext[l]).collect();
    let eb: Vec<usize> = b2.iter().map(|l| ext[l]).collect();
    (spec, ea, eb)
}

#[test]
fn ttgt_matches_direct_contraction() {
    let mut rng = StdRng::seed_from_u64(0x77_67_71);
    let engine = ContractionEngine::new_k40c();
    for case in 0..CASES {
        let (spec_str, ea, eb) = spec_and_extents(&mut rng);
        let spec = ContractionSpec::parse(&spec_str).unwrap();
        let sa = Shape::new(&ea).unwrap();
        let sb = Shape::new(&eb).unwrap();
        let a: DenseTensor<f64> = DenseTensor::iota(sa.clone());
        let b: DenseTensor<f64> = DenseTensor::iota(sb.clone());
        let plan = engine.plan(&spec, &sa, &sb).unwrap();
        let (c, report) = engine.execute(&plan, &a, &b).unwrap();
        let expect = contract_reference(&spec, &a, &b);
        assert_eq!(c.shape(), expect.shape(), "case {case}: {spec_str}");
        for (x, y) in c.data().iter().zip(expect.data().iter()) {
            assert!(
                (x - y).abs() < 1e-6 * (1.0 + y.abs()),
                "case {case}: {spec_str} ({x} vs {y})"
            );
        }
        assert!(report.candidates_priced >= 2, "case {case}: {spec_str}");
    }
}
