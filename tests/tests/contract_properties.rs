//! Property tests for the TTGT contraction engine: random specs and
//! extents must match the direct-definition contraction.

use proptest::prelude::*;
use ttlg_contract::engine::contract_reference;
use ttlg_contract::{ContractionEngine, ContractionSpec};
use ttlg_tensor::{DenseTensor, Shape};

/// Random (spec, extents) generator: pick m/n/k label counts, then
/// shuffle each tensor's labels and the output order.
fn spec_and_extents() -> impl Strategy<Value = (String, Vec<usize>, Vec<usize>)> {
    (1usize..=2, 1usize..=2, 1usize..=2).prop_flat_map(|(nm, nn, nk)| {
        let labels_m: Vec<char> = (0..nm).map(|i| (b'a' + i as u8) as char).collect();
        let labels_n: Vec<char> = (0..nn).map(|i| (b'p' + i as u8) as char).collect();
        let labels_k: Vec<char> = (0..nk).map(|i| (b'x' + i as u8) as char).collect();
        let a_labels: Vec<char> = labels_m.iter().chain(labels_k.iter()).copied().collect();
        let b_labels: Vec<char> = labels_k.iter().chain(labels_n.iter()).copied().collect();
        let c_labels: Vec<char> = labels_m.iter().chain(labels_n.iter()).copied().collect();
        let na = a_labels.len();
        let nb = b_labels.len();
        (
            Just((a_labels, b_labels, c_labels)),
            proptest::collection::vec(2usize..=6, na),
            proptest::collection::vec(2usize..=6, nb),
            any::<u64>(),
        )
            .prop_map(|((a, b, c), ea, eb, seed)| {
                // Shuffle label orders deterministically from the seed.
                let shuffle = |mut v: Vec<char>, mut s: u64| {
                    for i in (1..v.len()).rev() {
                        s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let j = (s >> 33) as usize % (i + 1);
                        v.swap(i, j);
                    }
                    v
                };
                let a2 = shuffle(a.clone(), seed);
                let b2 = shuffle(b.clone(), seed ^ 0xABCD);
                let c2 = shuffle(c, seed ^ 0x1234);
                // Extents follow labels: assign one extent per label.
                let mut ext = std::collections::HashMap::new();
                for (l, e) in a.iter().zip(ea.iter()) {
                    ext.insert(*l, *e);
                }
                for (l, e) in b.iter().zip(eb.iter()) {
                    ext.entry(*l).or_insert(*e);
                }
                let spec = format!(
                    "{},{}->{}",
                    a2.iter().collect::<String>(),
                    b2.iter().collect::<String>(),
                    c2.iter().collect::<String>()
                );
                let ea2: Vec<usize> = a2.iter().map(|l| ext[l]).collect();
                let eb2: Vec<usize> = b2.iter().map(|l| ext[l]).collect();
                (spec, ea2, eb2)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ttgt_matches_direct_contraction((spec_str, ea, eb) in spec_and_extents()) {
        let spec = ContractionSpec::parse(&spec_str).unwrap();
        let sa = Shape::new(&ea).unwrap();
        let sb = Shape::new(&eb).unwrap();
        let a: DenseTensor<f64> = DenseTensor::iota(sa.clone());
        let b: DenseTensor<f64> = DenseTensor::iota(sb.clone());
        let engine = ContractionEngine::new_k40c();
        let plan = engine.plan(&spec, &sa, &sb).unwrap();
        let (c, report) = engine.execute(&plan, &a, &b).unwrap();
        let expect = contract_reference(&spec, &a, &b);
        prop_assert_eq!(c.shape(), expect.shape());
        for (x, y) in c.data().iter().zip(expect.data().iter()) {
            prop_assert!((x - y).abs() < 1e-6 * (1.0 + y.abs()), "{}", spec_str);
        }
        prop_assert!(report.candidates_priced >= 2);
    }
}
