//! Golden transaction-count regression tests: exact counter values for a
//! matrix of (case, schema) pairs. These pin the simulator's accounting —
//! any change to coalescing, bank, texture, or kernel structure that
//! shifts a counter shows up here, the way the paper's Table I pins its
//! formulas.

use ttlg::{Schema, TransposeOptions, Transposer};
use ttlg_tensor::{Permutation, Shape};

struct Golden {
    extents: &'static [usize],
    perm: &'static [usize],
    schema: Schema,
    dram_load: u64,
    dram_store: u64,
    smem_acc: u64,
    replays: u64,
    tex: u64,
}

fn check(g: &Golden) {
    let t = Transposer::new_k40c();
    let shape = Shape::new(g.extents).unwrap();
    let perm = Permutation::new(g.perm).unwrap();
    let opts = TransposeOptions {
        forced_schema: Some(g.schema),
        ..Default::default()
    };
    let plan = t.plan::<f64>(&shape, &perm, &opts).unwrap();
    let r = t.time_plan(&plan).unwrap();
    assert_eq!(
        r.stats.dram_load_tx, g.dram_load,
        "dram loads {:?} {}",
        g.extents, g.schema
    );
    assert_eq!(
        r.stats.dram_store_tx, g.dram_store,
        "dram stores {:?} {}",
        g.extents, g.schema
    );
    assert_eq!(
        r.stats.smem_load_acc + r.stats.smem_store_acc,
        g.smem_acc,
        "smem accesses {:?} {}",
        g.extents,
        g.schema
    );
    assert_eq!(
        r.stats.smem_conflict_replays, g.replays,
        "replays {:?} {}",
        g.extents, g.schema
    );
    assert_eq!(
        r.stats.tex_load_tx, g.tex,
        "tex {:?} {}",
        g.extents, g.schema
    );
}

#[test]
fn golden_copy() {
    // Identity on 32^3 doubles: vol*8/128 = 2048 tx each way, no smem/tex.
    check(&Golden {
        extents: &[32, 32, 32],
        perm: &[0, 1, 2],
        schema: Schema::Copy,
        dram_load: 2048,
        dram_store: 2048,
        smem_acc: 0,
        replays: 0,
        tex: 0,
    });
}

#[test]
fn golden_fvi_match_large() {
    // [64, 8, 8] => [a, c, b]: 64 rows of 64 doubles = 4 tx per row per
    // direction.
    check(&Golden {
        extents: &[64, 8, 8],
        perm: &[0, 2, 1],
        schema: Schema::FviMatchLarge,
        dram_load: 256,
        dram_store: 256,
        smem_acc: 0,
        replays: 0,
        tex: 0,
    });
}

#[test]
fn golden_fvi_match_small() {
    // [8, 8, 8, 8] => [a, d, c, b], b = 4: C1 = 256 each way (Table I).
    check(&Golden {
        extents: &[8, 8, 8, 8],
        perm: &[0, 3, 2, 1],
        schema: Schema::FviMatchSmall,
        dram_load: 256,
        dram_store: 256,
        smem_acc: 512, // 256 staged in + 256 gathered out
        replays: 0,    // padding keeps the gather conflict-free
        tex: 0,
    });
}

#[test]
fn golden_orthogonal_distinct_matrix() {
    // 128x128 matrix transpose through 32x33 tiles: 1024 tx each way;
    // 16 blocks x (32 row + 32 column) warp accesses = 1024, no
    // conflicts, one broadcast texture read per row/column access.
    check(&Golden {
        extents: &[128, 128],
        perm: &[1, 0],
        schema: Schema::OrthogonalDistinct,
        dram_load: 1024,
        dram_store: 1024,
        smem_acc: 1024,
        replays: 0,
        tex: 1024,
    });
}

#[test]
fn golden_orthogonal_arbitrary_paper_case() {
    // [8,2,8,8] => [c,b,d,a] with the planner's swept choice.
    let t = Transposer::new_k40c();
    let shape = Shape::new(&[8, 2, 8, 8]).unwrap();
    let perm = Permutation::new(&[2, 1, 3, 0]).unwrap();
    let opts = TransposeOptions {
        forced_schema: Some(Schema::OrthogonalArbitrary),
        ..Default::default()
    };
    let plan = t.plan::<f64>(&shape, &perm, &opts).unwrap();
    let r = t.time_plan(&plan).unwrap();
    // Both directions move the whole tensor with 128-element input runs
    // and 128-element output runs: 64 tx each (Table I's C3 = C3' = 64).
    assert_eq!(r.stats.dram_load_tx, 64);
    assert_eq!(r.stats.dram_store_tx, 64);
    assert_eq!(r.stats.elements_moved, 1024);
}

#[test]
fn golden_naive_matrix() {
    // 64x64 naive transpose: stores coalesced (256 tx), loads one segment
    // per lane (4096 tx), 2 divmods per element.
    check(&Golden {
        extents: &[64, 64],
        perm: &[1, 0],
        schema: Schema::Naive,
        dram_load: 4096,
        dram_store: 256,
        smem_acc: 0,
        replays: 0,
        tex: 0,
    });
}

#[test]
fn golden_counts_stable_across_runs() {
    // The same plan analyzed twice yields byte-identical statistics.
    let t = Transposer::new_k40c();
    let shape = Shape::new(&[24, 10, 36]).unwrap();
    let perm = Permutation::new(&[2, 1, 0]).unwrap();
    let plan = t
        .plan::<f64>(&shape, &perm, &TransposeOptions::default())
        .unwrap();
    let a = t.time_plan(&plan).unwrap().stats;
    let b = t.time_plan(&plan).unwrap().stats;
    assert_eq!(a, b);
}
