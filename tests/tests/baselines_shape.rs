//! The paper's comparative claims, as executable assertions: system
//! ordering on the permutation suites, single-use gaps, amortisation
//! behaviour, and baseline correctness against the reference.

use ttlg_baselines::cutt::{CuttLibrary, CuttMode};
use ttlg_baselines::ttc::TtcGenerator;
use ttlg_bench::figures::fig_perms;
use ttlg_bench::runner::{Harness, SystemSet};
use ttlg_gpu_sim::DeviceConfig;
use ttlg_tensor::generator::{all_permutations_suite, Case};
use ttlg_tensor::{reference, DenseTensor};

#[test]
fn repeated_use_ordering_extent16() {
    let h = Harness::k40c();
    let s = fig_perms::summarize(&h, 16, 36); // 20 cases
    assert!(s.mean_ttlg >= s.mean_cutt_m * 0.98, "{s:?}");
    assert!(s.mean_cutt_m >= s.mean_cutt_h, "{s:?}");
    assert!(s.mean_cutt_h > s.mean_ttc, "{s:?}");
    assert!(s.ttlg_win_rate >= 0.7, "{s:?}");
}

#[test]
fn repeated_use_ordering_extent15_and_17() {
    let h = Harness::k40c();
    for extent in [15usize, 17] {
        let s = fig_perms::summarize(&h, extent, 90); // 8 cases each
        assert!(s.mean_ttlg >= s.mean_cutt_m * 0.9, "extent {extent}: {s:?}");
        assert!(s.mean_cutt_h > s.mean_ttc * 0.85, "extent {extent}: {s:?}");
    }
}

#[test]
fn single_use_punishes_cutt_measure() {
    let h = Harness::k40c();
    let case = Case::new("single", &[16; 6], &[4, 1, 2, 5, 3, 0]);
    let r = h.run_case(
        &case,
        SystemSet {
            ttc: false,
            naive: false,
        },
    );
    let vol = r.volume;
    let ttlg_single = r.ttlg.single_bw(vol, 8);
    let cm_single = r.cutt_measure.single_bw(vol, 8);
    // "For cuTT-measure, the performance drop is much higher since its
    // plan time includes multiple actual executions of the kernels."
    assert!(
        ttlg_single > 2.0 * cm_single,
        "TTLG single {ttlg_single} vs cuTT-measure single {cm_single}"
    );
    // TTLG's own drop from repeated to single use is real but moderate
    // (the paper: ~200 -> ~130 GB/s).
    let ratio = ttlg_single / r.ttlg.repeated_bw(vol, 8);
    assert!(
        (0.4..0.98).contains(&ratio),
        "TTLG single/repeated ratio {ratio}"
    );
}

#[test]
fn amortization_crossover_structure() {
    // Fig. 12: cuTT-measure needs hundreds of calls to amortise; TTLG is
    // immediately competitive.
    let h = Harness::k40c();
    let case = Case::new("amort", &[16; 6], &[0, 2, 5, 1, 4, 3]);
    let r = h.run_case(
        &case,
        SystemSet {
            ttc: false,
            naive: false,
        },
    );
    let vol = r.volume;
    for n in [1usize, 4, 16] {
        assert!(
            r.ttlg.amortized_bw(vol, 8, n) > r.cutt_measure.amortized_bw(vol, 8, n),
            "TTLG must lead at n = {n}"
        );
    }
    // By thousands of calls both sit near their kernel-only plateaus.
    let plateau = r.cutt_measure.amortized_bw(vol, 8, 4096) / r.cutt_measure.repeated_bw(vol, 8);
    assert!(plateau > 0.95, "plateau ratio {plateau}");
}

#[test]
fn baselines_produce_correct_outputs() {
    let extents = [12usize, 7, 9, 5];
    let perm_raw = [3usize, 0, 2, 1];
    let shape = ttlg_tensor::Shape::new(&extents).unwrap();
    let perm = ttlg_tensor::Permutation::new(&perm_raw).unwrap();
    let input: DenseTensor<u64> = DenseTensor::iota(shape.clone());
    let expect = reference::transpose_reference(&input, &perm).unwrap();

    let cutt = CuttLibrary::new(DeviceConfig::k40c());
    for mode in [CuttMode::Heuristic, CuttMode::Measure] {
        let plan = cutt.plan::<u64>(&shape, &perm, mode);
        let (out, _) = cutt.execute(&plan, &input);
        assert_eq!(out.data(), expect.data(), "cuTT {mode:?}");
    }
    let ttc = TtcGenerator::new(DeviceConfig::k40c());
    let exe = ttc.generate::<u64>(&shape, &perm);
    let (out, _) = ttc.execute(&exe, &input);
    assert_eq!(out.data(), expect.data(), "TTC");
}

#[test]
fn scaled_rank_staircase_covers_all_ranks() {
    let suite = all_permutations_suite(6, 16);
    let mut by_rank = [0usize; 7];
    for c in &suite {
        by_rank[c.scaled_rank()] += 1;
    }
    // rank 1: identity only; every rank 2..6 is populated.
    assert_eq!(by_rank[1], 1);
    for (r, &count) in by_rank.iter().enumerate().take(7).skip(2) {
        assert!(count > 0, "rank {r} missing");
    }
    assert_eq!(by_rank.iter().sum::<usize>(), 720);
}
