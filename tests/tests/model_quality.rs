//! End-to-end quality checks on the performance-modeling pipeline: the
//! trained regressions must hit paper-like precision on held-out data,
//! their slice choices must be near-optimal, and plugging them into the
//! planner must keep everything correct.

use std::sync::Arc;
use ttlg::{TimePredictor, TransposeOptions, Transposer};
use ttlg_bench::figures::fig5;
use ttlg_gpu_sim::DeviceConfig;
use ttlg_perfmodel::persist;
use ttlg_perfmodel::predictor::TrainedPredictor;
use ttlg_perfmodel::train::{train_models, TrainConfig};
use ttlg_tensor::generator::DatasetConfig;
use ttlg_tensor::{reference, DenseTensor, Permutation, Shape};

fn medium_cfg() -> TrainConfig {
    TrainConfig {
        dataset: DatasetConfig {
            ranks: vec![3, 4, 5],
            volumes: vec![1 << 16, 1 << 18, 1 << 20],
            max_perms_per_config: 5,
            seed: 1234,
        },
        max_configs_per_case: 8,
        split_seed: 77,
    }
}

#[test]
fn trained_models_reach_paper_like_precision() {
    let device = DeviceConfig::k40c();
    let models = train_models::<f64>(&device, &medium_cfg()).unwrap();
    // Paper: ~4.2% (OD) and ~11% (OA). The simulator is less noisy than
    // hardware, so we accept anything comfortably under 25%.
    assert!(
        models.od.test_precision < 25.0,
        "OD test precision {:.2}%",
        models.od.test_precision
    );
    assert!(
        models.oa.test_precision < 25.0,
        "OA test precision {:.2}%",
        models.oa.test_precision
    );
    // Train/test gap small: no overfitting with 5-7 features.
    assert!((models.od.train_precision - models.od.test_precision).abs() < 15.0);
    // All the paper's features stay in the model.
    assert_eq!(models.od.fit.model.feature_names.len(), 5);
    assert_eq!(models.oa.fit.model.feature_names.len(), 7);
}

#[test]
fn trained_predictor_roundtrips_through_persistence() {
    let device = DeviceConfig::k40c();
    let models = train_models::<f64>(&device, &TrainConfig::quick()).unwrap();
    let pair = persist::ModelPair {
        od: models.od.fit.model.clone(),
        oa: models.oa.fit.model.clone(),
    };
    let dir = std::env::temp_dir().join("ttlg-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("models.txt");
    persist::save(&pair, &path).unwrap();
    let loaded = persist::load(&path).unwrap().unwrap();
    assert_eq!(loaded, pair);

    // The reloaded models drive a correct planner.
    let pred = Arc::new(TrainedPredictor::from_models(
        loaded.od,
        loaded.oa,
        device.clone(),
    ));
    let t = Transposer::with_predictor(device, pred);
    let shape = Shape::new(&[12, 10, 14, 6]).unwrap();
    let perm = Permutation::new(&[2, 0, 3, 1]).unwrap();
    let input: DenseTensor<u64> = DenseTensor::iota(shape.clone());
    let plan = t
        .plan::<u64>(
            &shape,
            &perm,
            &TransposeOptions {
                check_disjoint_writes: true,
                ..Default::default()
            },
        )
        .unwrap();
    let (out, _) = t.execute(&plan, &input).unwrap();
    let expect = reference::transpose_reference(&input, &perm).unwrap();
    assert_eq!(out.data(), expect.data());
}

#[test]
fn fig5_choice_quality_with_trained_model() {
    let device = DeviceConfig::k40c();
    let models = train_models::<f64>(&device, &medium_cfg()).unwrap();
    let pred: Arc<dyn TimePredictor> = Arc::new(TrainedPredictor::new(&models, device.clone()));
    // A mid-size sibling of the paper's Fig. 5 case (27^5 is slow in CI).
    let shape = Shape::new(&[17, 17, 17, 17, 17]).unwrap();
    let perm = Permutation::new(&[4, 1, 2, 0, 3]).unwrap();
    let q = fig5::choice_quality(&device, &pred, &shape, &perm);
    // "Using this model, we can choose the potential best slice variant":
    // the pick must land within 25% of the true optimum.
    assert!(
        q > 0.75,
        "trained model picked a slice at {:.2} of optimal",
        q
    );
}

#[test]
fn queryable_api_ranks_programs_sensibly() {
    let t = Transposer::new_k40c();
    // Same volume, increasingly hostile permutations.
    let easy = Shape::new(&[4096, 64]).unwrap(); // large matching FVI
    let easy_ns = t
        .predict_transpose_ns::<f64>(&easy, &Permutation::new(&[0, 1]).unwrap())
        .unwrap();
    let hard = Shape::new(&[2, 2, 65536, 2, 2, 2, 2]).unwrap(); // tiny FVI both sides
    let hard_ns = t
        .predict_transpose_ns::<f64>(&hard, &Permutation::new(&[3, 1, 0, 4, 2, 6, 5]).unwrap())
        .unwrap();
    assert!(
        hard_ns > easy_ns,
        "awkward permutation must predict slower: {hard_ns} vs {easy_ns}"
    );
}
