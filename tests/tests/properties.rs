//! Randomized property tests over the whole stack: random shapes and
//! permutations through the planner must always match the reference,
//! satisfy conservation invariants, and round-trip under inversion.
//!
//! Cases are drawn from the in-tree seeded PRNG (`ttlg_tensor::rng`), so
//! every run checks the same case set — failures are reproducible from
//! the case index alone.

use ttlg::{TransposeOptions, Transposer};
use ttlg_tensor::rng::StdRng;
use ttlg_tensor::{fuse, reference, DenseTensor, Permutation, Shape};

const CASES: usize = 48;

/// A shape of rank 2..=6 with extents 1..=12 and volume capped, plus a
/// random permutation of that rank.
fn shape_and_perm(rng: &mut StdRng) -> (Shape, Permutation) {
    loop {
        let rank = rng.gen_range(2usize..=6);
        let extents: Vec<usize> = (0..rank).map(|_| rng.gen_range(1usize..=12)).collect();
        if extents.iter().product::<usize>() > 40_000 {
            continue;
        }
        let mut p: Vec<usize> = (0..rank).collect();
        rng.shuffle(&mut p);
        return (Shape::new(&extents).unwrap(), Permutation::new(&p).unwrap());
    }
}

#[test]
fn planner_matches_reference() {
    let mut rng = StdRng::seed_from_u64(0xA11C_E5E5);
    let t = Transposer::new_k40c();
    for case in 0..CASES {
        let (shape, perm) = shape_and_perm(&mut rng);
        let input: DenseTensor<u64> = DenseTensor::iota(shape.clone());
        let opts = TransposeOptions {
            check_disjoint_writes: true,
            ..Default::default()
        };
        let plan = t.plan::<u64>(&shape, &perm, &opts).unwrap();
        let (out, report) = t.execute(&plan, &input).unwrap();
        let expect = reference::transpose_reference(&input, &perm).unwrap();
        assert_eq!(
            out.data(),
            expect.data(),
            "case {case}: {shape} perm {perm}"
        );
        // Conservation: every element moved exactly once.
        assert_eq!(
            report.stats.elements_moved as usize,
            shape.volume(),
            "case {case}"
        );
        assert!(report.kernel_time_ns > 0.0, "case {case}");
    }
}

#[test]
fn transpose_then_inverse_is_identity() {
    let mut rng = StdRng::seed_from_u64(0xB0B5_1ED5);
    let t = Transposer::new_k40c();
    for case in 0..CASES {
        let (shape, perm) = shape_and_perm(&mut rng);
        let input: DenseTensor<u32> = DenseTensor::iota(shape.clone());
        let (mid, _) = t.transpose(&input, &perm).unwrap();
        let (back, _) = t.transpose(&mid, &perm.inverse()).unwrap();
        assert_eq!(
            back.data(),
            input.data(),
            "case {case}: {shape} perm {perm}"
        );
    }
}

#[test]
fn fusion_preserves_linear_placement() {
    // Transposing the fused problem must place elements identically to
    // transposing the original problem.
    let mut rng = StdRng::seed_from_u64(0xF05E_D001);
    for case in 0..CASES {
        let (shape, perm) = shape_and_perm(&mut rng);
        let fused = fuse(&shape, &perm).unwrap();
        let input: DenseTensor<u32> = DenseTensor::iota(shape.clone());
        let fused_input: DenseTensor<u32> =
            DenseTensor::from_data(fused.shape.clone(), input.data().to_vec()).unwrap();
        let a = reference::transpose_reference(&input, &perm).unwrap();
        let b = reference::transpose_reference(&fused_input, &fused.perm).unwrap();
        assert_eq!(a.data(), b.data(), "case {case}: {shape} perm {perm}");
    }
}

#[test]
fn dram_traffic_bounded_below() {
    // No kernel can move fewer bytes than the tensor in + out.
    let mut rng = StdRng::seed_from_u64(0xD7A3_7AFF);
    let t = Transposer::new_k40c();
    for case in 0..CASES {
        let (shape, perm) = shape_and_perm(&mut rng);
        let plan = t
            .plan::<f64>(&shape, &perm, &TransposeOptions::default())
            .unwrap();
        let r = t.time_plan(&plan).unwrap();
        let min_tx = (shape.volume() * 8).div_ceil(128) as u64;
        assert!(
            r.stats.dram_load_tx >= min_tx,
            "case {case}: loads {} below lower bound {min_tx}",
            r.stats.dram_load_tx
        );
        assert!(r.stats.dram_store_tx >= min_tx, "case {case}");
        // ... and a sane kernel stays within 64x of it.
        assert!(r.stats.dram_total_tx() <= 64 * 2 * min_tx, "case {case}");
    }
}

#[test]
fn prediction_is_finite_and_positive() {
    let mut rng = StdRng::seed_from_u64(0x9E4D_1C75);
    let t = Transposer::new_k40c();
    for case in 0..CASES {
        let (shape, perm) = shape_and_perm(&mut rng);
        let ns = t.predict_transpose_ns::<f64>(&shape, &perm).unwrap();
        assert!(
            ns.is_finite() && ns > 0.0,
            "case {case}: {shape} perm {perm} -> {ns}"
        );
    }
}
