//! Property-based tests (proptest) over the whole stack: random shapes
//! and permutations through the planner must always match the reference,
//! satisfy conservation invariants, and round-trip under inversion.

use proptest::prelude::*;
use ttlg::{Transposer, TransposeOptions};
use ttlg_tensor::{fuse, reference, DenseTensor, Permutation, Shape};

/// Strategy: a shape of rank 2..=6 with extents 1..=12 and volume capped,
/// plus a random permutation of that rank.
fn shape_and_perm() -> impl Strategy<Value = (Vec<usize>, Vec<usize>)> {
    (2usize..=6)
        .prop_flat_map(|rank| {
            (
                proptest::collection::vec(1usize..=12, rank),
                Just(rank).prop_perturb(|rank, mut rng| {
                    let mut p: Vec<usize> = (0..rank).collect();
                    // Fisher-Yates with the proptest RNG.
                    for i in (1..rank).rev() {
                        let j = (rng.random::<u64>() % (i as u64 + 1)) as usize;
                        p.swap(i, j);
                    }
                    p
                }),
            )
        })
        .prop_filter("volume cap", |(extents, _)| {
            extents.iter().product::<usize>() <= 40_000
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn planner_matches_reference((extents, perm) in shape_and_perm()) {
        let shape = Shape::new(&extents).unwrap();
        let perm = Permutation::new(&perm).unwrap();
        let input: DenseTensor<u64> = DenseTensor::iota(shape.clone());
        let t = Transposer::new_k40c();
        let opts = TransposeOptions { check_disjoint_writes: true, ..Default::default() };
        let plan = t.plan::<u64>(&shape, &perm, &opts).unwrap();
        let (out, report) = t.execute(&plan, &input).unwrap();
        let expect = reference::transpose_reference(&input, &perm).unwrap();
        prop_assert_eq!(out.data(), expect.data());
        // Conservation: every element moved exactly once.
        prop_assert_eq!(report.stats.elements_moved as usize, shape.volume());
        prop_assert!(report.kernel_time_ns > 0.0);
    }

    #[test]
    fn transpose_then_inverse_is_identity((extents, perm) in shape_and_perm()) {
        let shape = Shape::new(&extents).unwrap();
        let perm = Permutation::new(&perm).unwrap();
        let input: DenseTensor<u32> = DenseTensor::iota(shape.clone());
        let t = Transposer::new_k40c();
        let (mid, _) = t.transpose(&input, &perm).unwrap();
        let (back, _) = t.transpose(&mid, &perm.inverse()).unwrap();
        prop_assert_eq!(back.data(), input.data());
    }

    #[test]
    fn fusion_preserves_linear_placement((extents, perm) in shape_and_perm()) {
        // Transposing the fused problem must place elements identically to
        // transposing the original problem.
        let shape = Shape::new(&extents).unwrap();
        let perm = Permutation::new(&perm).unwrap();
        let fused = fuse(&shape, &perm).unwrap();
        let input: DenseTensor<u32> = DenseTensor::iota(shape.clone());
        let fused_input: DenseTensor<u32> =
            DenseTensor::from_data(fused.shape.clone(), input.data().to_vec()).unwrap();
        let a = reference::transpose_reference(&input, &perm).unwrap();
        let b = reference::transpose_reference(&fused_input, &fused.perm).unwrap();
        prop_assert_eq!(a.data(), b.data());
    }

    #[test]
    fn dram_traffic_bounded_below((extents, perm) in shape_and_perm()) {
        // No kernel can move fewer bytes than the tensor in + out.
        let shape = Shape::new(&extents).unwrap();
        let perm = Permutation::new(&perm).unwrap();
        let t = Transposer::new_k40c();
        let plan = t.plan::<f64>(&shape, &perm, &TransposeOptions::default()).unwrap();
        let r = t.time_plan(&plan).unwrap();
        let min_tx = (shape.volume() * 8).div_ceil(128) as u64;
        prop_assert!(r.stats.dram_load_tx >= min_tx,
            "loads {} below lower bound {}", r.stats.dram_load_tx, min_tx);
        prop_assert!(r.stats.dram_store_tx >= min_tx);
        // ... and a sane kernel stays within 64x of it.
        prop_assert!(r.stats.dram_total_tx() <= 64 * 2 * min_tx);
    }

    #[test]
    fn prediction_is_finite_and_positive((extents, perm) in shape_and_perm()) {
        let shape = Shape::new(&extents).unwrap();
        let perm = Permutation::new(&perm).unwrap();
        let t = Transposer::new_k40c();
        let ns = t.predict_transpose_ns::<f64>(&shape, &perm).unwrap();
        prop_assert!(ns.is_finite() && ns > 0.0);
    }
}
