//! End-to-end coverage for the metrics-history query endpoint: a real
//! gateway over loopback TCP, live traffic, history scrapes, and a
//! `/v1/query_range` read whose `increase()` points are non-negative
//! and account for every admitted request. Also covers the
//! `--history-file` round trip at the service layer: a restarted
//! service hydrates the prior run's series.

use std::sync::Arc;
use ttlg_runtime::TransposeService;
use ttlg_serve::{client::HttpClient, json::Json, Gateway, GatewayConfig};

const BODY: &str = r#"{"extents":[16,8,4],"perm":[2,0,1]}"#;

#[test]
fn query_range_reports_nonnegative_increase_matching_traffic() {
    let gw = Gateway::start(
        Arc::new(TransposeService::new_k40c()),
        GatewayConfig::default(),
    );
    let mut server =
        ttlg_serve::server::spawn(Arc::clone(&gw), "127.0.0.1:0").expect("bind loopback");
    let mut c = HttpClient::connect(server.addr()).expect("connect");

    // Two bursts with a history scrape after each, so the store holds
    // at least two ingests for the window to span.
    let mut admitted = 0u64;
    for _ in 0..2 {
        for _ in 0..4 {
            let r = c
                .post_json("/v1/transpose", &[("x-ttlg-tenant", "qr")], BODY)
                .expect("post");
            assert!(r.status == 200 || r.status == 429, "status {}", r.status);
            if r.status == 200 {
                admitted += 1;
            }
        }
        gw.service().scrape_history_once();
    }
    assert!(admitted >= 1, "no request was admitted");

    let resp = c
        .get("/v1/query_range?series=sum(increase(ttlg_requests_total))&window=10m&step=1s")
        .expect("query_range");
    assert_eq!(resp.status, 200, "body: {}", resp.body_text());
    let doc = ttlg_serve::json::parse(&resp.body).expect("valid json");

    let Some(Json::Arr(series)) = doc.get("series") else {
        panic!("response has no series array: {}", resp.body_text());
    };
    assert_eq!(series.len(), 1, "sum() must collapse to one series");
    let Some(Json::Arr(points)) = series[0].get("points") else {
        panic!("series has no points array");
    };
    assert!(!points.is_empty(), "query returned no points");

    // increase() per step is never negative, and over the whole window
    // the increments must account for (at least) every admitted
    // request — the counter moved exactly when traffic did.
    let mut total = 0.0f64;
    let mut last_t = i64::MIN;
    for p in points {
        let Json::Arr(tv) = p else {
            panic!("point is not a [t, v] pair")
        };
        let t = tv[0].as_f64().expect("timestamp") as i64;
        let v = tv[1].as_f64().expect("value");
        assert!(t > last_t, "timestamps must be strictly increasing");
        assert!(v >= 0.0, "increase() went negative: {v}");
        last_t = t;
        total += v;
    }
    assert!(
        total >= admitted as f64 - 1e-6,
        "windowed increase {total} does not cover {admitted} admitted requests"
    );

    // A bad expression is a client error, not a 500 or an empty 200.
    let bad = c
        .get("/v1/query_range?series=rate(ttlg_uptime_seconds)")
        .expect("bad query");
    assert_eq!(bad.status, 400, "rate() over a gauge must be rejected");

    server.stop();
}

#[test]
fn history_file_round_trips_across_service_restart() {
    let dir = std::env::temp_dir().join("ttlg-query-range-test");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join(format!("history-{}.tsdb", std::process::id()));
    let _ = std::fs::remove_file(&path);

    // First life: fresh file, a couple of scrapes, persisted on each.
    let first = TransposeService::<f64>::new_k40c();
    let restored = first
        .set_history_file(&path)
        .expect("attach fresh history file");
    assert_eq!(restored, 0, "fresh file must restore nothing");
    first.scrape_history_once();
    first.scrape_history_once();
    let series_before = first.history().series_count();
    assert!(series_before > 0, "scrapes ingested no series");
    drop(first);

    // Second life: the same file hydrates the prior run's series.
    let second = TransposeService::<f64>::new_k40c();
    let restored = second
        .set_history_file(&path)
        .expect("re-attach history file");
    assert_eq!(
        restored, series_before,
        "restart must restore every persisted series"
    );
    assert!(second.history().scrapes() > 0, "scrape count not restored");

    let _ = std::fs::remove_file(&path);
}
