//! High-rank coverage: the paper's implementation handles tensors up to
//! rank 15 (via macro-generated constant indexing); the Rust planner is
//! rank-agnostic and must stay correct and sane well beyond rank 6.

use ttlg::{TransposeOptions, Transposer};
use ttlg_tensor::{reference, DenseTensor, Permutation, Shape};

fn roundtrip(extents: &[usize], perm: &[usize]) {
    let shape = Shape::new(extents).unwrap();
    let perm = Permutation::new(perm).unwrap();
    let t = Transposer::new_k40c();
    let opts = TransposeOptions {
        check_disjoint_writes: true,
        ..Default::default()
    };
    let plan = t.plan::<u32>(&shape, &perm, &opts).unwrap();
    let input: DenseTensor<u32> = DenseTensor::iota(shape);
    let (out, _) = t.execute(&plan, &input).unwrap();
    let expect = reference::transpose_reference(&input, &perm).unwrap();
    assert_eq!(
        out.data(),
        expect.data(),
        "rank {} perm {perm}",
        extents.len()
    );
}

#[test]
fn rank7_reversal() {
    roundtrip(&[3, 4, 2, 5, 2, 3, 4], &[6, 5, 4, 3, 2, 1, 0]);
}

#[test]
fn rank8_mixed() {
    roundtrip(&[2, 3, 2, 4, 2, 3, 2, 5], &[5, 0, 7, 2, 4, 1, 3, 6]);
}

#[test]
fn rank10_small_extents() {
    roundtrip(
        &[2, 2, 2, 2, 2, 2, 2, 2, 2, 2],
        &[9, 1, 3, 5, 7, 0, 2, 4, 6, 8],
    );
}

#[test]
fn rank12_with_fusable_runs() {
    // Several adjacent runs fuse, so the planner sees a lower scaled rank.
    roundtrip(
        &[2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2],
        &[6, 7, 8, 0, 1, 2, 9, 10, 11, 3, 4, 5],
    );
}

#[test]
fn rank15_paper_limit() {
    // The paper's macro table stops at rank 15; we go there too.
    let extents = [2usize; 15];
    let perm: Vec<usize> = (0..15).rev().collect();
    roundtrip(&extents, &perm);
}

#[test]
fn rank9_matching_fvi_small() {
    roundtrip(&[4, 3, 2, 2, 3, 2, 2, 2, 3], &[0, 4, 2, 3, 1, 8, 6, 7, 5]);
}

#[test]
fn high_rank_prediction_api_works() {
    let t = Transposer::new_k40c();
    let extents = [2usize; 12];
    let shape = Shape::new(&extents).unwrap();
    let perm: Vec<usize> = (0..12).rev().collect();
    let perm = Permutation::new(&perm).unwrap();
    let ns = t.predict_transpose_ns::<f64>(&shape, &perm).unwrap();
    assert!(ns.is_finite() && ns > 0.0);
}
