//! Property tests on the GPU model itself: coalescing-count bounds, bank
//! conflict-degree bounds, timing monotonicity.

use proptest::prelude::*;
use ttlg_gpu_sim::{coalesce, smem, DeviceConfig, Launch, TimingModel, TransactionStats};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn contiguous_transactions_match_ceiling_bounds(
        start in 0usize..4096,
        lanes in 0usize..=32,
        elem_bytes in prop::sample::select(vec![4usize, 8]),
    ) {
        let tx = coalesce::transactions_for_contiguous(start * elem_bytes, lanes, elem_bytes);
        if lanes == 0 {
            prop_assert_eq!(tx, 0);
        } else {
            let bytes = lanes * elem_bytes;
            let min = bytes.div_ceil(128) as u64;
            // an unaligned run can straddle one extra segment
            prop_assert!(tx >= min && tx <= min + 1, "tx {} for {} bytes", tx, bytes);
        }
    }

    #[test]
    fn strided_transactions_bounded_by_lanes(
        start in 0usize..512,
        lanes in 1usize..=32,
        stride in 1usize..256,
        elem_bytes in prop::sample::select(vec![4usize, 8]),
    ) {
        let tx = coalesce::transactions_for_strided(
            start * elem_bytes, lanes, stride * elem_bytes, elem_bytes);
        // never more than 2 segments per lane, never fewer than the
        // contiguous lower bound
        prop_assert!(tx >= 1 && tx <= 2 * lanes as u64);
        // stride >= 32 elements guarantees one segment (or two, if the
        // element straddles) per lane
        if stride * elem_bytes >= 128 {
            prop_assert!(tx >= lanes as u64);
        }
    }

    #[test]
    fn conflict_degree_bounded_by_active_lanes(
        start in 0usize..256,
        lanes in 0usize..=32,
        stride in 0usize..128,
        elem_bytes in prop::sample::select(vec![4usize, 8]),
    ) {
        let d = smem::conflict_degree_strided(start, lanes, stride, elem_bytes);
        if lanes == 0 {
            prop_assert_eq!(d, 0);
        } else {
            prop_assert!(d >= 1 && d <= lanes as u64);
        }
    }

    #[test]
    fn odd_stride_is_always_conflict_free_for_f32(
        start in 0usize..256,
        k in 0usize..64,
    ) {
        // Odd word strides are coprime with the 32 banks: never a conflict.
        let stride = 2 * k + 1;
        let d = smem::conflict_degree_strided(start, 32, stride, 4);
        prop_assert_eq!(d, 1, "stride {}", stride);
    }

    #[test]
    fn timing_monotone_in_dram_traffic(
        tx in 1u64..1_000_000,
        extra in 1u64..1_000_000,
    ) {
        let model = TimingModel::new(DeviceConfig::k40c());
        let launch = Launch { grid_blocks: 1024, threads_per_block: 256, smem_bytes_per_block: 0 };
        let base = TransactionStats { dram_load_tx: tx, dram_store_tx: tx, ..Default::default() };
        let more = TransactionStats {
            dram_load_tx: tx + extra,
            dram_store_tx: tx,
            ..Default::default()
        };
        prop_assert!(model.time(&more, &launch).time_ns > model.time(&base, &launch).time_ns);
    }

    #[test]
    fn timing_monotone_in_conflict_replays(
        acc in 1u64..1_000_000,
        replays in 1u64..10_000_000,
    ) {
        let model = TimingModel::new(DeviceConfig::k40c());
        let launch = Launch { grid_blocks: 1024, threads_per_block: 256, smem_bytes_per_block: 8448 };
        let base = TransactionStats {
            dram_load_tx: 1000,
            dram_store_tx: 1000,
            smem_load_acc: acc,
            ..Default::default()
        };
        let conflicted = TransactionStats { smem_conflict_replays: replays, ..base };
        prop_assert!(
            model.time(&conflicted, &launch).time_ns >= model.time(&base, &launch).time_ns
        );
    }

    #[test]
    fn stats_merge_is_commutative(
        a0 in 0u64..1000, a1 in 0u64..1000, a2 in 0u64..1000,
        b0 in 0u64..1000, b1 in 0u64..1000, b2 in 0u64..1000,
    ) {
        let a = TransactionStats {
            dram_load_tx: a0, smem_load_acc: a1, special_instr: a2, ..Default::default()
        };
        let b = TransactionStats {
            dram_load_tx: b0, smem_load_acc: b1, special_instr: b2, ..Default::default()
        };
        let mut ab = a; ab.merge(&b);
        let mut ba = b; ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }
}
