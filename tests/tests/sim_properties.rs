//! Randomized property tests on the GPU model itself: coalescing-count
//! bounds, bank conflict-degree bounds, timing monotonicity. Seeded PRNG
//! cases (256 per property) replace the former proptest strategies.

use ttlg_gpu_sim::{coalesce, smem, DeviceConfig, Launch, TimingModel, TransactionStats};
use ttlg_tensor::rng::StdRng;

const CASES: usize = 256;

fn elem_bytes(rng: &mut StdRng) -> usize {
    [4usize, 8][rng.gen_range(0usize..2)]
}

#[test]
fn contiguous_transactions_match_ceiling_bounds() {
    let mut rng = StdRng::seed_from_u64(0xC0A1_E5CE);
    for _ in 0..CASES {
        let start = rng.gen_range(0usize..4096);
        let lanes = rng.gen_range(0usize..=32);
        let eb = elem_bytes(&mut rng);
        let tx = coalesce::transactions_for_contiguous(start * eb, lanes, eb);
        if lanes == 0 {
            assert_eq!(tx, 0);
        } else {
            let bytes = lanes * eb;
            let min = bytes.div_ceil(128) as u64;
            // an unaligned run can straddle one extra segment
            assert!(tx >= min && tx <= min + 1, "tx {tx} for {bytes} bytes");
        }
    }
}

#[test]
fn strided_transactions_bounded_by_lanes() {
    let mut rng = StdRng::seed_from_u64(0x57A1_DE00);
    for _ in 0..CASES {
        let start = rng.gen_range(0usize..512);
        let lanes = rng.gen_range(1usize..=32);
        let stride = rng.gen_range(1usize..256);
        let eb = elem_bytes(&mut rng);
        let tx = coalesce::transactions_for_strided(start * eb, lanes, stride * eb, eb);
        // never more than 2 segments per lane, never fewer than the
        // contiguous lower bound
        assert!(tx >= 1 && tx <= 2 * lanes as u64, "tx {tx} lanes {lanes}");
        // stride >= 32 elements guarantees one segment (or two, if the
        // element straddles) per lane
        if stride * eb >= 128 {
            assert!(tx >= lanes as u64);
        }
    }
}

#[test]
fn conflict_degree_bounded_by_active_lanes() {
    let mut rng = StdRng::seed_from_u64(0xBA4E_C04F);
    for _ in 0..CASES {
        let start = rng.gen_range(0usize..256);
        let lanes = rng.gen_range(0usize..=32);
        let stride = rng.gen_range(0usize..128);
        let eb = elem_bytes(&mut rng);
        let d = smem::conflict_degree_strided(start, lanes, stride, eb);
        if lanes == 0 {
            assert_eq!(d, 0);
        } else {
            assert!(d >= 1 && d <= lanes as u64, "degree {d} lanes {lanes}");
        }
    }
}

#[test]
fn odd_stride_is_always_conflict_free_for_f32() {
    let mut rng = StdRng::seed_from_u64(0x0DD5_771D);
    for _ in 0..CASES {
        let start = rng.gen_range(0usize..256);
        let k = rng.gen_range(0usize..64);
        // Odd word strides are coprime with the 32 banks: never a conflict.
        let stride = 2 * k + 1;
        let d = smem::conflict_degree_strided(start, 32, stride, 4);
        assert_eq!(d, 1, "stride {stride}");
    }
}

#[test]
fn timing_monotone_in_dram_traffic() {
    let mut rng = StdRng::seed_from_u64(0x7131_3137);
    let model = TimingModel::new(DeviceConfig::k40c());
    let launch = Launch {
        grid_blocks: 1024,
        threads_per_block: 256,
        smem_bytes_per_block: 0,
    };
    for _ in 0..CASES {
        let tx = rng.gen_range(1u64..1_000_000);
        let extra = rng.gen_range(1u64..1_000_000);
        let base = TransactionStats {
            dram_load_tx: tx,
            dram_store_tx: tx,
            ..Default::default()
        };
        let more = TransactionStats {
            dram_load_tx: tx + extra,
            dram_store_tx: tx,
            ..Default::default()
        };
        assert!(model.time(&more, &launch).time_ns > model.time(&base, &launch).time_ns);
    }
}

#[test]
fn timing_monotone_in_conflict_replays() {
    let mut rng = StdRng::seed_from_u64(0x4E91_0AF5);
    let model = TimingModel::new(DeviceConfig::k40c());
    let launch = Launch {
        grid_blocks: 1024,
        threads_per_block: 256,
        smem_bytes_per_block: 8448,
    };
    for _ in 0..CASES {
        let acc = rng.gen_range(1u64..1_000_000);
        let replays = rng.gen_range(1u64..10_000_000);
        let base = TransactionStats {
            dram_load_tx: 1000,
            dram_store_tx: 1000,
            smem_load_acc: acc,
            ..Default::default()
        };
        let conflicted = TransactionStats {
            smem_conflict_replays: replays,
            ..base
        };
        assert!(model.time(&conflicted, &launch).time_ns >= model.time(&base, &launch).time_ns);
    }
}

#[test]
fn stats_merge_is_commutative() {
    let mut rng = StdRng::seed_from_u64(0xC033_07A7);
    for _ in 0..CASES {
        let mut draws = [0u64; 6];
        for d in draws.iter_mut() {
            *d = rng.gen_range(0u64..1000);
        }
        let a = TransactionStats {
            dram_load_tx: draws[0],
            smem_load_acc: draws[1],
            special_instr: draws[2],
            ..Default::default()
        };
        let b = TransactionStats {
            dram_load_tx: draws[3],
            smem_load_acc: draws[4],
            special_instr: draws[5],
            ..Default::default()
        };
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
    }
}
