//! Simulator-level invariants exercised through the full stack: sampled
//! analysis must agree exactly with full execution, disjoint-write
//! verification must hold for every schema, and timing must be
//! deterministic and monotone in obvious ways.

use ttlg::{Schema, TransposeOptions, Transposer};
use ttlg_gpu_sim::DeviceConfig;
use ttlg_tensor::{DenseTensor, Permutation, Shape};

/// Cases covering every kernel family with awkward (non-multiple)
/// extents.
fn cases() -> Vec<(Vec<usize>, Vec<usize>)> {
    vec![
        (vec![40, 40], vec![0, 1]),             // copy
        (vec![50, 7, 9], vec![0, 2, 1]),        // FVI-Match-Large
        (vec![9, 10, 11, 5], vec![0, 3, 2, 1]), // FVI-Match-Small family
        (vec![33, 5, 37], vec![2, 1, 0]),       // Orthogonal-Distinct
        (vec![6, 3, 7, 9], vec![2, 1, 3, 0]),   // Orthogonal-Arbitrary
    ]
}

#[test]
fn analyze_equals_execute_for_every_schema() {
    let t = Transposer::new_k40c();
    for (extents, perm) in cases() {
        let shape = Shape::new(&extents).unwrap();
        let perm = Permutation::new(&perm).unwrap();
        let plan = t
            .plan::<u64>(&shape, &perm, &TransposeOptions::default())
            .unwrap();
        let input: DenseTensor<u64> = DenseTensor::iota(shape);
        let exec = t.execute(&plan, &input).unwrap().1;
        let ana = t.time_plan(&plan).unwrap();
        assert_eq!(
            exec.stats,
            ana.stats,
            "sampled analysis diverged from execution: {extents:?} {}",
            plan.schema()
        );
        assert_eq!(exec.kernel_time_ns, ana.kernel_time_ns);
    }
}

#[test]
fn disjoint_write_checking_passes_for_all_schemas() {
    // The executor's double-write detector is a failure-injection net: a
    // kernel writing any output element twice (or missing one) panics.
    let t = Transposer::new_k40c();
    let opts = TransposeOptions {
        check_disjoint_writes: true,
        ..Default::default()
    };
    for (extents, perm) in cases() {
        let shape = Shape::new(&extents).unwrap();
        let perm = Permutation::new(&perm).unwrap();
        let plan = t.plan::<u64>(&shape, &perm, &opts).unwrap();
        let input: DenseTensor<u64> = DenseTensor::iota(shape.clone());
        let (out, report) = t.execute(&plan, &input).unwrap();
        // Every element written exactly once => moved count == volume.
        assert_eq!(report.stats.elements_moved as usize, shape.volume());
        assert_eq!(out.volume(), shape.volume());
    }
}

#[test]
fn timing_is_deterministic_across_runs() {
    let t = Transposer::new_k40c();
    let shape = Shape::new(&[24, 18, 12]).unwrap();
    let perm = Permutation::new(&[2, 0, 1]).unwrap();
    let plan = t
        .plan::<f64>(&shape, &perm, &TransposeOptions::default())
        .unwrap();
    let a = t.time_plan(&plan).unwrap();
    for _ in 0..3 {
        let b = t.time_plan(&plan).unwrap();
        assert_eq!(a.kernel_time_ns, b.kernel_time_ns);
        assert_eq!(a.stats, b.stats);
    }
}

#[test]
fn forced_naive_never_beats_planner_choice() {
    let t = Transposer::new_k40c();
    for (extents, perm) in cases() {
        if extents.iter().product::<usize>() < 4000 {
            continue; // tiny tensors are launch-overhead noise
        }
        let shape = Shape::new(&extents).unwrap();
        let perm = Permutation::new(&perm).unwrap();
        let auto = t
            .plan::<f64>(&shape, &perm, &TransposeOptions::default())
            .unwrap();
        let naive = t
            .plan::<f64>(
                &shape,
                &perm,
                &TransposeOptions {
                    forced_schema: Some(Schema::Naive),
                    ..Default::default()
                },
            )
            .unwrap();
        let auto_t = t.time_plan(&auto).unwrap().kernel_time_ns;
        let naive_t = t.time_plan(&naive).unwrap().kernel_time_ns;
        assert!(
            auto_t <= naive_t * 1.02,
            "planner ({}, {auto_t}) lost to naive ({naive_t}) on {extents:?}",
            auto.schema()
        );
    }
}

#[test]
fn smaller_device_is_slower() {
    let big = Transposer::new(DeviceConfig::k40c());
    let small = Transposer::new(DeviceConfig::test_tiny());
    let shape = Shape::new(&[64, 32, 16]).unwrap();
    let perm = Permutation::new(&[2, 1, 0]).unwrap();
    let opts = TransposeOptions::default();
    let tb = big
        .time_plan(&big.plan::<f64>(&shape, &perm, &opts).unwrap())
        .unwrap();
    let ts = small
        .time_plan(&small.plan::<f64>(&shape, &perm, &opts).unwrap())
        .unwrap();
    assert!(
        ts.kernel_time_ns > tb.kernel_time_ns,
        "tiny device must be slower"
    );
}
