//! Boundary-condition sweeps: every kernel family, with extents straddling
//! the warp size and blocking factors (31/32/33-style), where partial
//! tiles, partial slices and misaligned transactions live. Each case is
//! verified element-exact against the reference with double-write
//! detection on.

use ttlg::{Schema, TransposeOptions, Transposer};
use ttlg_tensor::{reference, DenseTensor, Permutation, Shape};

fn check(extents: &[usize], perm: &[usize], forced: Option<Schema>) {
    let shape = Shape::new(extents).unwrap();
    let perm = Permutation::new(perm).unwrap();
    let t = Transposer::new_k40c();
    let opts = TransposeOptions {
        forced_schema: forced,
        check_disjoint_writes: true,
        ..Default::default()
    };
    let plan = match t.plan::<u64>(&shape, &perm, &opts) {
        Ok(p) => p,
        Err(_) if forced.is_some() => return, // schema not applicable here
        Err(e) => panic!("no plan for {extents:?}: {e}"),
    };
    let input: DenseTensor<u64> = DenseTensor::iota(shape);
    let (out, _) = t.execute(&plan, &input).unwrap();
    let expect = reference::transpose_reference(&input, &perm).unwrap();
    assert_eq!(
        out.data(),
        expect.data(),
        "extents {extents:?} perm {perm} schema {:?}",
        plan.schema()
    );
}

#[test]
fn matrix_transpose_straddles_warp_boundaries() {
    for a in [31usize, 32, 33] {
        for b in [31usize, 32, 33, 63, 65] {
            check(&[a, b], &[1, 0], None);
        }
    }
}

#[test]
fn orthogonal_distinct_partial_slices() {
    // Blocked dims with remainders on one or both sides.
    for a in [30usize, 33, 37] {
        for c in [30usize, 33, 37] {
            check(&[a, 3, c], &[2, 1, 0], Some(Schema::OrthogonalDistinct));
        }
    }
}

#[test]
fn orthogonal_arbitrary_partial_slices() {
    for a in [7usize, 9] {
        for d in [7usize, 9, 33] {
            check(
                &[a, 2, 5, d],
                &[2, 1, 3, 0],
                Some(Schema::OrthogonalArbitrary),
            );
        }
    }
}

#[test]
fn fvi_match_small_ragged_blocks() {
    // i1 and ik extents not multiples of the blocking factor.
    for b in [5usize, 7, 9, 11] {
        for k in [5usize, 7, 9, 11] {
            check(&[8, b, k], &[0, 2, 1], Some(Schema::FviMatchSmall));
        }
    }
}

#[test]
fn fvi_match_large_row_alignment() {
    // Row lengths around transaction boundaries (16 doubles = 128 B).
    for n0 in [32usize, 33, 47, 48, 49, 63, 64, 65] {
        check(&[n0, 5, 3], &[0, 2, 1], Some(Schema::FviMatchLarge));
    }
}

#[test]
fn extent_one_dimensions() {
    // Degenerate extents of 1 anywhere in the tensor.
    check(&[1, 16, 16], &[2, 1, 0], None);
    check(&[16, 1, 16], &[2, 1, 0], None);
    check(&[16, 16, 1], &[2, 1, 0], None);
    check(&[1, 1, 37], &[2, 0, 1], None);
    check(&[1, 1, 1], &[2, 1, 0], None);
}

#[test]
fn prime_extent_gauntlet() {
    for p in [13usize, 17, 29, 37, 41] {
        check(&[p, p, p], &[2, 1, 0], None);
        check(&[p, 4, p], &[2, 0, 1], None);
    }
}

#[test]
fn single_element_and_vector_tensors() {
    check(&[1], &[0], None);
    check(&[1000], &[0], None);
    check(&[999, 2], &[1, 0], None);
}
