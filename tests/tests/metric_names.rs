//! Metric-name drift check: the `/metrics` endpoint and DESIGN.md's
//! metrics table must list exactly the same `ttlg_*` families, in both
//! directions. Renaming or adding a family without documenting it (or
//! documenting one that no longer exists) fails this test.
//!
//! Also asserts the scrape contract CI relies on: scraping twice with
//! traffic in between never decreases a counter.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use ttlg_runtime::TransposeService;
use ttlg_serve::{client::HttpClient, Gateway, GatewayConfig, QuotaConfig};

const BODY: &str = r#"{"extents":[16,8,4],"perm":[2,0,1]}"#;

/// Spin an ephemeral gateway, drive enough traffic to touch every
/// subsystem (admitted requests, sheds, traces, alerts), and scrape.
fn scrape_after_traffic() -> (String, String) {
    let gw = Gateway::start(
        Arc::new(TransposeService::new_k40c()),
        GatewayConfig {
            quota: QuotaConfig {
                rate_per_sec: 50.0,
                burst: 3.0,
                max_tenants: 8,
            },
            ..GatewayConfig::default()
        },
    );
    let mut server = ttlg_serve::server::spawn(gw, "127.0.0.1:0").expect("bind loopback");
    let mut c = HttpClient::connect(server.addr()).expect("connect");
    let drive = |c: &mut HttpClient| {
        for _ in 0..6 {
            let r = c
                .post_json("/v1/transpose", &[("x-ttlg-tenant", "drift")], BODY)
                .expect("post");
            assert!(r.status == 200 || r.status == 429, "status {}", r.status);
        }
        assert_eq!(c.get("/v1/alerts").expect("alerts").status, 200);
        assert_eq!(c.get("/healthz").expect("healthz").status, 200);
    };
    drive(&mut c);
    let first = c.get("/metrics").expect("scrape 1").body_text();
    drive(&mut c);
    let second = c.get("/metrics").expect("scrape 2").body_text();
    server.stop();
    (first, second)
}

/// `ttlg_*` family names from `# TYPE` lines of a scrape.
fn scraped_families(prom: &str) -> BTreeSet<String> {
    prom.lines()
        .filter_map(|l| l.strip_prefix("# TYPE "))
        .filter_map(|rest| rest.split_whitespace().next())
        .filter(|name| name.starts_with("ttlg_"))
        .map(str::to_string)
        .collect()
}

/// `ttlg_*` family names from DESIGN.md's metrics table — rows of the
/// form `` | `family` | ... ``.
fn documented_families() -> BTreeSet<String> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../DESIGN.md");
    let text = std::fs::read_to_string(path).expect("read DESIGN.md");
    let mut families = BTreeSet::new();
    for line in text.lines() {
        let Some(rest) = line.trim_start().strip_prefix("| `ttlg_") else {
            continue;
        };
        let Some(name) = rest.split('`').next() else {
            continue;
        };
        families.insert(format!("ttlg_{name}"));
    }
    families
}

#[test]
fn exported_families_match_the_design_doc_both_ways() {
    let (prom, _) = scrape_after_traffic();
    let exported = scraped_families(&prom);
    let documented = documented_families();
    assert!(
        !exported.is_empty() && !documented.is_empty(),
        "both sides must be non-empty (exported {}, documented {})",
        exported.len(),
        documented.len()
    );
    let undocumented: Vec<&String> = exported.difference(&documented).collect();
    let stale: Vec<&String> = documented.difference(&exported).collect();
    assert!(
        undocumented.is_empty(),
        "exported but missing from DESIGN.md's metrics table: {undocumented:?}"
    );
    assert!(
        stale.is_empty(),
        "documented in DESIGN.md but not exported: {stale:?}"
    );
}

/// Last-resort parse of a sample line `name{labels} value` -> value.
fn counter_values(prom: &str) -> BTreeMap<String, f64> {
    let mut counters = BTreeSet::new();
    for line in prom.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            if let (Some(name), Some("counter")) = (it.next(), it.next()) {
                counters.insert(name.to_string());
            }
        }
    }
    let mut values = BTreeMap::new();
    for line in prom.lines() {
        if line.starts_with('#') {
            continue;
        }
        let Some((series, value)) = line.rsplit_once(' ') else {
            continue;
        };
        let name = series.split('{').next().unwrap_or(series);
        if counters.contains(name) {
            if let Ok(v) = value.parse::<f64>() {
                values.insert(series.to_string(), v);
            }
        }
    }
    values
}

#[test]
fn counters_are_monotone_across_scrapes() {
    let (first, second) = scrape_after_traffic();
    let before = counter_values(&first);
    let after = counter_values(&second);
    assert!(!before.is_empty(), "first scrape exposed no counters");
    for (series, v1) in &before {
        if let Some(v2) = after.get(series) {
            assert!(
                v2 >= v1,
                "counter went backwards between scrapes: {series} {v1} -> {v2}"
            );
        }
    }
    // Traffic ran between the scrapes, so at least one counter moved.
    assert!(
        before
            .iter()
            .any(|(s, v1)| after.get(s).is_some_and(|v2| v2 > v1)),
        "no counter advanced despite traffic between scrapes"
    );
}
