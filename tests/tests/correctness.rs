//! Cross-crate correctness: every planner path must reproduce the naive
//! reference transpose exactly, for every permutation of several awkward
//! shapes and for both element widths.

use ttlg::{Schema, TransposeOptions, Transposer};
use ttlg_tensor::{reference, DenseTensor, Element, Permutation, Shape};

fn check_all_perms<E: Element>(extents: &[usize]) {
    let shape = Shape::new(extents).unwrap();
    let input: DenseTensor<E> = DenseTensor::iota(shape.clone());
    let t = Transposer::new_k40c();
    let opts = TransposeOptions {
        check_disjoint_writes: true,
        ..Default::default()
    };
    for perm in Permutation::all(extents.len()) {
        let plan = t.plan::<E>(&shape, &perm, &opts).unwrap_or_else(|e| {
            panic!("no plan for {extents:?} perm {perm}: {e}");
        });
        let (out, _) = t.execute(&plan, &input).unwrap();
        let expect = reference::transpose_reference(&input, &perm).unwrap();
        assert_eq!(
            out.data(),
            expect.data(),
            "mismatch: extents {extents:?} perm {perm} schema {}",
            plan.schema()
        );
    }
}

#[test]
fn all_rank2_perms() {
    check_all_perms::<u64>(&[37, 19]);
    check_all_perms::<u32>(&[64, 64]);
}

#[test]
fn all_rank3_perms_awkward() {
    check_all_perms::<u64>(&[7, 33, 5]);
    check_all_perms::<u32>(&[16, 16, 16]);
}

#[test]
fn all_rank4_perms_mixed_extents() {
    check_all_perms::<u64>(&[9, 4, 17, 3]);
}

#[test]
fn all_rank4_perms_warp_multiples() {
    check_all_perms::<u64>(&[32, 2, 16, 8]);
}

#[test]
fn all_rank5_perms_small() {
    check_all_perms::<u64>(&[5, 3, 4, 2, 6]);
}

#[test]
fn forced_schemas_on_eligible_problems() {
    // Each (case, schema) pair is forced and must stay correct.
    let cases: &[(&[usize], &[usize], Schema)] = &[
        (&[64, 6, 5], &[0, 2, 1], Schema::FviMatchLarge),
        (&[8, 9, 10, 11], &[0, 3, 2, 1], Schema::FviMatchSmall),
        (&[24, 5, 31], &[2, 1, 0], Schema::OrthogonalDistinct),
        (&[8, 2, 8, 8], &[2, 1, 3, 0], Schema::OrthogonalArbitrary),
        (&[13, 7, 11], &[2, 0, 1], Schema::Naive),
    ];
    let t = Transposer::new_k40c();
    for &(extents, perm, schema) in cases {
        let shape = Shape::new(extents).unwrap();
        let perm = Permutation::new(perm).unwrap();
        let input: DenseTensor<u64> = DenseTensor::iota(shape.clone());
        let opts = TransposeOptions {
            forced_schema: Some(schema),
            check_disjoint_writes: true,
            ..Default::default()
        };
        let plan = t.plan::<u64>(&shape, &perm, &opts).unwrap();
        assert_eq!(plan.schema(), schema);
        let (out, _) = t.execute(&plan, &input).unwrap();
        let expect = reference::transpose_reference(&input, &perm).unwrap();
        assert_eq!(out.data(), expect.data(), "schema {schema} on {extents:?}");
    }
}

#[test]
fn execute_into_reuses_buffer() {
    let shape = Shape::new(&[16, 8, 4]).unwrap();
    let perm = Permutation::new(&[2, 0, 1]).unwrap();
    let t = Transposer::new_k40c();
    let plan = t
        .plan::<u64>(&shape, &perm, &TransposeOptions::default())
        .unwrap();
    let input: DenseTensor<u64> = DenseTensor::iota(shape);
    let mut out = DenseTensor::zeros(plan.out_shape());
    for _ in 0..3 {
        t.execute_into(&plan, &input, &mut out).unwrap();
    }
    let expect = reference::transpose_reference(&input, &perm).unwrap();
    assert_eq!(out.data(), expect.data());
}

#[test]
fn f32_and_f64_agree_structurally() {
    let shape = Shape::new(&[16, 12, 10]).unwrap();
    let perm = Permutation::new(&[2, 1, 0]).unwrap();
    let t = Transposer::new_k40c();
    let p32 = t
        .plan::<f32>(&shape, &perm, &TransposeOptions::default())
        .unwrap();
    let p64 = t
        .plan::<f64>(&shape, &perm, &TransposeOptions::default())
        .unwrap();
    // Same taxonomy family; transaction counts differ by the element width.
    let r32 = t.time_plan(&p32).unwrap();
    let r64 = t.time_plan(&p64).unwrap();
    assert!(r64.stats.dram_total_tx_check(r32.stats));
}

/// Tiny helper trait so the test above reads naturally.
trait TxCheck {
    fn dram_total_tx_check(&self, other: ttlg_gpu_sim::TransactionStats) -> bool;
}

impl TxCheck for ttlg_gpu_sim::TransactionStats {
    fn dram_total_tx_check(&self, other: ttlg_gpu_sim::TransactionStats) -> bool {
        // f64 moves twice the bytes of f32: at least as many transactions.
        self.dram_total_tx() >= other.dram_total_tx()
    }
}
